#!/usr/bin/env python
"""Validate the telemetry artifacts the fleet runner and CLI emit.

Usage::

    python scripts/check_telemetry.py PAYLOAD.json [FLEET.json]
    python scripts/check_telemetry.py --blackbox BLACKBOX.jsonl
    python scripts/check_telemetry.py --overhead OVERHEAD.json

Payload mode checks a telemetry payload (``repro fleet
--telemetry-json`` / ``--scrape-out``):

* the standard envelope: integer schema version, ``telemetry`` kind, a
  known source, a snapshot with fleet + per-group views, Prometheus
  exposition text carrying the core series;
* the snapshot's internal consistency: per-group delivered counts sum
  to the fleet total, every group snapshot names a protocol and an SLO
  verdict, every recorded escalation carries its justifying snapshot;
* with a fleet artifact (``repro fleet --json``) alongside: the
  telemetry aggregate agrees with the artifact's delivered count to
  within 1% (the live plane must not drift from ground truth).

Blackbox mode checks a flight-recorder JSONL (``repro chaos
--blackbox``): at least one capture, every capture header followed by
exactly its declared record lines, records carry timestamps and names.

Overhead mode checks the telemetry-overhead benchmark artifact
(``benchmarks/bench_obs.py``): identical sim outcomes with the plane
off and on, and median overhead within the pinned threshold.

Exit code 0 when every check passes, 1 with a report otherwise.
"""

import json
import sys
from pathlib import Path

_SCRIPTS = str(Path(__file__).resolve().parent)
if _SCRIPTS not in sys.path:
    sys.path.insert(0, _SCRIPTS)

from _lib import ArtifactError, load_artifact, report_problems, usage

PAYLOAD_SOURCES = {"poll", "scrape", "file"}
FLEET_KEYS = {
    "time",
    "uptime_s",
    "window_s",
    "windows_rolled",
    "groups",
    "casts",
    "delivered",
    "rate",
    "rate_cumulative",
    "switches",
    "aborts",
    "strays",
    "pool",
    "escalations",
    "captures",
    "slo",
}
GROUP_KEYS = {
    "group",
    "protocol",
    "members",
    "casts",
    "delivered",
    "rate",
    "switches",
    "aborts",
    "slo",
}
PROM_SERIES = (
    "repro_fleet_groups",
    "repro_fleet_delivered_total",
    "repro_fleet_delivered_per_s",
    "repro_slo_burn_minutes",
    "repro_group_delivered_total",
)
AGREEMENT = 0.01  # telemetry vs. artifact delivered-count drift ceiling


def check_snapshot(snapshot, problems):
    if not isinstance(snapshot, dict):
        problems.append("snapshot: missing or not an object")
        return
    fleet = snapshot.get("fleet")
    if not isinstance(fleet, dict):
        problems.append("snapshot.fleet: missing or not an object")
        return
    missing = FLEET_KEYS - set(fleet)
    if missing:
        problems.append(f"snapshot.fleet: missing keys {sorted(missing)}")
        return
    groups = snapshot.get("groups")
    if not isinstance(groups, dict) or not groups:
        problems.append("snapshot.groups: missing or empty")
        return
    if fleet["groups"] != len(groups):
        problems.append(
            f"snapshot.fleet counts {fleet['groups']} groups but "
            f"{len(groups)} group snapshots present"
        )
    total = 0
    for gid, group in groups.items():
        label = f"snapshot.groups[{gid}]"
        missing = GROUP_KEYS - set(group)
        if missing:
            problems.append(f"{label}: missing keys {sorted(missing)}")
            continue
        if str(group["group"]) != str(gid):
            problems.append(f"{label}: group id mismatch ({group['group']})")
        if not group["protocol"]:
            problems.append(f"{label}: no protocol recorded")
        slo = group["slo"]
        if not isinstance(slo, dict) or "ok" not in slo:
            problems.append(f"{label}: slo verdict missing")
        total += group["delivered"]
    if total != fleet["delivered"]:
        problems.append(
            f"per-group delivered sums to {total}, fleet total says "
            f"{fleet['delivered']}"
        )
    windows = snapshot.get("fleet_windows")
    if not isinstance(windows, list) or not windows:
        problems.append("snapshot.fleet_windows: missing or empty")
    if fleet["delivered"] <= 0:
        problems.append("snapshot.fleet: no deliveries recorded")


def check_escalations(payload, problems):
    escalations = payload.get("escalations")
    if escalations is None:
        return  # scrape payloads carry the snapshot only
    if not isinstance(escalations, list):
        problems.append("escalations: not a list")
        return
    for index, record in enumerate(escalations):
        label = f"escalations[{index}]"
        if not isinstance(record, dict):
            problems.append(f"{label}: not an object")
            continue
        snapshot = record.get("snapshot")
        if not isinstance(snapshot, dict):
            problems.append(f"{label}: decision carries no snapshot")
            continue
        if "window_partial" not in snapshot:
            problems.append(f"{label}: snapshot lacks the partial window")
        if record.get("signal") is None:
            problems.append(f"{label}: decision carries no signal value")


def check_payload(payload, fleet_artifact, problems):
    if not isinstance(payload.get("schema_version"), int):
        problems.append("schema_version missing or non-integer")
    if payload.get("kind") != "telemetry":
        problems.append(f"kind is {payload.get('kind')!r}, not 'telemetry'")
    if payload.get("source") not in PAYLOAD_SOURCES:
        problems.append(f"unknown source {payload.get('source')!r}")
    check_snapshot(payload.get("snapshot"), problems)
    prometheus = payload.get("prometheus")
    if not isinstance(prometheus, str):
        problems.append("prometheus exposition text missing")
    else:
        for series in PROM_SERIES:
            if f"# TYPE {series} " not in prometheus:
                problems.append(f"prometheus: series {series} missing")
    check_escalations(payload, problems)

    if fleet_artifact is None:
        return
    truth = fleet_artifact.get("delivered")
    snapshot = payload.get("snapshot") or {}
    observed = (snapshot.get("fleet") or {}).get("delivered")
    if not isinstance(truth, (int, float)) or not isinstance(
        observed, (int, float)
    ):
        problems.append("cannot compare delivered counts across artifacts")
        return
    if abs(observed - truth) > AGREEMENT * max(1.0, truth):
        problems.append(
            f"telemetry saw {observed} deliveries, the fleet artifact "
            f"recorded {truth} (>{AGREEMENT:.0%} drift)"
        )


def check_blackbox(path, problems):
    try:
        with open(path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"cannot load {path!r}: {exc}") from exc
    if not lines:
        problems.append("blackbox: no lines at all")
        return 0
    captures = 0
    index = 0
    while index < len(lines):
        header = lines[index]
        if header.get("type") != "capture":
            problems.append(f"line {index + 1}: expected a capture header")
            return captures
        captures += 1
        declared = header.get("records")
        if not isinstance(declared, int) or declared < 1:
            problems.append(
                f"capture {captures}: declares {declared!r} records"
            )
            return captures
        if not header.get("trigger"):
            problems.append(f"capture {captures}: no trigger named")
        records = lines[index + 1 : index + 1 + declared]
        if len(records) != declared:
            problems.append(
                f"capture {captures}: {len(records)} record lines for "
                f"{declared} declared"
            )
            return captures
        for offset, record in enumerate(records):
            label = f"capture {captures} record {offset + 1}"
            if record.get("type") != "record":
                problems.append(f"{label}: not a record line")
            if "t" not in record or "name" not in record:
                problems.append(f"{label}: missing timestamp or name")
            if record.get("group") != header.get("group"):
                problems.append(f"{label}: group differs from its header")
        index += 1 + declared
    if captures == 0:
        problems.append("blackbox: no captures frozen")
    return captures


def check_overhead(artifact, problems):
    if artifact.get("benchmark") != "telemetry_overhead":
        problems.append(f"benchmark name is {artifact.get('benchmark')!r}")
    if not isinstance(artifact.get("schema_version"), int):
        problems.append("schema_version missing or non-integer")
    threshold = artifact.get("threshold_pct")
    overhead = artifact.get("overhead_pct")
    if not isinstance(threshold, (int, float)) or threshold <= 0:
        problems.append(f"threshold_pct {threshold!r} is not positive")
        return
    if not isinstance(overhead, (int, float)):
        problems.append(f"overhead_pct {overhead!r} is not a number")
        return
    if overhead > threshold:
        problems.append(
            f"telemetry overhead {overhead:.2f}% exceeds the pinned "
            f"{threshold:.2f}% budget"
        )
    if artifact.get("identical_outcome") is not True:
        problems.append("telemetry changed the sim outcome (must be inert)")
    for leg in ("off", "on"):
        run = artifact.get(leg)
        if not isinstance(run, dict) or run.get("best_s", 0) <= 0:
            problems.append(f"{leg}: missing timing leg")


def main(argv):
    if len(argv) == 3 and argv[1] == "--blackbox":
        problems = []
        try:
            captures = check_blackbox(argv[2], problems)
        except ArtifactError as exc:
            print(exc)
            return 1
        if report_problems(problems):
            return 1
        print(f"blackbox: {captures} capture(s) with intact record runs")
        print("all telemetry checks passed")
        return 0

    if len(argv) == 3 and argv[1] == "--overhead":
        try:
            artifact = load_artifact(argv[2])
        except ArtifactError as exc:
            print(exc)
            return 1
        problems = []
        check_overhead(artifact, problems)
        if report_problems(problems):
            return 1
        print(
            f"overhead: telemetry costs {artifact['overhead_pct']:.2f}% "
            f"(budget {artifact['threshold_pct']:.2f}%)"
        )
        print("all telemetry checks passed")
        return 0

    if len(argv) not in (2, 3):
        return usage(__doc__)
    try:
        payload = load_artifact(argv[1])
        fleet_artifact = load_artifact(argv[2]) if len(argv) == 3 else None
    except ArtifactError as exc:
        print(exc)
        return 1
    problems = []
    check_payload(payload, fleet_artifact, problems)
    if report_problems(problems):
        return 1
    fleet = payload["snapshot"]["fleet"]
    print(
        f"telemetry: {fleet['groups']} groups, {fleet['delivered']} "
        f"deliveries over {fleet['windows_rolled']} windows"
    )
    if fleet_artifact is not None:
        print(
            f"telemetry: aggregate agrees with the fleet artifact "
            f"({fleet_artifact['delivered']} delivered) within "
            f"{AGREEMENT:.0%}"
        )
    slo = fleet["slo"]
    print(
        f"telemetry: {len(slo.get('targets', []))} SLO target(s), "
        f"{slo.get('burn_minutes', 0.0):.2f} burn minutes, "
        f"{fleet['captures']} capture(s)"
    )
    print("all telemetry checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
