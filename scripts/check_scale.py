#!/usr/bin/env python
"""Validate the scaling-benchmark artifact bench_scale.py produces.

Usage::

    python scripts/check_scale.py benchmarks/results/scale.json

Checks the acceptance contract for ``benchmarks/bench_scale.py``
(either the full sweep or a ``--quick`` artifact):

* top level carries the ``bench_scale`` schema: benchmark name, schema
  version, config, a non-empty ``points`` array, ``switch_runs``, and an
  ``acceptance`` verdict;
* every sweep point has the full measurement record (protocol, group
  size, batch setting, offered/delivered throughput, frame and
  utilization figures) with sane value ranges;
* the sweep covers both total-order protocols, at least two group
  sizes, and both an unbatched and a batched setting;
* every switch run completed with the whole group on the target
  protocol and members agreeing on the delivery count;
* the ``engine_uplift`` A/B holds: the timer-wheel engine reproduced
  the frozen heap engine's simulated results exactly and delivered
  >= 1.02x the delivered-msgs per wall second at the largest group;
* the acceptance verdict passes: batched sequencer throughput >= 2x
  unbatched at a group of >= 50.

Exit code 0 when every check passes, 1 with a report otherwise.
"""

import sys
from pathlib import Path

_SCRIPTS = str(Path(__file__).resolve().parent)
if _SCRIPTS not in sys.path:
    sys.path.insert(0, _SCRIPTS)

from _lib import ArtifactError, load_artifact, report_problems, usage

POINT_KEYS = {
    "protocol",
    "group_size",
    "max_batch",
    "offered_msgs_per_s",
    "delivered_msgs_per_s",
    "mean_latency_ms",
    "p90_latency_ms",
    "latency_samples",
    "wire_frames",
    "medium_utilization",
    "rank0_cpu_utilization",
    "batching",
}
SWITCH_KEYS = {
    "group_size",
    "max_batch",
    "switch_completed",
    "switch_duration_ms",
    "all_on_target",
    "members_agree_on_delivery_count",
}
PROTOCOLS = {"sequencer", "tokenring"}


def check_points(points, problems):
    if not isinstance(points, list) or not points:
        problems.append("points: missing or empty")
        return
    for index, point in enumerate(points):
        missing = POINT_KEYS - set(point)
        if missing:
            problems.append(f"points[{index}]: missing keys {sorted(missing)}")
            continue
        if point["protocol"] not in PROTOCOLS:
            problems.append(
                f"points[{index}]: unknown protocol {point['protocol']!r}"
            )
        if point["delivered_msgs_per_s"] <= 0:
            problems.append(f"points[{index}]: no delivered throughput")
        if not 0.0 <= point["medium_utilization"] <= 1.0:
            problems.append(f"points[{index}]: medium_utilization out of range")
        if point["max_batch"] > 1:
            batching = point["batching"]
            if batching.get("batches", 0) <= 0:
                problems.append(
                    f"points[{index}]: batched point recorded no batches"
                )

    protocols = {p["protocol"] for p in points if "protocol" in p}
    if protocols != PROTOCOLS:
        problems.append(f"points: protocols covered {sorted(protocols)}, "
                        f"expected {sorted(PROTOCOLS)}")
    sizes = {p["group_size"] for p in points if "group_size" in p}
    if len(sizes) < 2:
        problems.append(f"points: only one group size swept ({sorted(sizes)})")
    batches = {p["max_batch"] for p in points if "max_batch" in p}
    if 1 not in batches or not any(b > 1 for b in batches):
        problems.append(
            f"points: need batch=1 and batch>1 settings, got {sorted(batches)}"
        )


def check_switch_runs(runs, problems):
    if not isinstance(runs, list) or not runs:
        problems.append("switch_runs: missing or empty")
        return
    for index, run in enumerate(runs):
        missing = SWITCH_KEYS - set(run)
        if missing:
            problems.append(
                f"switch_runs[{index}]: missing keys {sorted(missing)}"
            )
            continue
        for flag in (
            "switch_completed", "all_on_target",
            "members_agree_on_delivery_count",
        ):
            if run[flag] is not True:
                problems.append(f"switch_runs[{index}]: {flag} is {run[flag]}")
        if not run["switch_duration_ms"] or run["switch_duration_ms"] <= 0:
            problems.append(
                f"switch_runs[{index}]: no positive switch duration"
            )


ENGINE_KEYS = {
    "group_size",
    "deterministic_parity",
    "delivered_msgs_per_s",
    "heap_wall_s",
    "wheel_wall_s",
    "heap_delivered_per_wall_s",
    "wheel_delivered_per_wall_s",
    "speedup",
    "threshold",
    "pass",
}

#: Pinned floor for the wheel-vs-heap wall-clock uplift.
ENGINE_FLOOR = 1.02


def check_engine_uplift(uplift, problems):
    if not isinstance(uplift, dict):
        problems.append("engine_uplift: missing")
        return
    missing = ENGINE_KEYS - set(uplift)
    if missing:
        problems.append(f"engine_uplift: missing keys {sorted(missing)}")
        return
    if uplift["deterministic_parity"] is not True:
        problems.append(
            "engine_uplift: heap and wheel runs diverged — the engine swap "
            "must be invisible to simulated results"
        )
    if uplift["threshold"] < ENGINE_FLOOR:
        problems.append(
            f"engine_uplift: threshold {uplift['threshold']} below the "
            f"pinned {ENGINE_FLOOR}x bar"
        )
    speedup = uplift["speedup"]
    if not isinstance(speedup, (int, float)) or speedup < uplift["threshold"]:
        problems.append(
            f"engine_uplift: speedup {speedup!r} below its "
            f"{uplift['threshold']}x bar"
        )
    for field in ("heap_wall_s", "wheel_wall_s",
                  "heap_delivered_per_wall_s", "wheel_delivered_per_wall_s"):
        if uplift[field] <= 0:
            problems.append(f"engine_uplift: {field} is not positive")
    if uplift["pass"] is not True:
        problems.append("engine_uplift: verdict did not pass")


def check_acceptance(verdict, problems):
    if not isinstance(verdict, dict):
        problems.append("acceptance: missing")
        return
    if verdict.get("group_size") is None:
        problems.append("acceptance: no eligible >=50 group in the sweep")
        return
    if verdict.get("group_size", 0) < 50:
        problems.append(
            f"acceptance: evaluated at group {verdict['group_size']}, "
            "criterion requires >= 50"
        )
    speedup = verdict.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup < 2.0:
        problems.append(f"acceptance: speedup {speedup!r} below the 2x bar")
    if verdict.get("pass") is not True:
        problems.append("acceptance: verdict did not pass")


def main(argv):
    if len(argv) != 2:
        return usage(__doc__)
    try:
        artifact = load_artifact(argv[1])
    except ArtifactError as exc:
        print(exc)
        return 1
    problems = []
    if artifact.get("benchmark") != "bench_scale":
        problems.append(f"benchmark name is {artifact.get('benchmark')!r}")
    if not isinstance(artifact.get("schema_version"), int):
        problems.append("schema_version missing or non-integer")
    if not isinstance(artifact.get("config"), dict):
        problems.append("config section missing")
    check_points(artifact.get("points"), problems)
    check_switch_runs(artifact.get("switch_runs"), problems)
    check_engine_uplift(artifact.get("engine_uplift"), problems)
    check_acceptance(artifact.get("acceptance"), problems)

    if report_problems(problems):
        return 1
    verdict = artifact["acceptance"]
    uplift = artifact["engine_uplift"]
    print(f"scale:   {len(artifact['points'])} sweep points, "
          f"{len(artifact['switch_runs'])} switch runs ({argv[1]})")
    print(f"scale:   batched sequencer speedup {verdict['speedup']}x at "
          f"n={verdict['group_size']} (bar: 2x)")
    print(f"scale:   engine wall-clock uplift {uplift['speedup']}x at "
          f"n={uplift['group_size']} (bar: {uplift['threshold']}x)")
    print("all scale-benchmark checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
