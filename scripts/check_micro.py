#!/usr/bin/env python
"""Validate the hot-path microbenchmark artifact bench_hotpath.py writes.

Usage::

    python scripts/check_micro.py benchmarks/results/micro.json

Checks the acceptance contract for ``benchmarks/bench_hotpath.py``:

* top level carries the ``bench_hotpath`` schema: benchmark name,
  integer schema version, the timing methodology, and all six kernels
  (``header_hop``, ``codec_roundtrip``, ``multicast_fanout``,
  ``timer_churn``, ``decode_fanin``, ``pooled_deliver``);
* every kernel reports both sides' best-of-N timings, its speedup, its
  threshold, and a passing verdict;
* the pinned bars hold: header hop >= 2x over the dict-copy baseline,
  codec round trip >= 1x over pickle *and* strictly smaller on the
  wire, multicast fan-out >= 2x over per-destination pickling, timer
  churn >= 2x over the frozen heap engine, decode fan-in >= 1x over
  the frozen pre-optimization decoder, pooled deliver >= 0.95x of
  per-datagram shell allocation (a non-regression gate — recycling is
  break-even with the allocator by design) on exactly one
  steady-state shell.

Exit code 0 when every check passes, 1 with a report otherwise.
"""

import sys
from pathlib import Path

_SCRIPTS = str(Path(__file__).resolve().parent)
if _SCRIPTS not in sys.path:
    sys.path.insert(0, _SCRIPTS)

from _lib import ArtifactError, load_artifact, report_problems, usage

KERNELS = {
    # kernel -> (required keys, pinned minimum speedup)
    "header_hop": (
        {"baseline_us", "optimized_us", "speedup", "threshold", "pass",
         "group", "layers"},
        2.0,
    ),
    "codec_roundtrip": (
        {"pickle_us", "codec_us", "speedup", "threshold", "pass",
         "pickle_bytes", "codec_bytes"},
        1.0,
    ),
    "multicast_fanout": (
        {"pickle_us", "codec_us", "speedup", "threshold", "pass", "group"},
        2.0,
    ),
    "timer_churn": (
        {"baseline_us", "optimized_us", "speedup", "threshold", "pass",
         "timers", "refreshes"},
        2.0,
    ),
    "decode_fanin": (
        {"baseline_us", "optimized_us", "speedup", "threshold", "pass",
         "frames"},
        1.0,
    ),
    "pooled_deliver": (
        {"baseline_us", "optimized_us", "speedup", "threshold", "pass",
         "delivers", "steady_state_shells"},
        0.95,
    ),
}


def check_kernel(name, kernel, problems):
    required, floor = KERNELS[name]
    if not isinstance(kernel, dict):
        problems.append(f"{name}: missing or not an object")
        return
    missing = required - set(kernel)
    if missing:
        problems.append(f"{name}: missing keys {sorted(missing)}")
        return
    speedup = kernel["speedup"]
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        problems.append(f"{name}: speedup {speedup!r} is not a positive number")
        return
    if kernel["threshold"] < floor:
        problems.append(
            f"{name}: threshold {kernel['threshold']} below the pinned "
            f"{floor}x bar"
        )
    if speedup < kernel["threshold"]:
        problems.append(
            f"{name}: speedup {speedup}x below its {kernel['threshold']}x bar"
        )
    if kernel["pass"] is not True:
        problems.append(f"{name}: kernel verdict did not pass")
    for field in required:
        if field.endswith("_us") and kernel[field] <= 0:
            problems.append(f"{name}: {field} is not a positive timing")
    if name == "codec_roundtrip":
        if kernel["codec_bytes"] >= kernel["pickle_bytes"]:
            problems.append(
                f"codec_roundtrip: codec frame ({kernel['codec_bytes']} B) "
                f"not smaller than pickle ({kernel['pickle_bytes']} B)"
            )
    if name == "pooled_deliver":
        if kernel["steady_state_shells"] != 1:
            problems.append(
                f"pooled_deliver: {kernel['steady_state_shells']} steady-"
                "state shells (the recycle loop must run on exactly one)"
            )


def main(argv):
    if len(argv) != 2:
        return usage(__doc__)
    try:
        artifact = load_artifact(argv[1])
    except ArtifactError as exc:
        print(exc)
        return 1
    problems = []
    if artifact.get("benchmark") != "bench_hotpath":
        problems.append(f"benchmark name is {artifact.get('benchmark')!r}")
    if not isinstance(artifact.get("schema_version"), int):
        problems.append("schema_version missing or non-integer")
    if not isinstance(artifact.get("timing"), dict):
        problems.append("timing methodology section missing")
    kernels = artifact.get("kernels")
    if not isinstance(kernels, dict):
        problems.append("kernels section missing")
        kernels = {}
    for name in KERNELS:
        check_kernel(name, kernels.get(name), problems)
    if artifact.get("pass") is not True:
        problems.append("top-level verdict did not pass")

    if report_problems(problems):
        return 1
    for name in KERNELS:
        kernel = kernels[name]
        print(f"micro:   {name} {kernel['speedup']}x "
              f"(bar {kernel['threshold']}x)")
    print("all hot-path microbenchmark checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
