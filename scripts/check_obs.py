#!/usr/bin/env python
"""Validate the observability artifacts a traced run produces.

Usage::

    python scripts/check_obs.py out.trace.json metrics.json

Checks the acceptance contract for ``repro run --trace ... --metrics
...`` (either runtime):

* the trace file is a Chrome trace-event JSON **array** whose records
  all carry ``name``/``ph``/``pid``/``tid``/``ts``, with ``dur`` on
  complete spans — the shape Perfetto actually loads;
* it contains at least one complete span for each switch phase
  (``switch/prepare``, ``switch/switch``, ``switch/flush``) and for
  ``switch/total``;
* the metrics file carries the switch-duration histogram plus the
  per-phase histograms, each with p50/p90/p99 percentiles once it has
  two or more observations (single-sample histograms legitimately omit
  quantiles — one sample carries no distribution — but must still
  report min/max).

Exit code 0 when every check passes, 1 with a report otherwise.
"""

import sys
from pathlib import Path

_SCRIPTS = str(Path(__file__).resolve().parent)
if _SCRIPTS not in sys.path:
    sys.path.insert(0, _SCRIPTS)

from _lib import ArtifactError, load_artifact, report_problems, usage

PHASE_SPANS = (
    "switch/prepare",
    "switch/switch",
    "switch/flush",
    "switch/total",
)
REQUIRED_KEYS = {"name", "ph", "pid", "tid", "ts"}
PERCENTILES = ("p50", "p90", "p99")


def check_trace(path, problems):
    try:
        records = load_artifact(path)
    except ArtifactError as exc:
        problems.append(f"trace: {exc}")
        return
    if not isinstance(records, list):
        problems.append(f"trace: top level is {type(records).__name__}, "
                        "expected a JSON array")
        return
    if not records:
        problems.append("trace: empty record array")
        return

    spans = {name: 0 for name in PHASE_SPANS}
    for index, record in enumerate(records):
        missing = REQUIRED_KEYS - set(record)
        if missing:
            problems.append(
                f"trace: record {index} missing keys {sorted(missing)}"
            )
            continue
        if not isinstance(record["ts"], (int, float)):
            problems.append(f"trace: record {index} has non-numeric ts")
        if record["ph"] == "X":
            if "dur" not in record:
                problems.append(
                    f"trace: complete span {record['name']!r} has no dur"
                )
            elif record["name"] in spans:
                spans[record["name"]] += 1

    for name, count in spans.items():
        if count < 1:
            problems.append(f"trace: no complete {name!r} span")
    ok = sum(spans.values())
    print(f"trace:   {len(records)} records, "
          f"{ok} switch-phase spans ({path})")


def check_metrics(path, problems):
    try:
        snapshot = load_artifact(path)
    except ArtifactError as exc:
        problems.append(f"metrics: {exc}")
        return
    histograms = snapshot.get("histograms")
    if not isinstance(histograms, dict):
        problems.append("metrics: no histograms section")
        return

    names = ["switch.duration_s"] + [
        f"switch.phase.{phase}_s" for phase in ("prepare", "switch", "flush")
    ]
    for name in names:
        hist = histograms.get(name)
        if not hist:
            problems.append(f"metrics: histogram {name!r} missing")
            continue
        count = hist.get("count")
        if not count:
            problems.append(f"metrics: histogram {name!r} is empty")
            continue
        if count >= 2:
            for pct in PERCENTILES:
                if hist.get(pct) is None:
                    problems.append(
                        f"metrics: histogram {name!r} lacks {pct}"
                    )
        elif "min" not in hist or "max" not in hist:
            problems.append(
                f"metrics: single-sample histogram {name!r} lacks min/max"
            )
    duration = histograms.get("switch.duration_s", {})
    if duration.get("count"):
        if all(duration.get(p) is not None for p in PERCENTILES):
            print(f"metrics: switch.duration_s count={duration['count']} "
                  f"p50={duration['p50']:.6g}s p99={duration['p99']:.6g}s "
                  f"({path})")
        else:
            print(f"metrics: switch.duration_s count={duration['count']} "
                  f"single sample {duration.get('max', 0.0):.6g}s "
                  f"(quantiles need >= 2) ({path})")


def main(argv):
    if len(argv) != 3:
        return usage(__doc__)
    problems = []
    check_trace(argv[1], problems)
    check_metrics(argv[2], problems)
    if report_problems(problems, leading_newline=True):
        return 1
    print("all observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
