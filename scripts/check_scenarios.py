#!/usr/bin/env python
"""Validate the scenario-sweep artifact ``repro scenario --all --json``
writes (also produced by ``benchmarks/sweeprunner.py --sweep scenarios``
under its ``sweeps.scenarios`` key).

Usage::

    python scripts/check_scenarios.py benchmarks/results/scenarios.json

Checks the catalog sweep's acceptance contract:

* top level carries the scenario-suite schema: ``suite`` name, integer
  ``schema_version``, the runtime swept, and a ``scenarios`` mapping;
* the sweep covers the full shipped catalog (at least
  :data:`MIN_SCENARIOS` entries, including every name in
  :data:`REQUIRED_SCENARIOS`);
* every verdict has the full evidence record (final protocols,
  switch counts, decisions, delivery ratio, throughput and drain-cost
  figures) with sane value ranges;
* every verdict **passed**: ``ok`` is true and ``violations`` is empty
  — a scenario that regressed fails CI here;
* drift scenarios completed at least one switch and report a positive
  time-to-switch and drain cost; stability scenarios report zero
  switches and zero oracle decisions.

Exit code 0 when every check passes, 1 with a report otherwise, 2 on
usage errors.
"""

import sys
from pathlib import Path

_SCRIPTS = str(Path(__file__).resolve().parent)
if _SCRIPTS not in sys.path:
    sys.path.insert(0, _SCRIPTS)

from _lib import ArtifactError, load_artifact, report_problems, usage

MIN_SCENARIOS = 8

#: Names the shipped catalog must always cover (the testbed's spine).
REQUIRED_SCENARIOS = {
    "baseline_steady",
    "burst_loss",
    "congestion_collapse",
    "diurnal_load",
    "escalating_loss",
    "flash_crowd",
    "high_latency",
    "intermittent_connectivity",
    "mobile_handoff_jitter",
}

VERDICT_KEYS = {
    "scenario",
    "runtime",
    "seed",
    "ok",
    "expected_protocol",
    "final_protocols",
    "switches_completed",
    "decisions",
    "time_to_switch",
    "switch_duration_ms",
    "max_hiccup_ms",
    "casts",
    "delivered",
    "delivery_ratio",
    "delivered_rate_before",
    "delivered_rate_after",
    "mean_latency_ms",
    "p90_latency_ms",
    "settle_time",
    "duration",
    "violations",
}

PROTOCOLS = {"sequencer", "tokenring"}


def check_verdict(name, verdict, problems):
    missing = VERDICT_KEYS - set(verdict)
    if missing:
        problems.append(f"{name}: missing keys {sorted(missing)}")
        return
    if verdict["scenario"] != name:
        problems.append(
            f"{name}: verdict names itself {verdict['scenario']!r}"
        )
    if verdict["ok"] is not True:
        problems.append(
            f"{name}: scenario FAILED: {verdict['violations'] or 'ok=false'}"
        )
    if verdict["violations"]:
        problems.append(f"{name}: violations recorded {verdict['violations']}")
    if verdict["expected_protocol"] not in PROTOCOLS:
        problems.append(
            f"{name}: unknown expected protocol "
            f"{verdict['expected_protocol']!r}"
        )
    finals = verdict["final_protocols"]
    if not isinstance(finals, dict) or not finals:
        problems.append(f"{name}: final_protocols missing or empty")
    elif set(finals.values()) != {verdict["expected_protocol"]}:
        problems.append(
            f"{name}: group did not settle on "
            f"{verdict['expected_protocol']!r}: {finals}"
        )
    if not isinstance(verdict["casts"], int) or verdict["casts"] <= 0:
        problems.append(f"{name}: no workload casts recorded")
    ratio = verdict["delivery_ratio"]
    if not isinstance(ratio, (int, float)) or not 0.0 <= ratio <= 1.0:
        problems.append(f"{name}: delivery_ratio {ratio!r} out of range")
    if verdict["settle_time"] < verdict["duration"]:
        problems.append(
            f"{name}: settle_time precedes the scripted duration"
        )

    switches = verdict["switches_completed"]
    decisions = verdict["decisions"]
    if switches > 0:
        if not decisions:
            problems.append(
                f"{name}: {switches} switches but no oracle decisions"
            )
        if verdict["switch_duration_ms"] is None or (
            verdict["switch_duration_ms"] <= 0
        ):
            problems.append(f"{name}: switched but no positive drain cost")
    else:
        if decisions:
            problems.append(
                f"{name}: stability scenario recorded oracle decisions "
                f"{decisions}"
            )
    if verdict["time_to_switch"] is not None and verdict["time_to_switch"] < 0:
        problems.append(f"{name}: negative time_to_switch")


def check_artifact(artifact, problems):
    if artifact.get("suite") != "scenarios":
        problems.append(f"suite name is {artifact.get('suite')!r}")
    if not isinstance(artifact.get("schema_version"), int):
        problems.append("schema_version missing or non-integer")
    if artifact.get("runtime") not in ("sim", "asyncio"):
        problems.append(f"unknown runtime {artifact.get('runtime')!r}")
    scenarios = artifact.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append("scenarios: missing or empty")
        return
    # The asyncio smoke legitimately sweeps a catalog subset (only
    # clean-net scenarios can run there); the coverage bars apply to
    # sim artifacts only.
    if artifact.get("runtime") == "sim":
        if len(scenarios) < MIN_SCENARIOS:
            problems.append(
                f"catalog coverage: only {len(scenarios)} scenarios swept, "
                f"need >= {MIN_SCENARIOS}"
            )
        absent = REQUIRED_SCENARIOS - set(scenarios)
        if absent:
            problems.append(
                f"catalog coverage: required scenarios missing "
                f"{sorted(absent)}"
            )
    for name in sorted(scenarios):
        check_verdict(name, scenarios[name], problems)


def main(argv):
    if len(argv) != 2:
        return usage(__doc__)
    try:
        artifact = load_artifact(argv[1])
    except ArtifactError as exc:
        print(exc)
        return 1
    problems = []
    check_artifact(artifact, problems)

    if report_problems(problems):
        return 1
    scenarios = artifact["scenarios"]
    switched = sum(
        1 for v in scenarios.values() if v["switches_completed"] > 0
    )
    print(
        f"scenarios: {len(scenarios)} verdicts on the "
        f"{artifact['runtime']!r} runtime ({argv[1]})"
    )
    print(
        f"scenarios: {switched} drift scenarios switched, "
        f"{len(scenarios) - switched} stability scenarios held"
    )
    print("all scenario-sweep checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
