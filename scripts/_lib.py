"""Shared plumbing for the ``scripts/check_*.py`` artifact validators.

Every validator follows the same contract (asserted by
``tests/scripts/test_validators.py``):

* wrong argument count -> print the module docstring, exit 2;
* unreadable or unparsable artifact -> ``cannot load {path!r}: {exc}``,
  exit 1;
* failed checks -> ``FAILED {n} check(s):`` with one ``  - `` bullet
  per problem, exit 1;
* success -> validator-specific summary lines, exit 0.

The helpers here implement the three shared legs; the success summary
stays in each validator, because that is the part reviewers read in CI
logs.
"""

import json

__all__ = ["ArtifactError", "load_artifact", "report_problems", "usage"]


class ArtifactError(Exception):
    """An artifact that cannot even be loaded (missing file, bad JSON)."""


def load_artifact(path):
    """Parse the JSON artifact at ``path``.

    Raises :class:`ArtifactError` carrying the standard ``cannot load``
    message on any OS or JSON error.
    """
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"cannot load {path!r}: {exc}") from exc


def usage(doc):
    """Print the validator's usage docstring; returns exit code 2."""
    print(doc)
    return 2


def report_problems(problems, leading_newline=False):
    """Print the standard failure report; 1 if there were problems."""
    if not problems:
        return 0
    if leading_newline:
        print()
    print(f"FAILED {len(problems)} check(s):")
    for problem in problems:
        print(f"  - {problem}")
    return 1
