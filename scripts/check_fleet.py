#!/usr/bin/env python
"""Validate the fleet-benchmark artifact bench_fleet.py writes.

Usage::

    python scripts/check_fleet.py benchmarks/results/fleet.json

Checks the acceptance contract for ``benchmarks/bench_fleet.py``:

* top level carries the ``bench_fleet`` schema: benchmark name, integer
  schema version, a ``full``/``quick`` profile, per-run records, and a
  passing top-level verdict;
* the ``sim`` run is present and meets the profile's scale floor —
  ``full`` artifacts must cover >= 1000 groups and >= 100000 simulated
  clients (the tentpole claim), ``quick`` ones >= 16 groups;
* an ``asyncio`` run, when present, covers >= 32 groups (the UDP smoke
  floor);
* every run's oracle verdicts hold: all hot groups escalated to the
  token ring, zero cold groups switched, zero stray packets, no
  recorded violations;
* every run reports positive aggregate throughput and one report per
  group, each with members, its pooled sequencer, delivery counts, a
  positive per-group p99 latency, and a final protocol consistent with
  its hot/cold role.

Exit code 0 when every check passes, 1 with a report otherwise.
"""

import sys
from pathlib import Path

_SCRIPTS = str(Path(__file__).resolve().parent)
if _SCRIPTS not in sys.path:
    sys.path.insert(0, _SCRIPTS)

from _lib import ArtifactError, load_artifact, report_problems, usage

RUN_KEYS = {
    "runtime",
    "groups",
    "clients",
    "duration",
    "casts",
    "delivered",
    "msgs_per_s",
    "hot_groups",
    "hot_switched",
    "cold_switched",
    "stray_packets",
    "per_group",
    "violations",
    "ok",
    "wall_s",
    "config",
}
GROUP_KEYS = {
    "group_id",
    "hot",
    "members",
    "sequencer",
    "casts",
    "delivered",
    "p99_ms",
    "final_protocol",
    "switched",
}
PROTOCOLS = {"sequencer", "tokenring"}

#: Scale floors per (profile, run name): the artifact must prove the
#: tentpole claim at full size, and stay honest at smoke size.
GROUP_FLOORS = {
    ("full", "sim"): 1000,
    ("quick", "sim"): 16,
    ("full", "asyncio"): 32,
    ("quick", "asyncio"): 32,
}
FULL_SIM_CLIENT_FLOOR = 100_000


def check_group(run_name, report, problems):
    label = f"{run_name}.per_group[{report.get('group_id', '?')}]"
    missing = GROUP_KEYS - set(report)
    if missing:
        problems.append(f"{label}: missing keys {sorted(missing)}")
        return
    if report["final_protocol"] not in PROTOCOLS:
        problems.append(
            f"{label}: unknown final protocol {report['final_protocol']!r}"
        )
    if report["switched"] != (report["final_protocol"] == "tokenring"):
        problems.append(f"{label}: switched flag contradicts final protocol")
    if report["hot"] != report["switched"]:
        role = "hot" if report["hot"] else "cold"
        problems.append(
            f"{label}: {role} group ended on {report['final_protocol']!r}"
        )
    if report["delivered"] <= 0:
        problems.append(f"{label}: no deliveries recorded")
    p99 = report["p99_ms"]
    if not isinstance(p99, (int, float)) or p99 <= 0:
        problems.append(f"{label}: p99_ms {p99!r} is not a positive latency")
    if len(set(report["members"])) < 2:
        problems.append(f"{label}: fewer than two distinct members")
    if report["sequencer"] not in report["members"]:
        problems.append(
            f"{label}: sequencer {report['sequencer']} is not a member"
        )


def check_run(name, run, profile, problems):
    if not isinstance(run, dict):
        problems.append(f"{name}: missing or not an object")
        return
    missing = RUN_KEYS - set(run)
    if missing:
        problems.append(f"{name}: missing keys {sorted(missing)}")
        return
    if run["runtime"] != name:
        problems.append(f"{name}: run records runtime {run['runtime']!r}")
    floor = GROUP_FLOORS.get((profile, name))
    if floor is not None and run["groups"] < floor:
        problems.append(
            f"{name}: {run['groups']} groups below the {profile}-profile "
            f"floor of {floor}"
        )
    if profile == "full" and name == "sim":
        if run["clients"] < FULL_SIM_CLIENT_FLOOR:
            problems.append(
                f"sim: {run['clients']} clients below the full-profile "
                f"floor of {FULL_SIM_CLIENT_FLOOR}"
            )
    if run["ok"] is not True:
        problems.append(f"{name}: run verdict did not pass")
    if run["violations"]:
        problems.append(f"{name}: violations recorded {run['violations']}")
    if run["msgs_per_s"] <= 0 or run["delivered"] <= 0:
        problems.append(f"{name}: no delivered throughput")
    if run["hot_switched"] != run["hot_groups"]:
        problems.append(
            f"{name}: only {run['hot_switched']}/{run['hot_groups']} hot "
            f"groups escalated"
        )
    if run["cold_switched"] != 0:
        problems.append(f"{name}: {run['cold_switched']} cold groups switched")
    if run["stray_packets"] != 0:
        problems.append(f"{name}: {run['stray_packets']} stray packets")
    per_group = run["per_group"]
    if not isinstance(per_group, list) or len(per_group) != run["groups"]:
        problems.append(
            f"{name}: per_group has {len(per_group)} reports for "
            f"{run['groups']} groups"
        )
        return
    for report in per_group:
        check_group(name, report, problems)


def main(argv):
    if len(argv) != 2:
        return usage(__doc__)
    try:
        artifact = load_artifact(argv[1])
    except ArtifactError as exc:
        print(exc)
        return 1
    problems = []
    if artifact.get("benchmark") != "bench_fleet":
        problems.append(f"benchmark name is {artifact.get('benchmark')!r}")
    if not isinstance(artifact.get("schema_version"), int):
        problems.append("schema_version missing or non-integer")
    profile = artifact.get("profile")
    if profile not in ("full", "quick"):
        problems.append(f"unknown profile {profile!r}")
    runs = artifact.get("runs")
    if not isinstance(runs, dict) or "sim" not in runs:
        problems.append("runs: missing the required 'sim' run")
        runs = {}
    for name in sorted(runs):
        if name not in ("sim", "asyncio"):
            problems.append(f"runs: unknown runtime {name!r}")
            continue
        check_run(name, runs[name], profile, problems)
    if artifact.get("pass") is not True:
        problems.append("top-level verdict did not pass")

    if report_problems(problems):
        return 1
    for name in sorted(runs):
        run = runs[name]
        print(
            f"fleet:   {name} {run['groups']} groups / {run['clients']} "
            f"clients -> {run['msgs_per_s']:.0f} msgs/s aggregate"
        )
        print(
            f"fleet:   {name} oracle {run['hot_switched']}/"
            f"{run['hot_groups']} hot switched, {run['cold_switched']} cold"
        )
    print("all fleet-benchmark checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
