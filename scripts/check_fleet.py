#!/usr/bin/env python
"""Validate the fleet-benchmark artifacts.

Usage::

    python scripts/check_fleet.py benchmarks/results/fleet.json
    python scripts/check_fleet.py benchmarks/results/fleet_sharded.json \\
        [benchmarks/results/fleet.json]

Dispatches on the artifact's ``benchmark`` name.  For the shard-scaling
artifact (``benchmarks/bench_fleet_sharded.py``) it additionally checks:

* every ``shardsN`` run meets the same contract as the in-process sim
  run, plus per-shard stats (positive cpu/wall per worker, worker count
  matching the run's shard count);
* **partition parity** — every shard count's outcome projection (the
  run record minus execution-dependent keys) is byte-identical, and,
  when the in-process baseline artifact is given, identical to its
  ``sim`` run too;
* **scaling** — the recorded speedup at the top shard count (critical-
  path cpu-seconds, ``delivered / max(shard cpu_s)``) meets the
  profile's floor: >= 2.5x at 4 shards for the full 1000-group profile.

For the plain fleet artifact it checks the acceptance contract for
``benchmarks/bench_fleet.py``:

* top level carries the ``bench_fleet`` schema: benchmark name, integer
  schema version, a ``full``/``quick`` profile, per-run records, and a
  passing top-level verdict;
* the ``sim`` run is present and meets the profile's scale floor —
  ``full`` artifacts must cover >= 1000 groups and >= 100000 simulated
  clients (the tentpole claim), ``quick`` ones >= 16 groups;
* an ``asyncio`` run, when present, covers >= 32 groups (the UDP smoke
  floor);
* every run's oracle verdicts hold: all hot groups escalated to the
  token ring, zero cold groups switched, zero stray packets, no
  recorded violations;
* every run reports positive aggregate throughput and one report per
  group, each with members, its pooled sequencer, delivery counts, a
  positive per-group p99 latency, and a final protocol consistent with
  its hot/cold role.

Exit code 0 when every check passes, 1 with a report otherwise.
"""

import sys
from pathlib import Path

_SCRIPTS = str(Path(__file__).resolve().parent)
if _SCRIPTS not in sys.path:
    sys.path.insert(0, _SCRIPTS)

from _lib import ArtifactError, load_artifact, report_problems, usage

RUN_KEYS = {
    "runtime",
    "groups",
    "clients",
    "duration",
    "casts",
    "delivered",
    "msgs_per_s",
    "hot_groups",
    "hot_switched",
    "cold_switched",
    "stray_packets",
    "per_group",
    "violations",
    "ok",
    "wall_s",
    "config",
}
GROUP_KEYS = {
    "group_id",
    "hot",
    "members",
    "sequencer",
    "casts",
    "delivered",
    "p99_ms",
    "final_protocol",
    "switched",
}
PROTOCOLS = {"sequencer", "tokenring"}

#: Scale floors per (profile, run name): the artifact must prove the
#: tentpole claim at full size, and stay honest at smoke size.
GROUP_FLOORS = {
    ("full", "sim"): 1000,
    ("quick", "sim"): 16,
    ("full", "asyncio"): 32,
    ("quick", "asyncio"): 32,
}
FULL_SIM_CLIENT_FLOOR = 100_000

#: Sharded artifact: speedup floors at the sweep's top shard count.
SHARDED_SPEEDUP_FLOORS = {"full": 2.5, "quick": 1.2}
#: Full artifacts must sweep through at least this many shards.
SHARDED_MAX_SHARDS_FLOOR = {"full": 4, "quick": 2}
#: Run-record keys that vary with execution, not outcomes.
EXECUTION_KEYS = {"ok", "wall_s", "config", "shards", "shard_stats"}


def check_group(run_name, report, problems):
    label = f"{run_name}.per_group[{report.get('group_id', '?')}]"
    missing = GROUP_KEYS - set(report)
    if missing:
        problems.append(f"{label}: missing keys {sorted(missing)}")
        return
    if report["final_protocol"] not in PROTOCOLS:
        problems.append(
            f"{label}: unknown final protocol {report['final_protocol']!r}"
        )
    if report["switched"] != (report["final_protocol"] == "tokenring"):
        problems.append(f"{label}: switched flag contradicts final protocol")
    if report["hot"] != report["switched"]:
        role = "hot" if report["hot"] else "cold"
        problems.append(
            f"{label}: {role} group ended on {report['final_protocol']!r}"
        )
    if report["delivered"] <= 0:
        problems.append(f"{label}: no deliveries recorded")
    p99 = report["p99_ms"]
    if not isinstance(p99, (int, float)) or p99 <= 0:
        problems.append(f"{label}: p99_ms {p99!r} is not a positive latency")
    if len(set(report["members"])) < 2:
        problems.append(f"{label}: fewer than two distinct members")
    if report["sequencer"] not in report["members"]:
        problems.append(
            f"{label}: sequencer {report['sequencer']} is not a member"
        )


def check_run(name, run, profile, problems, runtime=None):
    runtime = runtime or name
    if not isinstance(run, dict):
        problems.append(f"{name}: missing or not an object")
        return
    missing = RUN_KEYS - set(run)
    if missing:
        problems.append(f"{name}: missing keys {sorted(missing)}")
        return
    if run["runtime"] != runtime:
        problems.append(f"{name}: run records runtime {run['runtime']!r}")
    floor = GROUP_FLOORS.get((profile, runtime))
    if floor is not None and run["groups"] < floor:
        problems.append(
            f"{name}: {run['groups']} groups below the {profile}-profile "
            f"floor of {floor}"
        )
    if profile == "full" and runtime == "sim":
        if run["clients"] < FULL_SIM_CLIENT_FLOOR:
            problems.append(
                f"{name}: {run['clients']} clients below the full-profile "
                f"floor of {FULL_SIM_CLIENT_FLOOR}"
            )
    if run["ok"] is not True:
        problems.append(f"{name}: run verdict did not pass")
    if run["violations"]:
        problems.append(f"{name}: violations recorded {run['violations']}")
    if run["msgs_per_s"] <= 0 or run["delivered"] <= 0:
        problems.append(f"{name}: no delivered throughput")
    if run["hot_switched"] != run["hot_groups"]:
        problems.append(
            f"{name}: only {run['hot_switched']}/{run['hot_groups']} hot "
            f"groups escalated"
        )
    if run["cold_switched"] != 0:
        problems.append(f"{name}: {run['cold_switched']} cold groups switched")
    if run["stray_packets"] != 0:
        problems.append(f"{name}: {run['stray_packets']} stray packets")
    per_group = run["per_group"]
    if not isinstance(per_group, list) or len(per_group) != run["groups"]:
        problems.append(
            f"{name}: per_group has {len(per_group)} reports for "
            f"{run['groups']} groups"
        )
        return
    for report in per_group:
        check_group(name, report, problems)


def outcome_projection(run):
    """The execution-independent slice of a run record, canonicalised."""
    import json

    outcome = {k: v for k, v in run.items() if k not in EXECUTION_KEYS}
    return json.dumps(outcome, sort_keys=True)


def check_sharded_stats(name, run, problems):
    shards = run.get("shards")
    stats = run.get("shard_stats")
    if not isinstance(shards, int) or shards < 1:
        problems.append(f"{name}: shards {shards!r} is not a count")
        return
    if not isinstance(stats, list) or len(stats) != shards:
        problems.append(
            f"{name}: shard_stats has {len(stats) if isinstance(stats, list) else '?'} "
            f"entries for {shards} shards"
        )
        return
    if sum(s.get("groups", 0) for s in stats) != run["groups"]:
        problems.append(f"{name}: shard group counts do not sum to the fleet")
    if sum(s.get("delivered", 0) for s in stats) != run["delivered"]:
        problems.append(f"{name}: shard delivered does not sum to the fleet")
    for stat in stats:
        sid = stat.get("shard", "?")
        if not stat.get("cpu_s", 0) > 0 or not stat.get("wall_s", 0) > 0:
            problems.append(
                f"{name}: shard {sid} reports non-positive cpu/wall"
            )


def check_sharded(artifact, baseline_path, problems):
    profile = artifact.get("profile")
    if profile not in ("full", "quick"):
        problems.append(f"unknown profile {profile!r}")
        return {}
    counts = artifact.get("shard_counts")
    if not isinstance(counts, list) or not counts:
        problems.append("shard_counts missing or empty")
        return {}
    floor = SHARDED_MAX_SHARDS_FLOOR[profile]
    if max(counts) < floor:
        problems.append(
            f"sweep tops out at {max(counts)} shards; the {profile} "
            f"profile must reach {floor}"
        )
    runs = artifact.get("runs")
    if not isinstance(runs, dict):
        problems.append("runs: missing")
        return {}
    for shards in counts:
        name = f"shards{shards}"
        run = runs.get(name)
        if run is None:
            problems.append(f"runs: missing {name!r}")
            continue
        check_run(name, run, profile, problems, runtime="sim")
        if isinstance(run, dict) and not (RUN_KEYS - set(run)):
            check_sharded_stats(name, run, problems)
            if run.get("shards") != shards:
                problems.append(
                    f"{name}: run records shards={run.get('shards')!r}"
                )

    # Partition parity: recomputed here, never trusted from the file.
    projections = {
        name: outcome_projection(run)
        for name, run in runs.items()
        if isinstance(run, dict)
    }
    if len(set(projections.values())) > 1:
        problems.append(
            "outcomes differ across shard counts (partition parity broken)"
        )
    if baseline_path is not None:
        try:
            baseline = load_artifact(baseline_path)
        except ArtifactError as exc:
            problems.append(f"baseline: {exc}")
            baseline = None
        if baseline is not None:
            if baseline.get("profile") != profile:
                problems.append(
                    f"baseline profile {baseline.get('profile')!r} does not "
                    f"match {profile!r}"
                )
            elif projections and outcome_projection(
                baseline.get("runs", {}).get("sim", {})
            ) != next(iter(projections.values())):
                problems.append(
                    "shards=1 outcomes differ from the in-process baseline"
                )

    scaling = artifact.get("scaling")
    if not isinstance(scaling, dict):
        problems.append("scaling: missing")
    else:
        speedup_floor = SHARDED_SPEEDUP_FLOORS[profile]
        points = scaling.get("points", [])
        by_shards = {p.get("shards"): p for p in points}
        base = by_shards.get(min(counts))
        top = by_shards.get(max(counts))
        if base is None or top is None:
            problems.append("scaling: points missing the sweep endpoints")
        else:
            # Recompute the speedup from the recorded critical paths.
            speedup = (
                base["critical_path_cpu_s"] / top["critical_path_cpu_s"]
            )
            if speedup < speedup_floor:
                problems.append(
                    f"scaling: {speedup:.2f}x at {max(counts)} shards is "
                    f"below the {profile}-profile floor of {speedup_floor}x"
                )
    if artifact.get("pass") is not True:
        problems.append("top-level verdict did not pass")
    return runs


def main_sharded(artifact, baseline_path):
    problems = []
    if not isinstance(artifact.get("schema_version"), int):
        problems.append("schema_version missing or non-integer")
    runs = check_sharded(artifact, baseline_path, problems)
    if report_problems(problems):
        return 1
    for shards in artifact["shard_counts"]:
        run = runs[f"shards{shards}"]
        cpu = max(s["cpu_s"] for s in run["shard_stats"])
        print(
            f"sharded: {shards} shards -> critical path {cpu:.2f}s cpu, "
            f"{run['delivered'] / cpu:.0f} msgs per cpu-s"
        )
    scaling = artifact["scaling"]
    print(
        f"sharded: speedup {scaling['speedup_at_max']:.2f}x at "
        f"{max(artifact['shard_counts'])} shards (floor {scaling['floor']}x)"
    )
    print("all sharded-fleet checks passed")
    return 0


def main(argv):
    if len(argv) not in (2, 3):
        return usage(__doc__)
    try:
        artifact = load_artifact(argv[1])
    except ArtifactError as exc:
        print(exc)
        return 1
    if artifact.get("benchmark") == "bench_fleet_sharded":
        return main_sharded(artifact, argv[2] if len(argv) == 3 else None)
    if len(argv) == 3:
        return usage(__doc__)
    problems = []
    if artifact.get("benchmark") != "bench_fleet":
        problems.append(f"benchmark name is {artifact.get('benchmark')!r}")
    if not isinstance(artifact.get("schema_version"), int):
        problems.append("schema_version missing or non-integer")
    profile = artifact.get("profile")
    if profile not in ("full", "quick"):
        problems.append(f"unknown profile {profile!r}")
    runs = artifact.get("runs")
    if not isinstance(runs, dict) or "sim" not in runs:
        problems.append("runs: missing the required 'sim' run")
        runs = {}
    for name in sorted(runs):
        if name not in ("sim", "asyncio"):
            problems.append(f"runs: unknown runtime {name!r}")
            continue
        check_run(name, runs[name], profile, problems)
    if artifact.get("pass") is not True:
        problems.append("top-level verdict did not pass")

    if report_problems(problems):
        return 1
    for name in sorted(runs):
        run = runs[name]
        print(
            f"fleet:   {name} {run['groups']} groups / {run['clients']} "
            f"clients -> {run['msgs_per_s']:.0f} msgs/s aggregate"
        )
        print(
            f"fleet:   {name} oracle {run['hot_switched']}/"
            f"{run['hot_groups']} hot switched, {run['cold_switched']} cold"
        )
    print("all fleet-benchmark checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
