# Convenience targets for the protocol-switching reproduction.

.PHONY: install test bench fleet fleet-sharded reproduce examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Quick fleet sweep (sim + asyncio smoke) with its artifact validated.
fleet:
	python benchmarks/bench_fleet.py --quick --out benchmarks/results/fleet-quick.json
	python scripts/check_fleet.py benchmarks/results/fleet-quick.json

# Quick shard-scaling sweep: in-process baseline, then 1 and 2 shards,
# validated for partition parity and the scaling floor.
fleet-sharded:
	python benchmarks/bench_fleet.py --quick --no-asyncio --out benchmarks/results/fleet-quick.json
	python benchmarks/bench_fleet_sharded.py --quick --baseline benchmarks/results/fleet-quick.json --out benchmarks/results/fleet-sharded-quick.json
	python scripts/check_fleet.py benchmarks/results/fleet-sharded-quick.json benchmarks/results/fleet-quick.json

# Regenerate every paper artifact via the CLI (text reports to stdout).
reproduce:
	repro figure2
	repro table2
	repro overhead
	repro oscillation
	repro preservation

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
