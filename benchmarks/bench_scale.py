#!/usr/bin/env python
"""Scaling benchmark: group size x batch size, both total-order protocols.

Where Figure 2 sweeps *active senders* at a fixed group of 10, this sweep
holds the offered load fixed and grows the *group* (10 -> 100+), with and
without the batching layer, for both total-order protocols — plus a
mid-run sequencer->tokenring switch at scale.  It emits a JSON artifact
(`benchmarks/results/scale.json`) that is the first real entry in the
bench trajectory; `scripts/check_scale.py` validates its schema in CI.

What the sweep isolates
-----------------------

On the shared-Ethernet model every frame pays per-packet host CPU at the
sender, a wire slot, and per-packet CPU at *every* receiver; the
sequencer additionally pays receive + ordering + forward CPU per frame.
With small application payloads those per-frame costs dominate, so the
unbatched sequencer saturates near ``1 / (cpu_recv + order_cost +
cpu_send)`` aggregate messages per second no matter how large the group
is.  Batching coalesces B casts into one frame and amortizes every one
of those costs by ~B, which is what moves the crossover.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_scale.py --out my.json

Exit code 0 when the acceptance criteria hold — batched sequencer
throughput >= 2x unbatched at the largest swept group >= 50, and the
timer-wheel engine delivers a measured wall-clock uplift (identical
simulated results, >= 1.02x delivered-msgs per wall second) over the
frozen heap engine at the largest swept group — 1 when either fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.switchable import ProtocolSpec, build_switch_group
from repro.net.ethernet import EthernetNetwork, EthernetParams
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.runtime.sim_runtime import SimRuntime
from repro.sim._heapref import HeapSimulator
from repro.sim.rng import RandomStreams
from repro.sim.seeding import scale_point_seed, scale_switch_seed
from repro.stack.batching import BatchingLayer
from repro.stack.layer import Layer
from repro.stack.membership import Group
from repro.stack.stack import build_group
from repro.workloads.generator import PoissonSender
from repro.workloads.latency import LatencyProbe

SCHEMA_VERSION = 1
PROTOCOLS = ("sequencer", "tokenring")

#: How long (simulated seconds) a switch run may settle past its workload.
SETTLE_LIMIT = 25.0


@dataclass
class ScaleConfig:
    """Parameters shared by every point of the sweep."""

    group_sizes: List[int] = field(default_factory=lambda: [10, 25, 50, 100])
    batch_sizes: List[int] = field(default_factory=lambda: [1, 4, 16])
    offered: float = 1200.0  # aggregate casts/s across the senders
    active_senders: int = 6
    body_size: int = 64
    duration: float = 2.0
    warmup: float = 0.6
    linger: float = 0.02
    order_cost: float = 0.9e-3
    token_interval: float = 0.01  # SP NORMAL-token pacing (switch runs)
    switch_group_size: int = 50
    switch_offered: float = 600.0
    switch_at: float = 1.5
    switch_duration: float = 3.0
    seed: int = 42

    @classmethod
    def quick(cls) -> "ScaleConfig":
        """The CI smoke variant: two sizes, two batch settings, short runs."""
        return cls(
            group_sizes=[10, 50],
            batch_sizes=[1, 8],
            offered=1000.0,
            active_senders=5,
            duration=1.5,
            warmup=0.5,
            switch_group_size=50,
            switch_offered=400.0,
            switch_at=0.8,
            switch_duration=1.6,
        )


def _data_layers(protocol: str, max_batch: int, cfg: ScaleConfig) -> List[Layer]:
    """One member's top-to-bottom data stack for a sweep point."""
    layers: List[Layer] = []
    if max_batch > 1:
        layers.append(BatchingLayer(max_batch, cfg.linger))
    if protocol == "sequencer":
        layers.append(SequencerLayer(order_cost=cfg.order_cost))
    else:
        layers.append(TokenRingLayer())
    return layers


def _start_senders(runtime, stacks, group, cfg: ScaleConfig, offered: float):
    """Poisson senders on the *last* ranks, so rank 0 — the sequencer and
    ring coordinator — never pays send-side CPU for the workload."""
    members = list(group)
    active = min(cfg.active_senders, len(members))
    senders = []
    for rank in members[-active:]:
        sender = PoissonSender(
            runtime,
            stacks[rank],
            rate=offered / active,
            rng=stacks[rank].ctx.streams.stream(f"workload{rank}"),
            body_size=cfg.body_size,
        )
        sender.start()
        senders.append(sender)
    return senders


def _batching_totals(layers) -> Dict[str, float]:
    batches = sum(l.stats.get("batches") for l in layers)
    msgs = sum(l.stats.get("batched_msgs") for l in layers)
    return {
        "batches": batches,
        "batched_msgs": msgs,
        "mean_batch_size": (msgs / batches) if batches else 0.0,
    }


def run_point(protocol: str, group_size: int, max_batch: int,
              cfg: ScaleConfig, runtime_factory=SimRuntime) -> dict:
    """One sweep point: fixed offered load, measure delivered throughput."""
    runtime = runtime_factory()
    streams = RandomStreams(scale_point_seed(cfg.seed, group_size, max_batch))
    network = EthernetNetwork(runtime, group_size, EthernetParams(), rng=streams)
    group = Group.of_size(group_size)
    stacks = build_group(
        runtime,
        network,
        group,
        lambda rank: _data_layers(protocol, max_batch, cfg),
        streams=streams,
    )

    window_counts = {r: 0 for r in group}

    def count(rank: int):
        def on_deliver(msg) -> None:
            if runtime.now >= cfg.warmup:
                window_counts[rank] += 1

        return on_deliver

    for rank, stack in stacks.items():
        stack.on_deliver(count(rank))
    probe = LatencyProbe(runtime, warmup=cfg.warmup)
    probe.attach_all(stacks)
    _start_senders(runtime, stacks, group, cfg, cfg.offered)
    runtime.run_until(cfg.duration)

    window = cfg.duration - cfg.warmup
    per_member = [window_counts[r] / window for r in group]
    throughput = sum(per_member) / len(per_member)
    batchers = [
        s.layers[0] for s in stacks.values()
        if s.layers and isinstance(s.layers[0], BatchingLayer)
    ]
    has_samples = probe.latency.count > 0
    return {
        "protocol": protocol,
        "group_size": group_size,
        "max_batch": max_batch,
        "offered_msgs_per_s": cfg.offered,
        "delivered_msgs_per_s": round(throughput, 2),
        "mean_latency_ms": round(probe.mean_ms, 3) if has_samples else None,
        "p90_latency_ms": round(probe.quantile_ms(0.90), 3) if has_samples else None,
        "latency_samples": probe.latency.count,
        "wire_frames": network.medium.transmissions,
        "medium_utilization": round(network.medium.utilization(cfg.duration), 4),
        "rank0_cpu_utilization": round(network.cpus[0].utilization(cfg.duration), 4),
        "batching": _batching_totals(batchers),
    }


def run_switch_point(max_batch: int, cfg: ScaleConfig) -> dict:
    """A mid-run sequencer->tokenring switch at scale, batched or not."""
    runtime = SimRuntime()
    streams = RandomStreams(scale_switch_seed(cfg.seed, max_batch))
    group_size = cfg.switch_group_size
    network = EthernetNetwork(runtime, group_size, EthernetParams(), rng=streams)
    group = Group.of_size(group_size)
    specs = [
        ProtocolSpec(
            "sequencer", lambda r: _data_layers("sequencer", max_batch, cfg)
        ),
        ProtocolSpec(
            "tokenring", lambda r: _data_layers("tokenring", max_batch, cfg)
        ),
    ]
    stacks = build_switch_group(
        runtime,
        network,
        group,
        specs,
        initial="sequencer",
        variant="token",
        token_interval=cfg.token_interval,
        streams=streams,
    )
    delivered: Dict[int, int] = {r: 0 for r in group}
    for rank, stack in stacks.items():
        stack.on_deliver(lambda msg, rank=rank: delivered.__setitem__(
            rank, delivered[rank] + 1
        ))
    senders = _start_senders(runtime, stacks, group, cfg, cfg.switch_offered)

    durations: List[float] = []
    manager = stacks[group.coordinator]
    manager.protocol.on_global_complete(
        lambda __, duration: durations.append(duration)
    )
    runtime.schedule_at(
        cfg.switch_at, lambda: manager.request_switch("tokenring")
    )
    runtime.run_until(cfg.switch_duration)
    for sender in senders:
        sender.stop()
    # Let the group settle: a saturated unbatched sequencer has a deep
    # backlog to drain before the SWITCH vector check passes.
    settle_deadline = cfg.switch_duration + SETTLE_LIMIT
    while runtime.now < settle_deadline and (
        manager.core.switches_completed < 1
        or any(stacks[r].switching for r in group)
    ):
        runtime.run_for(0.25)

    finals = {stacks[r].current_protocol for r in group}
    counts = set(delivered.values())
    return {
        "group_size": group_size,
        "max_batch": max_batch,
        "offered_msgs_per_s": cfg.switch_offered,
        "switch_completed": manager.core.switches_completed >= 1,
        "switch_duration_ms": round(durations[0] * 1e3, 3) if durations else None,
        "settled_at_s": round(runtime.now, 3),
        "final_protocols": sorted(finals),
        "all_on_target": finals == {"tokenring"},
        "members_agree_on_delivery_count": len(counts) == 1,
        "delivered_per_member": min(counts),
    }


def run_engine_uplift(cfg: ScaleConfig, reps: int = 5) -> dict:
    """Wall-clock A/B of the timer-wheel engine against the frozen heap.

    Replays the largest-group unbatched sequencer cell on the current
    engine and on the pre-wheel heap reference (``repro.sim._heapref``),
    best-of-``reps`` per side with the reps *interleaved* (and the
    collector drained before each) so clock drift or garbage left over
    from the main sweep lands on both engines instead of biasing
    whichever ran second.  Simulated results must be identical — the
    wheel is a pure engine swap — so the only thing allowed to move is
    how many delivered (simulated) messages one wall-clock second buys.
    Bar: >= 1.02x (typically 1.1-1.3x at n=100; pinned low so noisy CI
    runners cannot flake the gate).
    """
    import gc

    size = max(cfg.group_sizes)

    def timed(factory):
        gc.collect()
        start = time.perf_counter()
        point = run_point("sequencer", size, 1, cfg,
                          runtime_factory=factory)
        return point, time.perf_counter() - start

    wheel_wall = heap_wall = float("inf")
    wheel_point = heap_point = None
    for __ in range(reps):
        wheel_point, wall = timed(SimRuntime)
        wheel_wall = min(wheel_wall, wall)
        heap_point, wall = timed(lambda: SimRuntime(HeapSimulator()))
        heap_wall = min(heap_wall, wall)
    parity = wheel_point == heap_point
    window = cfg.duration - cfg.warmup
    delivered_total = wheel_point["delivered_msgs_per_s"] * window * size
    speedup = heap_wall / wheel_wall
    return {
        "group_size": size,
        "protocol": "sequencer",
        "max_batch": 1,
        "reps": reps,
        "deterministic_parity": parity,
        "delivered_msgs_per_s": wheel_point["delivered_msgs_per_s"],
        "heap_wall_s": round(heap_wall, 4),
        "wheel_wall_s": round(wheel_wall, 4),
        "heap_delivered_per_wall_s": round(delivered_total / heap_wall, 1),
        "wheel_delivered_per_wall_s": round(delivered_total / wheel_wall, 1),
        "speedup": round(speedup, 3),
        "threshold": 1.02,
        "pass": parity and speedup >= 1.02,
    }


def evaluate_acceptance(points: List[dict]) -> dict:
    """Batched vs. unbatched sequencer at the largest group >= 50."""
    eligible = [
        p for p in points
        if p["protocol"] == "sequencer" and p["group_size"] >= 50
    ]
    verdict = {
        "criterion": (
            "batched sequencer delivers >= 2x the unbatched throughput "
            "at a group of >= 50 on the sim runtime"
        ),
        "group_size": None,
        "unbatched_msgs_per_s": None,
        "best_batched_msgs_per_s": None,
        "best_max_batch": None,
        "speedup": None,
        "pass": False,
    }
    for size in sorted({p["group_size"] for p in eligible}, reverse=True):
        at_size = [p for p in eligible if p["group_size"] == size]
        base = [p for p in at_size if p["max_batch"] == 1]
        batched = [p for p in at_size if p["max_batch"] > 1]
        if not base or not batched:
            continue
        best = max(batched, key=lambda p: p["delivered_msgs_per_s"])
        unbatched = base[0]["delivered_msgs_per_s"]
        speedup = (
            best["delivered_msgs_per_s"] / unbatched if unbatched else float("inf")
        )
        verdict.update(
            group_size=size,
            unbatched_msgs_per_s=unbatched,
            best_batched_msgs_per_s=best["delivered_msgs_per_s"],
            best_max_batch=best["max_batch"],
            speedup=round(speedup, 3),
        )
        verdict["pass"] = speedup >= 2.0
        break
    return verdict


def _row(p: dict) -> str:
    lat = (
        f"mean={p['mean_latency_ms']:8.2f}ms p90={p['p90_latency_ms']:8.2f}ms"
        if p["mean_latency_ms"] is not None
        else "no latency samples"
    )
    return (
        f"{p['protocol']:<10} n={p['group_size']:<4} B={p['max_batch']:<3} "
        f"delivered={p['delivered_msgs_per_s']:8.1f}/s {lat} "
        f"frames={p['wire_frames']:<6} medium={p['medium_utilization']:.0%}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny sweep for CI smoke (two sizes, two batch settings)",
    )
    parser.add_argument(
        "--out", default=None,
        help="artifact path (default benchmarks/results/scale.json)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed")
    parser.add_argument(
        "--sizes", default=None,
        help="comma-separated group sizes overriding the default sweep",
    )
    parser.add_argument(
        "--batches", default=None,
        help="comma-separated max_batch values overriding the default sweep",
    )
    args = parser.parse_args(argv)

    cfg = ScaleConfig.quick() if args.quick else ScaleConfig()
    if args.seed is not None:
        cfg.seed = args.seed
    if args.sizes:
        cfg.group_sizes = [int(s) for s in args.sizes.split(",")]
    if args.batches:
        cfg.batch_sizes = [int(b) for b in args.batches.split(",")]
    out = args.out
    if out is None:
        import os

        out = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "results", "scale.json"
        )

    points = []
    for protocol in PROTOCOLS:
        for size in cfg.group_sizes:
            for batch in cfg.batch_sizes:
                point = run_point(protocol, size, batch, cfg)
                points.append(point)
                print(_row(point), flush=True)

    switch_runs = []
    for batch in (min(cfg.batch_sizes), max(cfg.batch_sizes)):
        run = run_switch_point(batch, cfg)
        switch_runs.append(run)
        print(
            f"switch     n={run['group_size']:<4} B={run['max_batch']:<3} "
            f"completed={run['switch_completed']} "
            f"duration={run['switch_duration_ms']}ms "
            f"settled_at={run['settled_at_s']}s",
            flush=True,
        )

    uplift = run_engine_uplift(cfg)
    print(
        f"engine     n={uplift['group_size']:<4} wheel "
        f"{uplift['wheel_delivered_per_wall_s']}/wall-s vs heap "
        f"{uplift['heap_delivered_per_wall_s']}/wall-s -> "
        f"{uplift['speedup']}x (parity={uplift['deterministic_parity']})",
        flush=True,
    )

    verdict = evaluate_acceptance(points)
    artifact = {
        "benchmark": "bench_scale",
        "schema_version": SCHEMA_VERSION,
        "quick": bool(args.quick),
        "config": {
            "group_sizes": cfg.group_sizes,
            "batch_sizes": cfg.batch_sizes,
            "offered_msgs_per_s": cfg.offered,
            "active_senders": cfg.active_senders,
            "body_size": cfg.body_size,
            "duration_s": cfg.duration,
            "warmup_s": cfg.warmup,
            "linger_s": cfg.linger,
            "order_cost_s": cfg.order_cost,
            "seed": cfg.seed,
        },
        "points": points,
        "switch_runs": switch_runs,
        "engine_uplift": uplift,
        "acceptance": verdict,
    }
    with open(out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"\nartifact: {out}")
    if verdict["group_size"] is None:
        print("acceptance: sweep had no >=50 group with both batch settings")
        return 1
    print(
        f"acceptance: n={verdict['group_size']} sequencer "
        f"{verdict['unbatched_msgs_per_s']}/s unbatched vs "
        f"{verdict['best_batched_msgs_per_s']}/s at B="
        f"{verdict['best_max_batch']} -> {verdict['speedup']}x "
        f"({'PASS' if verdict['pass'] else 'FAIL'})"
    )
    print(
        f"engine uplift: {uplift['speedup']}x wall-clock over the heap "
        f"engine at n={uplift['group_size']} "
        f"({'PASS' if uplift['pass'] else 'FAIL'})"
    )
    return 0 if verdict["pass"] and uplift["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
