"""Section 7 oscillation vs. hysteresis.

Paper: "If switching too aggressively, the resulting protocol starts
oscillating.  If we make our protocol less aggressive (by adding a
hysteresis) ..."

Workload: five steady senders plus one fluttering on/off, so the active
count hovers exactly at the crossover.  The aggressive single-threshold
oracle flips repeatedly; the hysteresis oracle (band + dwell) does not.
"""

from repro.workloads.experiment import (
    Figure2Config,
    run_oscillation_experiment,
)

CONFIG = Figure2Config(duration=3.5, warmup=0.75, seed=42)


def test_oscillation_vs_hysteresis(benchmark, report):
    def run():
        return {
            policy: run_oscillation_experiment(policy, CONFIG, duration=12.0)
            for policy in ("aggressive", "hysteresis")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    aggressive = results["aggressive"]
    hysteresis = results["hysteresis"]

    lines = [
        "Section 7: oracle policy comparison (load fluttering at the "
        "crossover, 12 s)",
        "",
        f"{'policy':<12} {'requests':>9} {'completed':>10} {'mean latency':>13}",
    ]
    for r in (aggressive, hysteresis):
        lines.append(
            f"{r.policy:<12} {r.switch_requests:>9} "
            f"{r.switches_completed:>10} {r.mean_latency_ms:>11.2f}ms"
        )
    lines.append("")
    lines.append("paper: aggressive switching oscillates; hysteresis fixes it.")
    report("hysteresis.txt", "\n".join(lines))

    assert aggressive.switch_requests >= 4, "aggressive policy should flap"
    assert hysteresis.switch_requests <= 2, "hysteresis should hold steady"
    assert aggressive.switch_requests >= 3 * max(1, hysteresis.switch_requests)
