"""Extra figure: latency vs. group size (fixed light load).

Not a figure in the paper, but the structural claim behind its token
curve — "the latency is relatively high under low load since processes
have to await the token" — is a statement about the ring, and rings grow
with the group.  This sweep shows the token ring's latency rising
roughly linearly with group size while the sequencer's (two network
hops) stays nearly flat, at a fixed two active senders.
"""

from repro.workloads.experiment import Figure2Config, run_group_size_sweep

CONFIG = Figure2Config(duration=2.5, warmup=0.5, seed=42)
SIZES = [3, 5, 8, 12, 16]


def test_group_size_scaling(benchmark, report):
    def run():
        return {
            protocol: run_group_size_sweep(protocol, SIZES, 2, CONFIG)
            for protocol in ("sequencer", "token")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    seq = results["sequencer"]
    tok = results["token"]

    lines = [
        "Extra figure: latency vs. group size (2 active senders, 50 msg/s)",
        "",
        f"{'group size':>11} {'sequencer':>12} {'token':>12} {'ratio':>7}",
    ]
    for n, (s, t) in zip(SIZES, zip(seq, tok)):
        lines.append(
            f"{n:>11} {s.mean_ms:>10.2f}ms {t.mean_ms:>10.2f}ms "
            f"{t.mean_ms / s.mean_ms:>7.1f}"
        )
    lines.append("")
    lines.append("token latency grows with the ring; sequencer stays ~flat —")
    lines.append("the structural reason the paper's token curve starts high.")
    report("group_size.txt", "\n".join(lines))

    # Sequencer roughly flat: < 2x across a 5x group-size range.
    assert seq[-1].mean_ms < 2.0 * seq[0].mean_ms
    # Token grows substantially (roughly linearly) with the ring.
    assert tok[-1].mean_ms > 2.5 * tok[0].mean_ms
    # And the gap widens monotonically in group size.
    ratios = [t.mean_ms / s.mean_ms for s, t in zip(seq, tok)]
    assert ratios[-1] > ratios[0]
