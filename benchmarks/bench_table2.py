"""Table 2: which properties satisfy which meta-properties.

The paper fills this matrix by hand (backed by Nuprl proofs [3]); we fill
it by bounded exhaustive model checking over per-property trace universes
— every ✗ cell is refuted with a concrete counterexample, every ✓ cell is
verified over the whole bounded universe.

The benchmark asserts agreement with all 25 cells the paper's prose pins,
and reports the computed verdicts for the remaining cells (our
formalizations make Amoeba and Virtual Synchrony non-Composable too;
EXPERIMENTS.md discusses why that strengthens the paper's story).
"""

from repro.traces.meta import ALL_META_PROPERTIES, Composable
from repro.traces.report import PAPER_TABLE_2, matrix_agreement, render_matrix
from repro.traces.universes import table2_universes
from repro.traces.verify import compute_matrix, shrink_counterexample


def test_table2_matrix(benchmark, report):
    def compute():
        universes = table2_universes("thorough")
        return compute_matrix(
            universes, list(ALL_META_PROPERTIES), PAPER_TABLE_2
        )

    cells = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_matrix(cells)
    agreeing, pinned = matrix_agreement(cells)

    lines = [text, "", f"agreement with paper-pinned cells: {agreeing}/{pinned}"]
    disagreements = [
        c for c in cells
        if c.paper_says is not None and not c.agrees_with_paper
    ]
    for cell in disagreements:
        lines.append(f"DISAGREEMENT: {cell.property_name} / {cell.meta_name}")
    counterexamples = [
        c for c in cells if not c.verdict.preserved
    ]
    properties = {prop.name: prop for prop, __ in table2_universes("fast")}
    metas = {meta.name: meta for meta in ALL_META_PROPERTIES}
    lines.append("")
    lines.append("counterexamples found for every refuted cell (shrunk):")
    for cell in counterexamples:
        ce = cell.verdict.counterexample
        meta = metas[cell.meta_name]
        if not isinstance(meta, Composable):
            ce = shrink_counterexample(
                properties[cell.property_name], meta, ce
            )
        lines.append(
            f"  {cell.property_name} / {cell.meta_name}: below={ce.below!r} "
            f"above={ce.above!r} ({ce.explanation})"
        )
    report("table2.txt", "\n".join(lines))

    assert pinned == 25
    assert agreeing == 25, f"disagreements: {disagreements}"
    # Every refuted cell carries a machine-checkable counterexample.
    for cell in counterexamples:
        assert cell.verdict.counterexample is not None
