"""Benchmark configuration: results directory and report helpers."""

import json
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Write (and echo) a paper-artifact report file."""

    def write(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text)
        sys.stdout.write(f"\n===== {name} =====\n{text}\n")

    return write


@pytest.fixture
def report_json(results_dir):
    """Write (and echo) a machine-readable JSON artifact."""

    def write(name: str, payload) -> None:
        path = results_dir / name
        text = json.dumps(payload, indent=2, sort_keys=True)
        path.write_text(text + "\n")
        sys.stdout.write(f"\n===== {name} =====\n{text}\n")

    return write
