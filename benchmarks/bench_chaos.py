"""Fault-tolerance overhead of the resilient token SP under chaos.

The FT machinery (hop acks, watchdogs, regeneration) must keep switches
completing under control-channel loss at a bounded cost.  We run the
seeded chaos harness at increasing loss rates and record how completion
and recovery effort scale; the oracle properties must hold at every
point — a chaotic run that converges slowly is fine, one that wedges or
diverges is a bug.
"""

from repro.testing.chaos import ChaosConfig, CrashWindow, run_chaos

LOSS_POINTS = (0.0, 0.1, 0.2)


def test_chaos_under_control_loss(benchmark, report):
    def run():
        results = {}
        for loss in LOSS_POINTS:
            results[loss] = run_chaos(
                ChaosConfig(
                    seed=42,
                    duration=4.0,
                    cast_rate=80.0,
                    control_loss=loss,
                )
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Chaos: FT token SP under control-channel loss (seed 42)",
        "",
        f"{'loss':>6} {'completed':>10} {'aborted':>8} {'regens':>7} "
        f"{'retransmits':>12} {'settled':>9}",
    ]
    for loss, r in results.items():
        lines.append(
            f"{loss:>6.2f} {r.switches_completed:>10} "
            f"{r.switches_aborted:>8} "
            f"{r.counters.get('regenerated_tokens', 0):>7} "
            f"{r.counters.get('hop_retransmits', 0):>12} "
            f"{r.settle_time:>8.1f}s"
        )
    report("chaos_loss.txt", "\n".join(lines))

    for loss, r in results.items():
        assert r.ok, f"oracle violations at loss={loss}: {r.violations}"
        # Liveness: switching keeps making progress under loss.
        assert r.switches_completed + r.switches_aborted >= 1
    # The fault-free run needs no hop retransmissions at all.
    assert results[0.0].counters.get("hop_retransmits", 0) == 0


def test_chaos_with_crash_and_recovery(benchmark, report):
    def run():
        return run_chaos(
            ChaosConfig(
                seed=7,
                members=5,
                duration=4.0,
                cast_rate=80.0,
                control_loss=0.1,
                crashes=[
                    CrashWindow(2, at=1.0, until=2.5),
                    CrashWindow(4, at=3.0),
                ],
            )
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Chaos: crash + recovery during switches", "", result.summary()]
    report("chaos_crash.txt", "\n".join(lines))

    assert result.ok, result.violations
    assert result.counters.get("node_failures", 0) == 2
    assert result.counters.get("node_recoveries", 0) == 1
