#!/usr/bin/env python
"""Shard-scaling sweep: the fleet benchmark across worker processes.

Runs the pinned fleet profile at several shard counts through
:func:`repro.fleet.sharding.run_fleet_sharded` and writes one scaling
artifact (``benchmarks/results/fleet_sharded.json``).  Two claims, both
validated by ``scripts/check_fleet.py`` in CI:

* **parity** — sharding changes *where* groups run, never *what* they
  do: every shard count produces byte-identical per-group outcomes, and
  ``--shards 1`` reproduces the in-process artifact
  (``benchmarks/results/fleet.json``) exactly.
* **scaling** — the run's critical path shrinks near-linearly with the
  shard count.  The honest metric on a machine with fewer cores than
  shards is **per-shard CPU seconds**: each worker measures its own
  ``time.process_time()``, and the sweep scores
  ``delivered / max(shard_cpu_s)`` — the aggregate throughput the shard
  layout sustains once one core per shard exists.  Elapsed wall time is
  recorded alongside so a many-core machine can confirm the two
  converge; on this repo's single-core CI they cannot, and the artifact
  says so (``cores``).

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_sharded.py          # 1/2/4
    PYTHONPATH=src python benchmarks/bench_fleet_sharded.py --quick  # CI: 1/2
    PYTHONPATH=src python benchmarks/bench_fleet_sharded.py --shards 1,2,4,8

Exit code 0 when every run's verdicts hold, outcomes agree across all
shard counts (and with the baseline artifact when present), and the
speedup floor is met.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict, replace
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_fleet  # noqa: E402
from repro.fleet import run_fleet_sharded  # noqa: E402

SCHEMA_VERSION = 1

#: Speedup floor at the sweep's top shard count, per profile.  Full:
#: the tentpole claim (>= 2.5x at 4 shards on the 1000-group profile).
#: Quick: the 64-group smoke's hot groups hash 2:1 across two shards,
#: so its ideal speedup is ~1.6x; 1.2x proves scaling without flaking.
SPEEDUP_FLOORS = {"full": 2.5, "quick": 1.2}

#: Run-record keys that depend on execution, not on outcomes.
EXECUTION_KEYS = {"ok", "wall_s", "config", "shards", "shard_stats"}


def outcome_projection(run: Dict[str, Any]) -> str:
    """The execution-independent slice of a run record, canonicalised."""
    outcome = {k: v for k, v in run.items() if k not in EXECUTION_KEYS}
    return json.dumps(outcome, sort_keys=True)


def run_one(shards: int, config) -> Dict[str, Any]:
    config = replace(config, shards=shards)
    print(
        f"[shards={shards}] {config.groups} groups x {config.members} "
        f"members over {config.nodes} nodes, {config.clients} clients..."
    )
    start = time.perf_counter()
    result = run_fleet_sharded(config)
    wall = time.perf_counter() - start
    print(result.summary())
    print(f"  wall: {wall:.1f}s\n")
    record = result.as_dict()
    record["ok"] = result.ok
    record["wall_s"] = round(wall, 3)
    record["config"] = asdict(config)
    return record


def critical_path_cpu_s(run: Dict[str, Any]) -> float:
    return max(stat["cpu_s"] for stat in run["shard_stats"])


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: the 64-group profile at 1 and 2 shards",
    )
    parser.add_argument(
        "--shards",
        default=None,
        help="comma-separated shard counts (default 1,2,4; quick: 1,2)",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/results/fleet.json",
        metavar="FILE",
        help="in-process fleet artifact the shards=1 run must reproduce "
        "(skipped with a note when absent or profile-mismatched)",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results/fleet_sharded.json",
        metavar="FILE",
        help="artifact path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    profile = "quick" if args.quick else "full"
    config = (
        bench_fleet.quick_sim_config()
        if args.quick
        else bench_fleet.full_sim_config()
    )
    if args.shards:
        shard_counts = [int(s) for s in args.shards.split(",")]
    else:
        shard_counts = [1, 2] if args.quick else [1, 2, 4]

    runs: Dict[str, Dict[str, Any]] = {}
    for shards in shard_counts:
        runs[f"shards{shards}"] = run_one(shards, config)

    # ------------------------------------------------------------------
    # Parity: outcomes must not depend on the partition.
    # ------------------------------------------------------------------
    projections = {
        name: outcome_projection(run) for name, run in runs.items()
    }
    reference = projections[f"shards{shard_counts[0]}"]
    self_parity = all(p == reference for p in projections.values())

    baseline_parity: Optional[bool] = None
    baseline_note = None
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError):
        baseline = None
        baseline_note = f"baseline {args.baseline!r} not readable; skipped"
    if baseline is not None:
        if baseline.get("profile") != profile:
            baseline_note = (
                f"baseline profile {baseline.get('profile')!r} != "
                f"{profile!r}; skipped"
            )
        else:
            baseline_parity = (
                outcome_projection(baseline["runs"]["sim"]) == reference
            )

    # ------------------------------------------------------------------
    # Scaling: critical-path CPU seconds per shard count.
    # ------------------------------------------------------------------
    base_cpu = critical_path_cpu_s(runs[f"shards{shard_counts[0]}"])
    points: List[Dict[str, Any]] = []
    for shards in shard_counts:
        run = runs[f"shards{shards}"]
        cpu = critical_path_cpu_s(run)
        points.append(
            {
                "shards": shards,
                "critical_path_cpu_s": round(cpu, 3),
                "total_cpu_s": round(
                    sum(s["cpu_s"] for s in run["shard_stats"]), 3
                ),
                "wall_s": run["wall_s"],
                "delivered": run["delivered"],
                "msgs_per_cpu_s": round(run["delivered"] / cpu, 1),
                "speedup": round(base_cpu / cpu, 3),
            }
        )
    floor = SPEEDUP_FLOORS[profile]
    speedup_at_max = points[-1]["speedup"]
    scaling_ok = speedup_at_max >= floor

    verdicts_ok = all(run["ok"] for run in runs.values())
    passed = (
        verdicts_ok
        and self_parity
        and baseline_parity is not False
        and scaling_ok
    )
    artifact = {
        "benchmark": "bench_fleet_sharded",
        "schema_version": SCHEMA_VERSION,
        "profile": profile,
        "cores": os.cpu_count(),
        "shard_counts": shard_counts,
        "runs": runs,
        "parity": {
            "self": self_parity,
            "baseline": baseline_parity,
            "baseline_note": baseline_note,
        },
        "scaling": {
            "metric": "delivered / max(shard cpu_s)",
            "points": points,
            "speedup_at_max": speedup_at_max,
            "floor": floor,
            "pass": scaling_ok,
        },
        "pass": passed,
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {args.out}")

    for point in points:
        print(
            f"  shards={point['shards']}: critical path "
            f"{point['critical_path_cpu_s']}s cpu -> "
            f"{point['msgs_per_cpu_s']:.0f} msgs per cpu-s "
            f"(speedup {point['speedup']:.2f}x, wall {point['wall_s']}s)"
        )
    print(
        f"parity: self={'ok' if self_parity else 'MISMATCH'} "
        f"baseline={baseline_parity if baseline_parity is not None else baseline_note}"
    )
    print(
        f"scaling: {speedup_at_max:.2f}x at {shard_counts[-1]} shards "
        f"(floor {floor}x) -> {'ok' if scaling_ok else 'FAIL'}"
    )
    if not passed:
        print("FAILED")
        return 1
    print("all sharded-fleet checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
