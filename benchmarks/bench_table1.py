"""Table 1: the property catalog.

Table 1 is definitional rather than experimental; reproducing it means
showing every property is (a) implemented as an executable predicate and
(b) non-trivial — there exist traces where it holds and traces where it
fails, which we exhibit per row.  The timed portion benchmarks predicate
evaluation over large generated executions (the evaluation cost is what
the bounded model checker pays millions of times in bench_table2).
"""

import random

from repro.traces.generators import (
    random_reliable_execution,
    random_total_order_execution,
    random_vs_execution,
)
from repro.traces.properties import (
    Amoeba,
    Confidentiality,
    Integrity,
    NoReplay,
    PrioritizedDelivery,
    Reliability,
    TotalOrder,
    VirtualSynchrony,
)
from repro.traces.universes import table2_universes

PAPER_DESCRIPTIONS = {
    "Reliability": "Every message that is sent is delivered to all receivers",
    "Total Order": "Processes that deliver the same two messages deliver "
    "them in the same order",
    "Integrity": "Messages cannot be forged; they are sent by trusted "
    "processes",
    "Confidentiality": "Non-trusted processes cannot see messages from "
    "trusted processes",
    "No Replay": "A message body can be delivered at most once to a process",
    "Prioritized Delivery": "The master process always delivers a message "
    "before any one else",
    "Amoeba": "A process is blocked from sending while it is awaiting its "
    "own messages",
    "Virtual Synchrony": "A process only delivers messages from processes "
    "in some common view",
}


def test_table1_catalog(benchmark, report):
    """Each Table 1 row: description + witness/violation counts from its
    exhaustive universe (proving the predicate is non-trivial)."""
    lines = [
        "Table 1: properties as executable predicates",
        "",
        f"{'property':<22} {'holds':>8} {'fails':>8}  description",
        "-" * 100,
    ]
    universes = benchmark.pedantic(
        lambda: table2_universes("fast"), rounds=1, iterations=1
    )
    for prop, universe in universes:
        holding = sum(1 for trace in universe if prop.holds(trace))
        failing = len(universe) - holding
        assert holding > 0, f"{prop.name}: no witness traces"
        assert failing > 0, f"{prop.name}: no violating traces (trivial?)"
        lines.append(
            f"{prop.name:<22} {holding:>8} {failing:>8}  "
            f"{PAPER_DESCRIPTIONS[prop.name]}"
        )
    report("table1.txt", "\n".join(lines))


def test_property_evaluation_throughput(benchmark):
    """Predicate evaluation speed over a mixed bag of 300 executions."""
    rng = random.Random(0)
    traces = []
    for __ in range(100):
        traces.append(random_total_order_execution(rng, [0, 1, 2], 6))
        traces.append(random_reliable_execution(rng, [0, 1, 2], 5))
        traces.append(random_vs_execution(rng, [0, 1, 2], 2, 3))
    properties = [
        TotalOrder(),
        Reliability(receivers={0, 1, 2}),
        Integrity(trusted={0, 1}),
        Confidentiality(trusted={0, 1}),
        NoReplay(),
        PrioritizedDelivery(master=0),
        Amoeba(),
        VirtualSynchrony(),
    ]

    def evaluate_all():
        count = 0
        for trace in traces:
            for prop in properties:
                if prop.holds(trace):
                    count += 1
        return count

    result = benchmark(evaluate_all)
    assert result > 0
