"""Ablations of the switching-protocol design choices (DESIGN.md §7).

1. **NORMAL-token pacing** — the token variant's idle overhead vs. its
   switch-initiation latency: slower pacing means fewer control packets
   but a longer wait for the NORMAL token when the oracle fires.
2. **Variant comparison** — token (3 rotations, serialized initiations)
   vs. broadcast (PREPARE/OK/SWITCH, manager-driven): switch duration on
   an otherwise idle group.
3. **Drain dependence** — the paper's observed "hitch": switching away
   from a *slow* protocol costs more, because the SP must wait for all
   of its in-flight messages ("The overhead of switching depends on the
   latency of the current protocol").
"""

from repro.core.switchable import ProtocolSpec, build_switch_group
from repro.net.ptp import LatencyMatrix, PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group
from repro.workloads.experiment import (
    Figure2Config,
    run_switch_overhead_experiment,
)


def _measure_switch(
    variant, token_interval, request_at=0.05, layers=None, blocking=False
):
    sim = Simulator()
    net = PointToPointNetwork(sim, 10, rng=RandomStreams(3))
    group = Group.of_size(10)
    factory = layers or (lambda r: [FifoLayer()])
    specs = [ProtocolSpec("A", factory), ProtocolSpec("B", factory)]
    stacks = build_switch_group(
        sim, net, group, specs, initial="A", variant=variant,
        token_interval=token_interval, block_sends_during_switch=blocking,
    )
    durations = []
    request_to_done = []
    stacks[0].protocol.on_global_complete(
        lambda __, d: (durations.append(d), request_to_done.append(sim.now - request_at))
    )
    sim.schedule_at(request_at, lambda: stacks[0].request_switch("B"))
    sim.run_until(5.0)
    control_packets = sum(
        s.transport.stats.get("unicast") + s.transport.stats.get("multicast")
        for s in stacks.values()
    )
    return {
        "duration_ms": durations[0] * 1e3 if durations else float("nan"),
        "request_to_done_ms": request_to_done[0] * 1e3 if request_to_done else float("nan"),
        "packets": control_packets,
    }


def test_ablation_token_pacing(benchmark, report):
    def run():
        return {
            interval: _measure_switch("token", interval)
            for interval in (0.001, 0.005, 0.020, 0.080)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: NORMAL-token pacing (idle 10-member group, one switch)",
        "",
        f"{'interval':>10} {'request->done':>14} {'packets(5s)':>12}",
    ]
    for interval, r in results.items():
        lines.append(
            f"{interval * 1e3:>8.0f}ms {r['request_to_done_ms']:>12.1f}ms "
            f"{r['packets']:>12}"
        )
    lines.append("")
    lines.append("tradeoff: slow pacing = fewer control packets, slower "
                 "switch initiation")
    report("ablation_pacing.txt", "\n".join(lines))

    intervals = sorted(results)
    # Initiation latency grows with pacing interval...
    assert (
        results[intervals[-1]]["request_to_done_ms"]
        > results[intervals[0]]["request_to_done_ms"]
    )
    # ...while idle control traffic shrinks.
    assert results[intervals[-1]]["packets"] < results[intervals[0]]["packets"]


def test_ablation_variant_comparison(benchmark, report):
    def run():
        return {
            "token": _measure_switch("token", 0.005),
            "broadcast": _measure_switch("broadcast", 0.005),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: SP variant (idle 10-member group)",
        "",
        f"{'variant':<12} {'switch duration':>16}",
    ]
    for name, r in results.items():
        lines.append(f"{name:<12} {r['duration_ms']:>14.1f}ms")
    lines.append("")
    lines.append("the broadcast variant is faster (1 round trip + vector")
    lines.append("broadcast vs. 3 token rotations) but cannot serialize")
    lines.append("concurrent initiations — the paper's stated reason for")
    lines.append("the token design.")
    report("ablation_variant.txt", "\n".join(lines))

    assert results["broadcast"]["duration_ms"] < results["token"]["duration_ms"]


def test_ablation_blocking_vs_nonblocking_sp(benchmark, report):
    """Extension ablation: blocking sends during the switch widens the
    preserved property class (Amoeba-style send restrictions survive;
    see the preservation bench) but introduces a send-latency hiccup the
    paper's SP is designed to avoid."""
    from repro.protocols.tokenring import TokenRingLayer
    from repro.workloads.generator import Payload

    def measure(blocking):
        sim = Simulator()
        net = PointToPointNetwork(sim, 6, rng=RandomStreams(5))
        group = Group.of_size(6)
        specs = [
            ProtocolSpec("A", lambda r: [TokenRingLayer()]),
            ProtocolSpec("B", lambda r: [TokenRingLayer()]),
        ]
        stacks = build_switch_group(
            sim, net, group, specs, initial="A", variant="broadcast",
            block_sends_during_switch=blocking,
        )
        # Steady senders; measure worst send-to-first-delivery latency
        # for messages submitted around the switch.
        latencies = []
        sent_at = {}
        for rank, stack in stacks.items():
            stack.on_deliver(
                lambda m: latencies.append(sim.now - sent_at[m.mid])
                if m.mid in sent_at and sim.now - sent_at[m.mid] >= 0
                else None
            )

        def cast(rank, i):
            mid = stacks[rank].cast(("m", i), 64)
            sent_at[mid] = sim.now

        for i in range(40):
            sim.schedule_at(0.004 * (i + 1), lambda i=i: cast(i % 6, i))
        sim.schedule_at(0.05, lambda: stacks[0].request_switch("B"))
        sim.run_until(3.0)
        blocked = sum(
            s.core.stats.get("sends_blocked") for s in stacks.values()
        )
        return max(latencies) * 1e3, blocked

    def run():
        return {
            "non-blocking (paper)": measure(False),
            "blocking (extension)": measure(True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: blocking vs. non-blocking SP (token-ring slots, one",
        "switch under a 6-member steady workload)",
        "",
        f"{'variant':<22} {'worst latency':>14} {'sends queued':>13}",
    ]
    for name, (worst, blocked) in results.items():
        lines.append(f"{name:<22} {worst:>12.1f}ms {blocked:>13}")
    lines.append("")
    lines.append("the blocking variant preserves send-restriction properties")
    lines.append("(Amoeba) at the cost of queueing sends mid-switch.")
    report("ablation_blocking.txt", "\n".join(lines))

    non_blocking = results["non-blocking (paper)"]
    blocking = results["blocking (extension)"]
    assert non_blocking[1] == 0  # the paper's SP never queues a send
    assert blocking[1] > 0  # the extension does


def test_ablation_drain_depends_on_old_protocol_latency(benchmark, report):
    """'The overhead of switching depends on the latency of the current
    protocol (the one that is being switched away from).'"""
    config = Figure2Config(duration=3.5, warmup=0.75, seed=42)

    def run():
        return {
            "sequencer->token": run_switch_overhead_experiment(
                6, "sequencer->token", config
            ),
            "token->sequencer": run_switch_overhead_experiment(
                6, "token->sequencer", config
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: drain time depends on the OLD protocol's latency",
        "(6 active senders: in-flight token messages take most of a",
        " rotation to drain; in-flight sequencer messages drain in two",
        " network hops plus queueing)",
        "",
        f"{'direction':<20} {'switch duration':>16}",
    ]
    for name, r in results.items():
        lines.append(f"{name:<20} {r.switch_duration_ms:>14.1f}ms")
    lines.append("")
    lines.append("leaving the high-latency token protocol costs more: its")
    lines.append("in-flight messages take most of a rotation to drain.")
    report("ablation_drain.txt", "\n".join(lines))

    assert (
        results["token->sequencer"].switch_duration_ms
        > results["sequencer->token"].switch_duration_ms
    )
