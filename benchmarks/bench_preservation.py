"""Experiment S6: property preservation under live switching.

Regenerates the paper's §5–§6 per-property claims against recorded
executions of the real SP — the live counterpart of the Table 2 trace
calculus — including the §8 view-switch ablation that recovers Virtual
Synchrony via the heavier mechanism.
"""

from repro.workloads.preservation import SCENARIOS, run_preservation_suite


def test_preservation_suite(benchmark, report):
    outcomes = benchmark.pedantic(
        lambda: run_preservation_suite(include_extensions=True),
        rounds=1,
        iterations=1,
    )
    paper_outcomes = outcomes[: len(SCENARIOS)]
    extension_outcomes = outcomes[len(SCENARIOS):]

    lines = [
        "Experiment S6: preservation under live protocol switching",
        "",
    ]
    for outcome in paper_outcomes:
        lines.append(outcome.row())
        if outcome.explanation and not outcome.expected_holds:
            lines.append(f"    violation detail: {outcome.explanation}")
    matches = sum(1 for o in paper_outcomes if o.as_expected)
    lines.append("")
    lines.append(f"{matches}/{len(paper_outcomes)} scenarios match the paper")
    lines.append("")
    lines.append("extensions (results this repo derives beyond the paper):")
    for outcome in extension_outcomes:
        lines.append(outcome.row())
    report("preservation.txt", "\n".join(lines))

    assert matches == len(paper_outcomes)
    assert all(o.as_expected for o in extension_outcomes)
    # The controls isolate causation: violations flip without the switch;
    # security holds flip without the defense layers (or, for the blocking
    # extension, under the paper's non-blocking SP).
    for outcome in outcomes:
        if outcome.control_holds is not None:
            assert outcome.control_holds != outcome.holds, outcome.scenario
