#!/usr/bin/env python
"""Fleet benchmark: thousands of switching groups through one process.

Where ``bench_scale.py`` grows one group, this sweep grows the *number
of groups*: a sharded :class:`~repro.fleet.manager.GroupManager`
multiplexes every group over one set of per-node ports (one network
attach per node, group-id-tagged wire frames), pool-balances the
sequencers, and runs a :class:`~repro.core.oracle.FleetOracle` that
escalates hot groups — and only hot groups — from sequencer to token
ring mid-run.

Two runs feed one artifact (``benchmarks/results/fleet.json``):

* ``sim`` — the headline sweep: 1000 groups / 100k simulated clients on
  the deterministic virtual-time runtime (client populations folded
  into compound-rate Poisson senders by superposition);
* ``asyncio`` — a 32-group smoke over real localhost UDP, proving the
  group-id wire format against the kernel's network stack.

``scripts/check_fleet.py`` validates the artifact's schema and verdict
bars in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_fleet.py --no-asyncio
    PYTHONPATH=src python benchmarks/bench_fleet.py --out my.json

Exit code 0 when every run's verdicts hold (all hot groups switched,
no cold group switched, no stray packets), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, replace
from typing import Dict, Optional

from repro.fleet import FleetConfig, run_fleet, run_fleet_sharded

SCHEMA_VERSION = 1


def full_sim_config() -> FleetConfig:
    """The headline sweep: every default — 1000 groups, 100k clients."""
    return FleetConfig()


def quick_sim_config() -> FleetConfig:
    """The CI smoke variant: same shape and margins, 1/16th the size."""
    return FleetConfig(
        groups=64,
        clients=6_400,
        nodes=16,
        duration=6.0,
    )


def asyncio_smoke_config(base_port: int) -> FleetConfig:
    """32 groups over real localhost UDP.

    Wall-clock Poisson rates over short poll windows are noisy, so the
    escalation threshold sits far above the cold delivered-rate (15/s
    vs. 100) — a latching oracle must never fire on variance alone.
    """
    return FleetConfig(
        runtime="asyncio",
        groups=32,
        members=3,
        nodes=8,
        clients=320,
        client_rate=0.5,
        hot_fraction=0.125,
        hot_multiplier=40.0,
        duration=3.0,
        warmup=0.5,
        settle=2.0,
        oracle_poll=0.5,
        high_threshold=100.0,
        token_interval=0.05,
        base_port=base_port,
    )


def run_one(label: str, config: FleetConfig) -> Dict[str, object]:
    """Drive one sweep; returns its artifact record (result + wall time)."""
    sharded = f", {config.shards} shards" if config.shards else ""
    print(
        f"[{label}] {config.groups} groups x {config.members} members "
        f"over {config.nodes} nodes, {config.clients} clients "
        f"({config.runtime} runtime{sharded})..."
    )
    start = time.perf_counter()
    result = (
        run_fleet_sharded(config) if config.shards else run_fleet(config)
    )
    wall = time.perf_counter() - start
    print(result.summary())
    print(f"  wall: {wall:.1f}s\n")
    record = result.as_dict()
    record["ok"] = result.ok
    record["wall_s"] = round(wall, 3)
    record["config"] = asdict(config)
    return record


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 64-group sim sweep instead of the full 1000",
    )
    parser.add_argument(
        "--no-asyncio",
        action="store_true",
        help="skip the UDP smoke (e.g. sandboxes without loopback sockets)",
    )
    parser.add_argument(
        "--base-port",
        type=int,
        default=47310,
        help="first UDP port for the asyncio smoke",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the sim sweep across this many worker processes "
        "(0 = in-process; outcomes are identical either way)",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results/fleet.json",
        metavar="FILE",
        help="artifact path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    profile = "quick" if args.quick else "full"
    sim_config = quick_sim_config() if args.quick else full_sim_config()
    if args.shards:
        # replace() re-runs validation (shards vs groups, sim-only).
        sim_config = replace(sim_config, shards=args.shards)

    runs: Dict[str, Dict[str, object]] = {}
    runs["sim"] = run_one("sim", sim_config)
    if not args.no_asyncio:
        runs["asyncio"] = run_one(
            "asyncio", asyncio_smoke_config(args.base_port)
        )

    passed = all(run["ok"] for run in runs.values())
    artifact = {
        "benchmark": "bench_fleet",
        "schema_version": SCHEMA_VERSION,
        "profile": profile,
        "runs": runs,
        "pass": passed,
    }
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"artifact: {args.out}")

    if not passed:
        failing = [name for name, run in runs.items() if not run["ok"]]
        print(f"FAILED runs: {failing}")
        return 1
    print("all fleet verdicts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
