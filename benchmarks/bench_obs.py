"""Observability artifacts: switch-phase timing breakdowns, and the
price of watching.

Runs the instrumented switch demo on the deterministic runtime and
publishes the per-phase breakdown of the switch — PREPARE / SWITCH /
FLUSH rotations plus the end-to-end total — as a machine-readable JSON
artifact, the shape downstream dashboards consume.  Doubles as an
integration check that the instrumentation bus records one complete
span per phase without perturbing the oracle verdict.

The telemetry-overhead kernel times the same fleet sweep with the
telemetry plane off and on (interleaved best-of-N, so drift hits both
legs equally) and pins the slowdown under a 5% budget — the number
that justifies "telemetry is cheap enough to leave on in experiments".
``scripts/check_telemetry.py --overhead`` gates the artifact in CI.
"""

import time

from repro.fleet.runner import FleetConfig, run_fleet
from repro.obs.bus import Bus
from repro.workloads.switchrun import SwitchRunConfig, run_switch_demo

PHASES = ("prepare", "switch", "flush")
OVERHEAD_BUDGET_PCT = 5.0
OVERHEAD_ROUNDS = 5


def test_switch_phase_breakdown(benchmark, report_json):
    bus = Bus(enabled=True)

    def run():
        bus.clear()
        return run_switch_demo(
            SwitchRunConfig(runtime="sim", duration=3.0, seed=42), bus=bus
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok, result.violations

    spans = {
        phase: [
            e
            for e in bus.events
            if e.kind == "X" and e.name == f"switch/{phase}"
        ]
        for phase in PHASES + ("total",)
    }
    for phase, found in spans.items():
        assert found, f"no complete switch/{phase} span recorded"

    snapshot = bus.metrics.snapshot()
    payload = {
        "runtime": result.runtime,
        "seed": result.config.seed,
        "switch_duration_ms": result.switch_duration_ms,
        "phases_ms": {
            phase: [e.dur * 1e3 for e in spans[phase]] for phase in PHASES
        },
        "total_ms": [e.dur * 1e3 for e in spans["total"]],
        "histograms": {
            name: hist
            for name, hist in snapshot["histograms"].items()
            if name.startswith("switch.")
        },
        "counters": {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith(("switch.", "token.", "net."))
        },
    }
    report_json("switch_phases.json", payload)

    # The phases partition the total: their sum cannot exceed it.
    total = payload["total_ms"][0]
    assert sum(v[0] for v in payload["phases_ms"].values()) <= total + 1e-6


def _fleet_config(telemetry: bool) -> FleetConfig:
    """The overhead workload: a 20-group sim sweep with real switches."""
    # The headline sweep's per-group rates (cold 6 deliveries/s, hot
    # 300/s, threshold 50) scaled down to a 20-group kernel.
    return FleetConfig(
        groups=20,
        members=3,
        nodes=12,
        clients=2_000,
        client_rate=0.02,
        hot_fraction=0.1,
        hot_multiplier=50.0,
        duration=10.0,
        warmup=0.5,
        settle=1.0,
        high_threshold=50.0,
        seed=9,
        telemetry=telemetry,
        telemetry_window=1.0,
    )


def test_telemetry_overhead(benchmark, report_json):
    """Fleet sweep wall-clock with the telemetry plane off vs on.

    Interleaved best-of-N: round k times the off leg then the on leg,
    so thermal / scheduler drift lands on both sides.  Best-of (not
    mean) because sim runs are deterministic — the minimum is the run
    least disturbed by the host, which is the quantity the budget is
    about.  The sim outcome must be bit-identical either way: the plane
    observes, it must never steer.
    """
    timings = {"off": [], "on": []}
    outcomes = {}
    for _ in range(OVERHEAD_ROUNDS):
        for leg in ("off", "on"):
            start = time.perf_counter()
            result = run_fleet(_fleet_config(telemetry=leg == "on"))
            timings[leg].append(time.perf_counter() - start)
            assert result.ok, result.violations
            outcome = (
                result.delivered,
                result.casts,
                result.hot_switched,
                tuple(
                    (r.group_id, r.delivered, r.final_protocol)
                    for r in result.per_group
                ),
            )
            outcomes.setdefault(leg, outcome)
            assert outcomes[leg] == outcome, "nondeterministic sim run"

    # One counted pass for pytest-benchmark's own table.
    benchmark.extra_info["runtime"] = "sim"
    benchmark.pedantic(
        lambda: run_fleet(_fleet_config(telemetry=True)),
        rounds=1,
        iterations=1,
    )

    best_off = min(timings["off"])
    best_on = min(timings["on"])
    overhead_pct = (best_on - best_off) / best_off * 100.0
    identical = (
        outcomes["off"][:3] == outcomes["on"][:3]
        and outcomes["off"][3] == outcomes["on"][3]
    )
    payload = {
        "benchmark": "telemetry_overhead",
        "schema_version": 1,
        "config": {
            "groups": 20,
            "clients": 2_000,
            "duration_s": 10.0,
            "rounds": OVERHEAD_ROUNDS,
            "seed": 9,
        },
        "off": {
            "best_s": best_off,
            "times_s": timings["off"],
            "delivered": outcomes["off"][0],
            "casts": outcomes["off"][1],
        },
        "on": {
            "best_s": best_on,
            "times_s": timings["on"],
            "delivered": outcomes["on"][0],
            "casts": outcomes["on"][1],
        },
        "overhead_pct": overhead_pct,
        "threshold_pct": OVERHEAD_BUDGET_PCT,
        "identical_outcome": identical,
    }
    report_json("telemetry_overhead.json", payload)

    assert identical, "telemetry changed the sim outcome"
    assert overhead_pct <= OVERHEAD_BUDGET_PCT, (
        f"telemetry overhead {overhead_pct:.2f}% blows the "
        f"{OVERHEAD_BUDGET_PCT}% budget"
    )
