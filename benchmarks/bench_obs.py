"""Observability artifacts: switch-phase timing breakdowns.

Runs the instrumented switch demo on the deterministic runtime and
publishes the per-phase breakdown of the switch — PREPARE / SWITCH /
FLUSH rotations plus the end-to-end total — as a machine-readable JSON
artifact, the shape downstream dashboards consume.  Doubles as an
integration check that the instrumentation bus records one complete
span per phase without perturbing the oracle verdict.
"""

from repro.obs.bus import Bus
from repro.workloads.switchrun import SwitchRunConfig, run_switch_demo

PHASES = ("prepare", "switch", "flush")


def test_switch_phase_breakdown(benchmark, report_json):
    bus = Bus(enabled=True)

    def run():
        bus.clear()
        return run_switch_demo(
            SwitchRunConfig(runtime="sim", duration=3.0, seed=42), bus=bus
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok, result.violations

    spans = {
        phase: [
            e
            for e in bus.events
            if e.kind == "X" and e.name == f"switch/{phase}"
        ]
        for phase in PHASES + ("total",)
    }
    for phase, found in spans.items():
        assert found, f"no complete switch/{phase} span recorded"

    snapshot = bus.metrics.snapshot()
    payload = {
        "runtime": result.runtime,
        "seed": result.config.seed,
        "switch_duration_ms": result.switch_duration_ms,
        "phases_ms": {
            phase: [e.dur * 1e3 for e in spans[phase]] for phase in PHASES
        },
        "total_ms": [e.dur * 1e3 for e in spans["total"]],
        "histograms": {
            name: hist
            for name, hist in snapshot["histograms"].items()
            if name.startswith("switch.")
        },
        "counters": {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith(("switch.", "token.", "net."))
        },
    }
    report_json("switch_phases.json", payload)

    # The phases partition the total: their sum cannot exceed it.
    total = payload["total_ms"][0]
    assert sum(v[0] for v in payload["phases_ms"].values()) <= total + 1e-6
