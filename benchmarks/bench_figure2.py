"""Figure 2: message latency vs. number of active senders.

Paper setup: 10 members on 10 Mbit Ethernet, each active sender at
50 msg/s; sequencer-based vs. token-based total order.  Paper result:
sequencer wins at low sender counts, token at high, with the cross-over
between 5 and 6 active senders.  We additionally run the adaptive hybrid
(§7's "best of both worlds") as a third series.

The benchmark regenerates both curves, asserts the crossover band, and
asserts the hybrid tracks (close to) the winner at both extremes.
"""

from repro.workloads.experiment import (
    Figure2Config,
    find_crossover,
    run_figure2_sweep,
    run_total_order_experiment,
)

CONFIG = Figure2Config(duration=4.0, warmup=1.0, seed=42)
SENDERS = list(range(1, 11))


def test_figure2_curves(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_figure2_sweep(("sequencer", "token"), SENDERS, CONFIG),
        rounds=1,
        iterations=1,
    )
    seq = results["sequencer"]
    tok = results["token"]

    lines = [
        "Figure 2: message latency vs. number of active senders",
        f"(group of {CONFIG.group_size}, {CONFIG.rate:.0f} msgs/sec per "
        f"sender, {CONFIG.body_size} B payloads, 10 Mbit Ethernet model)",
        "",
        f"{'senders':>8} {'sequencer':>12} {'token':>12}",
    ]
    for s, t in zip(seq, tok):
        lines.append(
            f"{s.active_senders:>8} {s.mean_ms:>10.2f}ms {t.mean_ms:>10.2f}ms"
        )
    crossover = find_crossover(seq, tok)
    lines.append("")
    lines.append(f"measured crossover: between {crossover[0]} and "
                 f"{crossover[1]} active senders" if crossover
                 else "no crossover measured")
    lines.append("paper:              between 5 and 6 active senders")
    report("figure2.txt", "\n".join(lines))

    # Shape assertions (who wins where, and the crossover band).
    assert seq[0].mean_ms < tok[0].mean_ms, "sequencer must win at 1 sender"
    assert seq[-1].mean_ms > tok[-1].mean_ms, "token must win at 10 senders"
    assert crossover is not None
    assert 4 <= crossover[0] <= 6, f"crossover {crossover} vs paper (5, 6)"
    # Token's curve is comparatively flat: < 3x from 1 to 10 senders.
    assert tok[-1].mean_ms < 3 * tok[0].mean_ms
    # Sequencer saturates hard by 10 senders.
    assert seq[-1].mean_ms > 5 * seq[0].mean_ms


def test_figure2_hybrid_tracks_winner(benchmark, report):
    """§7: 'a hybrid protocol formed by switching at the cross-over point
    would achieve the best of both worlds.'"""

    def run():
        return {
            k: run_total_order_experiment("hybrid", k, CONFIG)
            for k in (2, 3, 8, 9)
        }

    hybrid = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = {
        k: {
            "sequencer": run_total_order_experiment("sequencer", k, CONFIG),
            "token": run_total_order_experiment("token", k, CONFIG),
        }
        for k in (2, 3, 8, 9)
    }
    lines = ["Hybrid vs. specialized protocols (mean latency, ms)", ""]
    lines.append(f"{'senders':>8} {'sequencer':>11} {'token':>11} {'hybrid':>11} {'switches':>9}")
    for k in (2, 3, 8, 9):
        s = reference[k]["sequencer"].mean_ms
        t = reference[k]["token"].mean_ms
        h = hybrid[k].mean_ms
        lines.append(
            f"{k:>8} {s:>9.2f}ms {t:>9.2f}ms {h:>9.2f}ms {hybrid[k].switches:>9}"
        )
    report("figure2_hybrid.txt", "\n".join(lines))

    for k in (2, 3):
        best = reference[k]["sequencer"].mean_ms
        worst = reference[k]["token"].mean_ms
        # Converged on (or below) a point well under the loser's latency.
        assert hybrid[k].mean_ms < (best + worst) / 2
    for k in (8, 9):
        best = reference[k]["token"].mean_ms
        worst = reference[k]["sequencer"].mean_ms
        assert hybrid[k].mean_ms < worst / 2
        assert hybrid[k].mean_ms < 3 * best
