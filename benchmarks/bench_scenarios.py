"""Sweep the scenario catalog and report the adaptation scorecard.

The scenario testbed's promise is that the hybrid (SP + hysteresis
oracle) *adapts correctly* to network and load drift: drift scenarios
must produce their one expected switch quickly and cheaply, stability
scenarios must produce none, and the workload must survive either way.
This bench runs the full shipped catalog on the deterministic sim
runtime, asserts every verdict passes, and records the time-to-switch /
drain-cost scorecard as a results artifact — the same numbers
``repro scenario --all --json`` exports for CI.
"""

from repro.scenarios import load_catalog, run_scenario

#: Scenarios that must hold their ground (zero switches).
STABILITY = {"baseline_steady", "intermittent_connectivity",
             "mobile_handoff_jitter"}


def test_scenario_catalog_scorecard(benchmark, report, report_json):
    catalog = load_catalog()

    def run():
        return {
            name: run_scenario(spec)
            for name, spec in catalog.items()
            if "sim" in spec.runtimes
        }

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Scenario catalog: adaptation scorecard (sim runtime)",
        "",
        f"{'scenario':<26} {'verdict':>7} {'switches':>8} {'tts':>8} "
        f"{'drain':>9} {'hiccup':>9} {'delivery':>9}",
    ]
    for name, v in sorted(verdicts.items()):
        tts = f"{v.time_to_switch:.2f}s" if v.time_to_switch is not None else "-"
        drain = (
            f"{v.switch_duration_ms:.1f}ms"
            if v.switch_duration_ms is not None
            else "-"
        )
        lines.append(
            f"{name:<26} {'PASS' if v.ok else 'FAIL':>7} "
            f"{v.switches_completed:>8} {tts:>8} {drain:>9} "
            f"{v.max_hiccup_ms:>7.1f}ms {v.delivery_ratio:>9.3f}"
        )
    report("scenario_scorecard.txt", "\n".join(lines))
    report_json(
        "scenario_scorecard.json",
        {name: v.to_dict() for name, v in sorted(verdicts.items())},
    )

    assert len(verdicts) >= 8, "the shipped catalog shrank below 8 scenarios"
    for name, verdict in verdicts.items():
        assert verdict.ok, f"{name}: {verdict.violations}"
        if name in STABILITY:
            assert verdict.switches_completed == 0
            assert not verdict.decisions
        else:
            assert verdict.switches_completed >= 1
            assert verdict.delivery_ratio >= 0.8


def test_scenario_determinism(benchmark):
    """The same spec scores to the same verdict, byte for byte."""
    spec = load_catalog()["congestion_collapse"]

    def run():
        return run_scenario(spec).to_dict()

    first = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first == run_scenario(spec).to_dict()
