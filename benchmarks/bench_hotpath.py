#!/usr/bin/env python
"""Hot-path microbenchmarks: headers, codec, timers and delivery.

Six kernels, each timing the optimized implementation against the
baseline it replaced:

``header_hop``
    One multicast hop through a 9-layer stack delivered to a group of
    8: push every layer's header once on the way down, then pop all 9
    in reverse at *each* receiver.  The baseline is the seed's
    dict-copy-on-write ``Message`` (reproduced inline below); the
    optimized path is the persistent header chain, whose LIFO pops are
    O(1) unlinks and whose multicast pops after the first receiver are
    memoized loads.  Bar: >= 2x.

``codec_roundtrip``
    Encode + decode of a representative sequencer data message (fifo +
    seqr + rel headers, 256 B payload accounting) through the binary
    ``WireCodec`` vs. ``pickle`` of the same ``(src, dst, msg)``
    triple.  Bars: faster than pickle (>= 1x) and strictly smaller.

``multicast_fanout``
    The datagram bytes for one 8-destination multicast.  The codec
    encodes the payload once and re-frames 6 bytes per destination;
    the baseline pickles the whole triple once per destination, as the
    seed's UDP transport did.  Bar: >= 2x.

``timer_churn``
    The deadline-refresh pattern that dominates failure detectors and
    retransmit timers: 64 armed timers, 512 refreshes, then a drain.
    The baseline is the frozen pre-wheel heap engine
    (``repro.sim._heapref``) refreshing via cancel + schedule — every
    refresh pushes a fresh heap entry and leaves a dead one behind;
    the optimized path is the hashed timer wheel's fused ``rearm``,
    which retimes the live entry in place.  Bar: >= 2x.

``decode_fanin``
    Decode of the datagram mix a sequencer fan-in sees (mostly small
    ordered data messages, a few fat bodies) against the frozen
    pre-optimization decoder (reproduced inline below).  The rebuilt
    decoder wins on precompiled rank-tuple structs, precomputed header
    bloom bits, and frequency-ordered tag dispatch — *not* on
    memoryview zero-copy, which was built, measured slower at every
    site on CPython 3.11, and rejected (see docs/ARCHITECTURE.md).
    Bar: >= 1x (strictly faster).

``pooled_deliver``
    The steady-state deliver loop: decode a datagram, drop it at
    delivery completion, recycle the ``Message`` shell through the
    refcount-guarded pool — against allocating a fresh shell per
    datagram.  On CPython 3.11 recycling is break-even with obmalloc
    (pop + guard + strip costs about what ``__new__`` + dealloc does),
    so this kernel is pinned as a *soundness and non-regression* gate,
    not a speedup claim: the leak-check invariants must hold (zero
    rejections, exactly one live shell in steady state) and recycling
    must stay within 5% of raw allocation.  What the pool buys is
    bounded shell churn with a safety proof, not nanoseconds; the raw-
    speed wins of this pass live in the wheel and decoder kernels.
    Bar: >= 0.95x.

Timings use best-of-N (``min`` over ``timeit.repeat``), which is the
stable estimator on noisy shared runners — the minimum approaches the
true cost while means drift with scheduler interference.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    PYTHONPATH=src python benchmarks/bench_hotpath.py --out micro.json

Writes ``benchmarks/results/micro.json`` (validated in CI by
``scripts/check_micro.py``).  Exit code 0 when every kernel clears its
bar, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import marshal
import os
import pickle
import struct
import sys
import timeit
from typing import Any, Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.net.codec import (
    FRAME_OVERHEAD, WireCodec, _D, _I, _ID_TABLE, _MSG_FIXED, _Q,
    _T_BIGINT, _T_BYTES, _T_DICT, _T_FALSE, _T_FLOAT, _T_INT, _T_LIST,
    _T_MESSAGE, _T_NONE, _T_PICKLE, _T_STR, _T_TRUE, _T_TUPLE,
)
from repro.sim._heapref import HeapSimulator
from repro.sim.engine import Simulator
from repro.stack.message import BASE_WIRE_OVERHEAD, Message

SCHEMA_VERSION = 1

#: (key, value, size) pushed top-to-bottom on the way down — the shape
#: of the deep composed stack from the preservation suite.
STACK = (
    ("prio", {"k": "data"}, 6),
    ("batch", {"n": 4}, 8),
    ("mux", 3, 2),
    ("conf", "clear", 4),
    ("mac", b"\x00" * 16, 32),
    ("causal", {0: 1, 1: 5, 2: 9}, 24),
    ("rel", {"k": "data", "seq": 41, "dk": "G", "src": 3}, 10),
    ("seqr", {"k": "ord", "gseq": 1041}, 8),
    ("fifo", 41, 4),
)
GROUP = 8


class _DictMessage:
    """The seed's ``Message`` header behaviour: one dict copy per op.

    Kept as the in-benchmark baseline so the header kernel measures the
    persistent chain against exactly what it replaced, without digging
    the old class out of history.
    """

    __slots__ = ("sender", "mid", "body", "body_size", "dest", "_headers",
                 "_header_size")

    def __init__(self, sender, mid, body, body_size, dest=None, headers=None,
                 header_size=0):
        self.sender = sender
        self.mid = mid
        self.body = body
        self.body_size = body_size
        self.dest = dest
        self._headers = dict(headers) if headers else {}
        self._header_size = header_size

    def with_header(self, key, value, size=16):
        if key in self._headers:
            raise ValueError(key)
        headers = dict(self._headers)
        headers[key] = value
        return _DictMessage(self.sender, self.mid, self.body, self.body_size,
                            self.dest, headers, self._header_size + size)

    def without_header(self, key, size=16):
        if key not in self._headers:
            raise ValueError(key)
        headers = dict(self._headers)
        del headers[key]
        return _DictMessage(self.sender, self.mid, self.body, self.body_size,
                            self.dest, headers,
                            max(0, self._header_size - size))

    def with_dest(self, dest):
        return _DictMessage(self.sender, self.mid, self.body, self.body_size,
                            None if dest is None else tuple(dest),
                            self._headers, self._header_size)

    @property
    def size_bytes(self):
        return self.body_size + self._header_size + BASE_WIRE_OVERHEAD


def _hop(cls) -> int:
    """One multicast hop: sender-side pushes, ``GROUP`` receiver pops."""
    msg = cls(sender=3, mid=(3, 41), body="payload", body_size=256)
    for key, value, size in STACK:
        msg = msg.with_header(key, value, size)
    msg = msg.with_dest(None)
    total = 0
    for __ in range(GROUP):
        up = msg  # every receiver starts from the same wire object
        for key, __unused, size in reversed(STACK):
            up = up.without_header(key, size)
        total += up.size_bytes
    return total


def _compare_us(baseline, optimized, number: int,
                repeat: int) -> Tuple[float, float]:
    """Best-of-``repeat`` per-call cost of both sides, in microseconds.

    Samples alternate between the two functions so scheduler noise or a
    frequency shift lands on both sides instead of biasing whichever
    happened to run during the disturbance.
    """
    best_base = best_opt = float("inf")
    for __ in range(repeat):
        best_base = min(best_base, timeit.timeit(baseline, number=number))
        best_opt = min(best_opt, timeit.timeit(optimized, number=number))
    scale = 1e6 / number
    return best_base * scale, best_opt * scale


def _representative_message() -> Message:
    """A sequencer-ordered reliable data message, as seen on the wire."""
    return (
        Message(sender=3, mid=(3, 41), body=("payload", 41), body_size=256)
        .with_header("fifo", 41, 4)
        .with_header("seqr", {"k": "ord", "gseq": 1041}, 8)
        .with_header("rel", {"k": "data", "seq": 41, "dk": "G", "src": 3}, 10)
    )


def kernel_header_hop(number: int, repeat: int) -> Dict[str, Any]:
    assert _hop(Message) == _hop(_DictMessage)  # same observable result
    baseline, optimized = _compare_us(
        lambda: _hop(_DictMessage), lambda: _hop(Message), number, repeat
    )
    speedup = baseline / optimized
    return {
        "group": GROUP,
        "layers": len(STACK),
        "baseline_us": round(baseline, 3),
        "optimized_us": round(optimized, 3),
        "speedup": round(speedup, 3),
        "threshold": 2.0,
        "pass": speedup >= 2.0,
    }


def kernel_codec_roundtrip(number: int, repeat: int) -> Dict[str, Any]:
    codec = WireCodec()
    msg = _representative_message()
    wire = codec.encode(3, 5, msg)
    blob = pickle.dumps((3, 5, msg), pickle.HIGHEST_PROTOCOL)

    def codec_rt():
        codec.decode(codec.encode(3, 5, msg))

    def pickle_rt():
        pickle.loads(pickle.dumps((3, 5, msg), pickle.HIGHEST_PROTOCOL))

    pickle_us, codec_us = _compare_us(pickle_rt, codec_rt, number, repeat)
    speedup = pickle_us / codec_us
    return {
        "codec_bytes": len(wire),
        "pickle_bytes": len(blob),
        "pickle_us": round(pickle_us, 3),
        "codec_us": round(codec_us, 3),
        "speedup": round(speedup, 3),
        "threshold": 1.0,
        "pass": speedup >= 1.0 and len(wire) < len(blob),
    }


def kernel_multicast_fanout(number: int, repeat: int) -> Dict[str, Any]:
    codec = WireCodec()
    msg = _representative_message()
    dsts = tuple(range(GROUP))

    def codec_fanout():
        body = codec.encode_payload(msg)
        return [codec.frame(3, dst, body) for dst in dsts]

    def pickle_fanout():
        # The seed pickled the whole (src, dst, payload) triple per
        # destination: the payload bytes were re-serialized GROUP times.
        return [
            pickle.dumps((3, dst, msg), pickle.HIGHEST_PROTOCOL)
            for dst in dsts
        ]

    pickle_us, codec_us = _compare_us(
        pickle_fanout, codec_fanout, number, repeat
    )
    speedup = pickle_us / codec_us
    datagrams = codec_fanout()
    body_bytes = len(datagrams[0]) - FRAME_OVERHEAD
    return {
        "group": GROUP,
        "per_destination_overhead_bytes": FRAME_OVERHEAD,
        "shared_body_bytes": body_bytes,
        "pickle_us": round(pickle_us, 3),
        "codec_us": round(codec_us, 3),
        "speedup": round(speedup, 3),
        "threshold": 2.0,
        "pass": speedup >= 2.0,
    }


_CHURN_TIMERS = 64
_CHURN_REFRESHES = 512


def _noop() -> None:
    pass


def _churn_heap() -> int:
    """Deadline refresh on the frozen heap: cancel + schedule per hit."""
    sim = HeapSimulator()
    handles = [
        sim.schedule(0.05, _noop) for __ in range(_CHURN_TIMERS)
    ]
    for i in range(_CHURN_REFRESHES):
        slot = i & (_CHURN_TIMERS - 1)
        handles[slot].cancel()
        handles[slot] = sim.schedule(0.05, _noop)
    return sim.run()


def _churn_wheel() -> int:
    """The same workload through the wheel's fused in-place rearm."""
    sim = Simulator()
    handles = [
        sim.schedule(0.05, _noop) for __ in range(_CHURN_TIMERS)
    ]
    for i in range(_CHURN_REFRESHES):
        slot = i & (_CHURN_TIMERS - 1)
        handles[slot] = sim.rearm(handles[slot], 0.05)
    return sim.run()


def kernel_timer_churn(number: int, repeat: int) -> Dict[str, Any]:
    assert _churn_heap() == _churn_wheel() == _CHURN_TIMERS
    # A churn run is ~3 orders heavier than the other kernels' calls;
    # scale the sample size down to keep total runtime comparable.
    number = max(1, number // 40)
    baseline, optimized = _compare_us(
        _churn_heap, _churn_wheel, number, repeat
    )
    speedup = baseline / optimized
    return {
        "timers": _CHURN_TIMERS,
        "refreshes": _CHURN_REFRESHES,
        "baseline_us": round(baseline, 3),
        "optimized_us": round(optimized, 3),
        "speedup": round(speedup, 3),
        "threshold": 2.0,
        "pass": speedup >= 2.0,
    }


class _ReferenceDecode(WireCodec):
    """The decoder this repo shipped before the raw-speed pass, frozen
    as the kernel baseline.

    Byte-for-byte the pre-optimization decode loop: original dispatch
    order, a ``"!%dH" %`` format string built per packed dest tuple,
    and a hash + shift per decoded header for the chain's bloom bit.
    Decoded output is asserted identical to the optimized decoder at
    kernel setup.
    """

    def __init__(self) -> None:
        super().__init__()
        # Pre-optimization id-table rows were (key, unpack) pairs; the
        # live table now carries the precomputed bloom bit as a third
        # element.  Rebuild the old shape so the frozen loop below pays
        # exactly the old costs, no more.
        self._ref_table = [None] + [
            (key, unpack) for key, unpack, __ in _ID_TABLE[1:]
        ]

    def _decode_value(self, buf: bytes, pos: int) -> Tuple[Any, int]:
        tag = buf[pos]
        pos += 1
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_INT:
            return _Q.unpack_from(buf, pos)[0], pos + 8
        if tag == _T_BIGINT:
            length = _I.unpack_from(buf, pos)[0]
            pos += 4
            raw = buf[pos:pos + length]
            return int.from_bytes(raw, "big", signed=True), pos + length
        if tag == _T_FLOAT:
            return _D.unpack_from(buf, pos)[0], pos + 8
        if tag == _T_STR:
            length = _I.unpack_from(buf, pos)[0]
            pos += 4
            return str(buf[pos:pos + length], "utf-8"), pos + length
        if tag == _T_BYTES:
            length = _I.unpack_from(buf, pos)[0]
            pos += 4
            return buf[pos:pos + length], pos + length
        if tag == _T_TUPLE or tag == _T_LIST:
            count = _I.unpack_from(buf, pos)[0]
            pos += 4
            items = []
            for __ in range(count):
                item, pos = self._decode_value(buf, pos)
                items.append(item)
            return (tuple(items) if tag == _T_TUPLE else items), pos
        if tag == _T_DICT:
            count = _I.unpack_from(buf, pos)[0]
            pos += 4
            mapping = {}
            for __ in range(count):
                key, pos = self._decode_value(buf, pos)
                mapping[key], pos = self._decode_value(buf, pos)
            return mapping, pos
        if tag == _T_MESSAGE:
            return self._decode_message(buf, pos)
        if tag == _T_PICKLE:
            length = _I.unpack_from(buf, pos)[0]
            pos += 4
            return pickle.loads(buf[pos:pos + length]), pos + length
        raise NetworkError(f"unknown TLV tag 0x{tag:02X}")

    def _decode_message(self, buf: bytes, pos: int) -> Tuple[Any, int]:
        variant = buf[pos]
        pos += 1
        if variant == 0:
            sender, mid0, mid1, body_size, header_size = (
                _MSG_FIXED.unpack_from(buf, pos)
            )
            mid: Any = (mid0, mid1)
            pos += _MSG_FIXED.size
            dest_count = buf[pos]
            pos += 1
            if dest_count == 0xFF:
                dest: Any = None
            else:
                dest = struct.unpack_from("!%dH" % dest_count, buf, pos)
                pos += 2 * dest_count
        else:
            sender, pos = self._decode_value(buf, pos)
            mid, pos = self._decode_value(buf, pos)
            body_size, pos = self._decode_value(buf, pos)
            dest, pos = self._decode_value(buf, pos)
            header_size, pos = self._decode_value(buf, pos)
        if buf[pos] == 0:  # marshalled body
            pos += 1
            body_len = _I.unpack_from(buf, pos)[0]
            pos += 4
            body = marshal.loads(buf[pos:pos + body_len])
            pos += body_len
        else:
            pos += 1
            body, pos = self._decode_value(buf, pos)
        count = buf[pos]
        pos += 1
        id_table = self._ref_table
        chain = None
        mask = 0
        for __ in range(count):
            key_id = buf[pos]
            pos += 1
            if key_id:
                key, unpack = id_table[key_id]
                length = buf[pos]
                pos += 1
                end = pos + length
                value = unpack(buf[pos:end])
                pos = end
            else:
                key_len = buf[pos]
                pos += 1
                key = str(buf[pos:pos + key_len], "utf-8")
                pos += key_len
                value, pos = self._decode_value(buf, pos)
            mask |= 1 << (hash(key) & 63)
            chain = (mask, chain, key, value)
        message = self._message_type._from_wire(
            sender, mid, body, body_size, dest, header_size, chain
        )
        return message, pos


def _fanin_frames(codec: WireCodec) -> list:
    """The datagram mix a sequencer fan-in sees: mostly small ordered
    data messages, a few fat bodies."""

    def frame(sender, body, headers=None, dest=(1, 2, 3)):
        msg = Message(sender, (sender, 41), body, 64, dest=dest,
                      headers=headers or {})
        return codec.encode(sender, 7, msg, group=9)

    seqr = {"k": "ord", "gseq": 1041}
    rel = {"k": "data", "seq": 41, "dk": "G", "src": 3}
    frames = [
        frame(s, ("payload", 41 + s),
              {"fifo": 41 + s, "seqr": seqr, "rel": rel})
        for s in range(5)
    ]
    frames.append(frame(5, "x" * 1024, {"fifo": 99}))
    frames.append(frame(6, {"cmd": "put", "key": "k1", "val": "z" * 512}))
    frames.append(frame(7, "y" * 4096, dest=tuple(range(8))))
    return frames


def kernel_decode_fanin(number: int, repeat: int) -> Dict[str, Any]:
    codec = WireCodec()
    reference = _ReferenceDecode()
    frames = _fanin_frames(codec)
    for wire in frames:  # both decoders agree on every observable
        new = codec.decode_datagram(wire)
        old = reference.decode_datagram(wire)
        assert new[:3] == old[:3]
        assert new[3].mid == old[3].mid and new[3].body == old[3].body
        assert new[3].dest == old[3].dest
        assert dict(new[3].headers) == dict(old[3].headers)

    def baseline():
        for wire in frames:
            reference.decode_datagram(wire)

    def optimized():
        for wire in frames:
            codec.decode_datagram(wire)

    baseline_us, optimized_us = _compare_us(
        baseline, optimized, number, repeat
    )
    speedup = baseline_us / optimized_us
    return {
        "frames": len(frames),
        "baseline_us": round(baseline_us, 3),
        "optimized_us": round(optimized_us, 3),
        "speedup": round(speedup, 3),
        "threshold": 1.0,
        "pass": speedup >= 1.0 and optimized_us < baseline_us,
    }


def kernel_pooled_deliver(number: int, repeat: int) -> Dict[str, Any]:
    delivers = 64
    codec = WireCodec()
    msg = Message(3, (3, 41), ("payload", 41), 64, dest=(1, 2, 3),
                  headers={"fifo": 41})
    wire = codec.encode(3, 7, msg, group=9)

    def baseline():
        Message.pool_clear()  # pool disabled: every decode allocates
        for __ in range(delivers):
            payload = codec.decode_datagram(wire)[3]
            del payload

    def optimized():
        Message.pool_clear()
        for __ in range(delivers):
            payload = codec.decode_datagram(wire)[3]
            Message._recycle(payload)

    # Leak check: the pooled loop must recycle every shell it decodes
    # and run the whole steady state on exactly one of them.
    optimized()
    stats = Message.pool_stats()
    assert stats["rejected"] == 0 and stats["recycled"] == delivers
    assert stats["new"] + stats["reused"] == delivers
    assert stats["new"] == 1
    Message.pool_clear()

    # Honest economics (measured, CPython 3.11): pool pop + refcount
    # guard + strip costs about what ``__new__`` + refcount dealloc
    # does, and a steady-state deliver loop frees each shell by
    # refcount, so the gen-0 counter never climbs and there is no
    # collector pressure for the pool to relieve either.  The kernel
    # therefore gates the pool's *soundness* (the asserts above) and
    # pins recycling at within-5%-of-allocation so a future regression
    # in _recycle or _from_wire cannot hide.
    number = max(1, number // 40)
    baseline_us, optimized_us = _compare_us(baseline, optimized, number,
                                            repeat)
    Message.pool_clear()
    speedup = baseline_us / optimized_us
    return {
        "delivers": delivers,
        "steady_state_shells": stats["new"],
        "baseline_us": round(baseline_us, 3),
        "optimized_us": round(optimized_us, 3),
        "speedup": round(speedup, 3),
        "threshold": 0.95,
        "pass": speedup >= 0.95,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None,
        help="artifact path (default benchmarks/results/micro.json)",
    )
    parser.add_argument(
        "--number", type=int, default=2000,
        help="kernel invocations per timing sample",
    )
    parser.add_argument(
        "--repeat", type=int, default=13,
        help="timing samples per kernel (the minimum is reported)",
    )
    args = parser.parse_args(argv)

    kernels = {
        "header_hop": kernel_header_hop(args.number, args.repeat),
        "codec_roundtrip": kernel_codec_roundtrip(args.number, args.repeat),
        "multicast_fanout": kernel_multicast_fanout(args.number, args.repeat),
        "timer_churn": kernel_timer_churn(args.number, args.repeat),
        "decode_fanin": kernel_decode_fanin(args.number, args.repeat),
        "pooled_deliver": kernel_pooled_deliver(args.number, args.repeat),
    }
    for name, result in kernels.items():
        verdict = "PASS" if result["pass"] else "FAIL"
        print(f"{name:<18} {result['speedup']:6.2f}x "
              f"(bar {result['threshold']}x)  {verdict}")

    artifact = {
        "benchmark": "bench_hotpath",
        "schema_version": SCHEMA_VERSION,
        "timing": {"estimator": "best-of-N", "number": args.number,
                   "repeat": args.repeat},
        "kernels": kernels,
        "pass": all(k["pass"] for k in kernels.values()),
    }
    out = args.out
    if out is None:
        out = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "results", "micro.json"
        )
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nartifact: {out}")
    return 0 if artifact["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
