#!/usr/bin/env python
"""Hot-path microbenchmarks: persistent headers and the binary codec.

Three kernels, each timing the optimized implementation against the
baseline it replaced:

``header_hop``
    One multicast hop through a 9-layer stack delivered to a group of
    8: push every layer's header once on the way down, then pop all 9
    in reverse at *each* receiver.  The baseline is the seed's
    dict-copy-on-write ``Message`` (reproduced inline below); the
    optimized path is the persistent header chain, whose LIFO pops are
    O(1) unlinks and whose multicast pops after the first receiver are
    memoized loads.  Bar: >= 2x.

``codec_roundtrip``
    Encode + decode of a representative sequencer data message (fifo +
    seqr + rel headers, 256 B payload accounting) through the binary
    ``WireCodec`` vs. ``pickle`` of the same ``(src, dst, msg)``
    triple.  Bars: faster than pickle (>= 1x) and strictly smaller.

``multicast_fanout``
    The datagram bytes for one 8-destination multicast.  The codec
    encodes the payload once and re-frames 6 bytes per destination;
    the baseline pickles the whole triple once per destination, as the
    seed's UDP transport did.  Bar: >= 2x.

Timings use best-of-N (``min`` over ``timeit.repeat``), which is the
stable estimator on noisy shared runners — the minimum approaches the
true cost while means drift with scheduler interference.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    PYTHONPATH=src python benchmarks/bench_hotpath.py --out micro.json

Writes ``benchmarks/results/micro.json`` (validated in CI by
``scripts/check_micro.py``).  Exit code 0 when every kernel clears its
bar, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import timeit
from typing import Any, Dict, Optional, Tuple

from repro.net.codec import FRAME_OVERHEAD, WireCodec
from repro.stack.message import BASE_WIRE_OVERHEAD, Message

SCHEMA_VERSION = 1

#: (key, value, size) pushed top-to-bottom on the way down — the shape
#: of the deep composed stack from the preservation suite.
STACK = (
    ("prio", {"k": "data"}, 6),
    ("batch", {"n": 4}, 8),
    ("mux", 3, 2),
    ("conf", "clear", 4),
    ("mac", b"\x00" * 16, 32),
    ("causal", {0: 1, 1: 5, 2: 9}, 24),
    ("rel", {"k": "data", "seq": 41, "dk": "G", "src": 3}, 10),
    ("seqr", {"k": "ord", "gseq": 1041}, 8),
    ("fifo", 41, 4),
)
GROUP = 8


class _DictMessage:
    """The seed's ``Message`` header behaviour: one dict copy per op.

    Kept as the in-benchmark baseline so the header kernel measures the
    persistent chain against exactly what it replaced, without digging
    the old class out of history.
    """

    __slots__ = ("sender", "mid", "body", "body_size", "dest", "_headers",
                 "_header_size")

    def __init__(self, sender, mid, body, body_size, dest=None, headers=None,
                 header_size=0):
        self.sender = sender
        self.mid = mid
        self.body = body
        self.body_size = body_size
        self.dest = dest
        self._headers = dict(headers) if headers else {}
        self._header_size = header_size

    def with_header(self, key, value, size=16):
        if key in self._headers:
            raise ValueError(key)
        headers = dict(self._headers)
        headers[key] = value
        return _DictMessage(self.sender, self.mid, self.body, self.body_size,
                            self.dest, headers, self._header_size + size)

    def without_header(self, key, size=16):
        if key not in self._headers:
            raise ValueError(key)
        headers = dict(self._headers)
        del headers[key]
        return _DictMessage(self.sender, self.mid, self.body, self.body_size,
                            self.dest, headers,
                            max(0, self._header_size - size))

    def with_dest(self, dest):
        return _DictMessage(self.sender, self.mid, self.body, self.body_size,
                            None if dest is None else tuple(dest),
                            self._headers, self._header_size)

    @property
    def size_bytes(self):
        return self.body_size + self._header_size + BASE_WIRE_OVERHEAD


def _hop(cls) -> int:
    """One multicast hop: sender-side pushes, ``GROUP`` receiver pops."""
    msg = cls(sender=3, mid=(3, 41), body="payload", body_size=256)
    for key, value, size in STACK:
        msg = msg.with_header(key, value, size)
    msg = msg.with_dest(None)
    total = 0
    for __ in range(GROUP):
        up = msg  # every receiver starts from the same wire object
        for key, __unused, size in reversed(STACK):
            up = up.without_header(key, size)
        total += up.size_bytes
    return total


def _compare_us(baseline, optimized, number: int,
                repeat: int) -> Tuple[float, float]:
    """Best-of-``repeat`` per-call cost of both sides, in microseconds.

    Samples alternate between the two functions so scheduler noise or a
    frequency shift lands on both sides instead of biasing whichever
    happened to run during the disturbance.
    """
    best_base = best_opt = float("inf")
    for __ in range(repeat):
        best_base = min(best_base, timeit.timeit(baseline, number=number))
        best_opt = min(best_opt, timeit.timeit(optimized, number=number))
    scale = 1e6 / number
    return best_base * scale, best_opt * scale


def _representative_message() -> Message:
    """A sequencer-ordered reliable data message, as seen on the wire."""
    return (
        Message(sender=3, mid=(3, 41), body=("payload", 41), body_size=256)
        .with_header("fifo", 41, 4)
        .with_header("seqr", {"k": "ord", "gseq": 1041}, 8)
        .with_header("rel", {"k": "data", "seq": 41, "dk": "G", "src": 3}, 10)
    )


def kernel_header_hop(number: int, repeat: int) -> Dict[str, Any]:
    assert _hop(Message) == _hop(_DictMessage)  # same observable result
    baseline, optimized = _compare_us(
        lambda: _hop(_DictMessage), lambda: _hop(Message), number, repeat
    )
    speedup = baseline / optimized
    return {
        "group": GROUP,
        "layers": len(STACK),
        "baseline_us": round(baseline, 3),
        "optimized_us": round(optimized, 3),
        "speedup": round(speedup, 3),
        "threshold": 2.0,
        "pass": speedup >= 2.0,
    }


def kernel_codec_roundtrip(number: int, repeat: int) -> Dict[str, Any]:
    codec = WireCodec()
    msg = _representative_message()
    wire = codec.encode(3, 5, msg)
    blob = pickle.dumps((3, 5, msg), pickle.HIGHEST_PROTOCOL)

    def codec_rt():
        codec.decode(codec.encode(3, 5, msg))

    def pickle_rt():
        pickle.loads(pickle.dumps((3, 5, msg), pickle.HIGHEST_PROTOCOL))

    pickle_us, codec_us = _compare_us(pickle_rt, codec_rt, number, repeat)
    speedup = pickle_us / codec_us
    return {
        "codec_bytes": len(wire),
        "pickle_bytes": len(blob),
        "pickle_us": round(pickle_us, 3),
        "codec_us": round(codec_us, 3),
        "speedup": round(speedup, 3),
        "threshold": 1.0,
        "pass": speedup >= 1.0 and len(wire) < len(blob),
    }


def kernel_multicast_fanout(number: int, repeat: int) -> Dict[str, Any]:
    codec = WireCodec()
    msg = _representative_message()
    dsts = tuple(range(GROUP))

    def codec_fanout():
        body = codec.encode_payload(msg)
        return [codec.frame(3, dst, body) for dst in dsts]

    def pickle_fanout():
        # The seed pickled the whole (src, dst, payload) triple per
        # destination: the payload bytes were re-serialized GROUP times.
        return [
            pickle.dumps((3, dst, msg), pickle.HIGHEST_PROTOCOL)
            for dst in dsts
        ]

    pickle_us, codec_us = _compare_us(
        pickle_fanout, codec_fanout, number, repeat
    )
    speedup = pickle_us / codec_us
    datagrams = codec_fanout()
    body_bytes = len(datagrams[0]) - FRAME_OVERHEAD
    return {
        "group": GROUP,
        "per_destination_overhead_bytes": FRAME_OVERHEAD,
        "shared_body_bytes": body_bytes,
        "pickle_us": round(pickle_us, 3),
        "codec_us": round(codec_us, 3),
        "speedup": round(speedup, 3),
        "threshold": 2.0,
        "pass": speedup >= 2.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None,
        help="artifact path (default benchmarks/results/micro.json)",
    )
    parser.add_argument(
        "--number", type=int, default=2000,
        help="kernel invocations per timing sample",
    )
    parser.add_argument(
        "--repeat", type=int, default=13,
        help="timing samples per kernel (the minimum is reported)",
    )
    args = parser.parse_args(argv)

    kernels = {
        "header_hop": kernel_header_hop(args.number, args.repeat),
        "codec_roundtrip": kernel_codec_roundtrip(args.number, args.repeat),
        "multicast_fanout": kernel_multicast_fanout(args.number, args.repeat),
    }
    for name, result in kernels.items():
        verdict = "PASS" if result["pass"] else "FAIL"
        print(f"{name:<18} {result['speedup']:6.2f}x "
              f"(bar {result['threshold']}x)  {verdict}")

    artifact = {
        "benchmark": "bench_hotpath",
        "schema_version": SCHEMA_VERSION,
        "timing": {"estimator": "best-of-N", "number": args.number,
                   "repeat": args.repeat},
        "kernels": kernels,
        "pass": all(k["pass"] for k in kernels.values()),
    }
    out = args.out
    if out is None:
        out = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "results", "micro.json"
        )
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nartifact: {out}")
    return 0 if artifact["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
