#!/usr/bin/env python
"""Parallel sweep runner: fan sweep cells across worker processes.

Both the Figure 2 sweep and the scaling benchmark are grids of
independent simulated runs — every cell builds its own ``SimRuntime``
and seeds its RNG purely from the cell parameters.  This runner fans
those cells across a process pool (``repro.workloads.parallel``) and
merges the results back in cell-definition order, so the merged JSON
artifact is **byte-identical** for any ``--workers`` value.  That
property is asserted by ``tests/workloads/test_parallel.py`` and is the
reason the artifact records the seed but never the worker count, wall
time, or anything else execution-dependent.

Usage::

    PYTHONPATH=src python benchmarks/sweeprunner.py --workers 8
    PYTHONPATH=src python benchmarks/sweeprunner.py --sweep figure2 \\
        --senders 1,2,3,4,5,6 --duration 2.0 --workers 4
    PYTHONPATH=src python benchmarks/sweeprunner.py --sweep scale --quick

Exit code 0 on success (and, when the scale sweep ran, when its
batching acceptance criterion holds).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from typing import Any, Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_scale  # noqa: E402
from repro.workloads.experiment import Figure2Config  # noqa: E402
from repro.workloads.parallel import (  # noqa: E402
    default_workers,
    figure2_cells,
    run_cells,
    run_figure2_cell,
)

SCHEMA_VERSION = 1

FIGURE2_PROTOCOLS = ("sequencer", "token")


# ---------------------------------------------------------------------------
# Scale cells (the grid of bench_scale.main, flattened)
# ---------------------------------------------------------------------------
def scale_cells(cfg: bench_scale.ScaleConfig) -> List[Dict[str, Any]]:
    cells: List[Dict[str, Any]] = [
        {
            "kind": "point",
            "protocol": protocol,
            "group_size": size,
            "max_batch": batch,
            "cfg": cfg,
        }
        for protocol in bench_scale.PROTOCOLS
        for size in cfg.group_sizes
        for batch in cfg.batch_sizes
    ]
    for batch in (min(cfg.batch_sizes), max(cfg.batch_sizes)):
        cells.append({"kind": "switch", "max_batch": batch, "cfg": cfg})
    return cells


def run_scale_cell(cell: Dict[str, Any]) -> dict:
    """One scale cell; the executor's (picklable) worker function."""
    cfg = cell["cfg"]
    if cell["kind"] == "point":
        return bench_scale.run_point(
            cell["protocol"], cell["group_size"], cell["max_batch"], cfg
        )
    return bench_scale.run_switch_point(cell["max_batch"], cfg)


# ---------------------------------------------------------------------------
# Chaos cells (a seed grid through the fault-tolerant SP)
# ---------------------------------------------------------------------------
def chaos_cells(seeds, members: int, duration: float) -> List[Dict[str, Any]]:
    from repro.testing.chaos import ChaosConfig

    return [
        {
            "config": ChaosConfig(
                members=members,
                seed=seed,
                duration=duration,
                control_loss=0.05,
                control_dup=0.02,
                control_jitter=0.004,
            )
        }
        for seed in seeds
    ]


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------
def run_figure2(args: argparse.Namespace, workers: int) -> Dict[str, Any]:
    config = Figure2Config(duration=args.duration, seed=args.seed)
    counts = (
        [int(s) for s in args.senders.split(",")]
        if args.senders
        else list(range(1, config.group_size + 1))
    )
    protocols = (
        tuple(args.protocols.split(","))
        if args.protocols
        else FIGURE2_PROTOCOLS
    )
    cells = figure2_cells(protocols, counts, config)
    print(f"figure2: {len(cells)} cells ({len(protocols)} protocols x "
          f"{len(counts)} sender counts), workers={workers}", flush=True)
    results = run_cells(cells, run_figure2_cell, workers)
    for result in results:
        print("  " + result.row(), flush=True)
    return {
        "config": {
            "group_size": config.group_size,
            "rate_msgs_per_s": config.rate,
            "body_size": config.body_size,
            "duration_s": config.duration,
            "warmup_s": config.warmup,
            "seed": config.seed,
            "protocols": list(protocols),
            "sender_counts": counts,
        },
        "points": [asdict(result) for result in results],
    }


def run_scale(args: argparse.Namespace, workers: int) -> Dict[str, Any]:
    cfg = (
        bench_scale.ScaleConfig.quick()
        if args.quick
        else bench_scale.ScaleConfig()
    )
    cfg.seed = args.seed
    if args.sizes:
        cfg.group_sizes = [int(s) for s in args.sizes.split(",")]
    if args.batches:
        cfg.batch_sizes = [int(b) for b in args.batches.split(",")]
    cells = scale_cells(cfg)
    print(f"scale: {len(cells)} cells, workers={workers}", flush=True)
    results = run_cells(cells, run_scale_cell, workers)
    points = [r for c, r in zip(cells, results) if c["kind"] == "point"]
    switch_runs = [r for c, r in zip(cells, results) if c["kind"] == "switch"]
    for point in points:
        print("  " + bench_scale._row(point), flush=True)
    return {
        "config": {
            "group_sizes": cfg.group_sizes,
            "batch_sizes": cfg.batch_sizes,
            "offered_msgs_per_s": cfg.offered,
            "active_senders": cfg.active_senders,
            "body_size": cfg.body_size,
            "duration_s": cfg.duration,
            "warmup_s": cfg.warmup,
            "seed": cfg.seed,
        },
        "points": points,
        "switch_runs": switch_runs,
        "acceptance": bench_scale.evaluate_acceptance(points),
    }


def run_scenarios(args: argparse.Namespace, workers: int) -> Dict[str, Any]:
    from repro.scenarios import load_catalog
    from repro.scenarios.runner import run_scenario_cell, scenario_cells

    catalog = load_catalog()
    names = [
        name for name, spec in catalog.items() if "sim" in spec.runtimes
    ]
    cells = scenario_cells(names, "sim")
    print(f"scenarios: {len(cells)} cells, workers={workers}", flush=True)
    verdicts = run_cells(cells, run_scenario_cell, workers)
    for verdict in verdicts:
        print("  " + verdict.summary().splitlines()[0], flush=True)
    return {
        "runtime": "sim",
        "scenarios": {v.scenario: v.to_dict() for v in verdicts},
    }


def run_chaos_sweep(args: argparse.Namespace, workers: int) -> Dict[str, Any]:
    from repro.testing.chaos import run_chaos_cell

    seeds = (
        [int(s) for s in args.chaos_seeds.split(",")]
        if args.chaos_seeds
        else list(range(8))
    )
    cells = chaos_cells(seeds, members=4, duration=4.0)
    print(f"chaos: {len(cells)} seeds, workers={workers}", flush=True)
    results = run_cells(cells, run_chaos_cell, workers)
    for result in results:
        status = "ok" if result.ok else "VIOLATIONS"
        print(
            f"  seed={result.config.seed} casts={result.casts} "
            f"switches={result.switches_completed} {status}",
            flush=True,
        )
    return {
        "seeds": seeds,
        "runs": [
            {
                "seed": r.config.seed,
                "ok": r.ok,
                "casts": r.casts,
                "switches_completed": r.switches_completed,
                "switches_aborted": r.switches_aborted,
                "violations": list(r.violations),
            }
            for r in results
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sweep",
        choices=("figure2", "scale", "scenarios", "chaos", "all"),
        default="all",
        help="which sweep(s) to fan out (default: all = figure2 + scale + "
        "scenarios; the chaos seed grid only runs when asked for)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 = one per CPU core, 1 = inline/serial",
    )
    parser.add_argument(
        "--out", default=None,
        help="artifact path (default benchmarks/results/sweep.json)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="scale sweep: use the CI smoke config",
    )
    parser.add_argument(
        "--duration", type=float, default=4.0,
        help="figure2: simulated seconds per cell",
    )
    parser.add_argument(
        "--senders", default=None,
        help="figure2: comma-separated active-sender counts",
    )
    parser.add_argument(
        "--protocols", default=None,
        help="figure2: comma-separated protocols (default sequencer,token)",
    )
    parser.add_argument(
        "--sizes", default=None,
        help="scale: comma-separated group sizes",
    )
    parser.add_argument(
        "--batches", default=None,
        help="scale: comma-separated max_batch values",
    )
    parser.add_argument(
        "--chaos-seeds", default=None,
        help="chaos: comma-separated seeds (default 0-7)",
    )
    args = parser.parse_args(argv)
    workers = 1 if args.workers == 1 else default_workers(args.workers or None)

    sweeps: Dict[str, Any] = {}
    if args.sweep in ("figure2", "all"):
        sweeps["figure2"] = run_figure2(args, workers)
    if args.sweep in ("scale", "all"):
        sweeps["scale"] = run_scale(args, workers)
    if args.sweep in ("scenarios", "all"):
        sweeps["scenarios"] = run_scenarios(args, workers)
    if args.sweep == "chaos":
        sweeps["chaos"] = run_chaos_sweep(args, workers)

    artifact = {
        "benchmark": "sweeprunner",
        "schema_version": SCHEMA_VERSION,
        "seed": args.seed,
        "sweeps": sweeps,
    }
    out = args.out
    if out is None:
        out = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "results", "sweep.json"
        )
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nartifact: {out}")

    verdict = sweeps.get("scale", {}).get("acceptance")
    if verdict is not None and not verdict["pass"]:
        print("scale acceptance: FAIL")
        return 1
    failed_scenarios = [
        name
        for name, entry in sweeps.get("scenarios", {})
        .get("scenarios", {})
        .items()
        if not entry["ok"]
    ]
    if failed_scenarios:
        print(f"scenario sweep: FAIL ({failed_scenarios})")
        return 1
    failed_chaos = [
        run["seed"]
        for run in sweeps.get("chaos", {}).get("runs", [])
        if not run["ok"]
    ]
    if failed_chaos:
        print(f"chaos sweep: FAIL (seeds {failed_chaos})")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
