#!/usr/bin/env python
"""Parallel sweep runner: fan sweep cells across worker processes.

Both the Figure 2 sweep and the scaling benchmark are grids of
independent simulated runs — every cell builds its own ``SimRuntime``
and seeds its RNG purely from the cell parameters.  This runner fans
those cells across a process pool (``repro.workloads.parallel``) and
merges the results back in cell-definition order, so the merged JSON
artifact is **byte-identical** for any ``--workers`` value.  That
property is asserted by ``tests/workloads/test_parallel.py`` and is the
reason the artifact records the seed but never the worker count, wall
time, or anything else execution-dependent.

Usage::

    PYTHONPATH=src python benchmarks/sweeprunner.py --workers 8
    PYTHONPATH=src python benchmarks/sweeprunner.py --sweep figure2 \\
        --senders 1,2,3,4,5,6 --duration 2.0 --workers 4
    PYTHONPATH=src python benchmarks/sweeprunner.py --sweep scale --quick

Exit code 0 on success (and, when the scale sweep ran, when its
batching acceptance criterion holds).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from typing import Any, Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_scale  # noqa: E402
from repro.workloads.experiment import Figure2Config  # noqa: E402
from repro.workloads.parallel import (  # noqa: E402
    default_workers,
    figure2_cells,
    run_cells,
    run_figure2_cell,
)

SCHEMA_VERSION = 1

FIGURE2_PROTOCOLS = ("sequencer", "token")


# ---------------------------------------------------------------------------
# Scale cells (the grid of bench_scale.main, flattened)
# ---------------------------------------------------------------------------
def scale_cells(cfg: bench_scale.ScaleConfig) -> List[Dict[str, Any]]:
    cells: List[Dict[str, Any]] = [
        {
            "kind": "point",
            "protocol": protocol,
            "group_size": size,
            "max_batch": batch,
            "cfg": cfg,
        }
        for protocol in bench_scale.PROTOCOLS
        for size in cfg.group_sizes
        for batch in cfg.batch_sizes
    ]
    for batch in (min(cfg.batch_sizes), max(cfg.batch_sizes)):
        cells.append({"kind": "switch", "max_batch": batch, "cfg": cfg})
    return cells


def run_scale_cell(cell: Dict[str, Any]) -> dict:
    """One scale cell; the executor's (picklable) worker function."""
    cfg = cell["cfg"]
    if cell["kind"] == "point":
        return bench_scale.run_point(
            cell["protocol"], cell["group_size"], cell["max_batch"], cfg
        )
    return bench_scale.run_switch_point(cell["max_batch"], cfg)


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------
def run_figure2(args: argparse.Namespace, workers: int) -> Dict[str, Any]:
    config = Figure2Config(duration=args.duration, seed=args.seed)
    counts = (
        [int(s) for s in args.senders.split(",")]
        if args.senders
        else list(range(1, config.group_size + 1))
    )
    protocols = (
        tuple(args.protocols.split(","))
        if args.protocols
        else FIGURE2_PROTOCOLS
    )
    cells = figure2_cells(protocols, counts, config)
    print(f"figure2: {len(cells)} cells ({len(protocols)} protocols x "
          f"{len(counts)} sender counts), workers={workers}", flush=True)
    results = run_cells(cells, run_figure2_cell, workers)
    for result in results:
        print("  " + result.row(), flush=True)
    return {
        "config": {
            "group_size": config.group_size,
            "rate_msgs_per_s": config.rate,
            "body_size": config.body_size,
            "duration_s": config.duration,
            "warmup_s": config.warmup,
            "seed": config.seed,
            "protocols": list(protocols),
            "sender_counts": counts,
        },
        "points": [asdict(result) for result in results],
    }


def run_scale(args: argparse.Namespace, workers: int) -> Dict[str, Any]:
    cfg = (
        bench_scale.ScaleConfig.quick()
        if args.quick
        else bench_scale.ScaleConfig()
    )
    cfg.seed = args.seed
    if args.sizes:
        cfg.group_sizes = [int(s) for s in args.sizes.split(",")]
    if args.batches:
        cfg.batch_sizes = [int(b) for b in args.batches.split(",")]
    cells = scale_cells(cfg)
    print(f"scale: {len(cells)} cells, workers={workers}", flush=True)
    results = run_cells(cells, run_scale_cell, workers)
    points = [r for c, r in zip(cells, results) if c["kind"] == "point"]
    switch_runs = [r for c, r in zip(cells, results) if c["kind"] == "switch"]
    for point in points:
        print("  " + bench_scale._row(point), flush=True)
    return {
        "config": {
            "group_sizes": cfg.group_sizes,
            "batch_sizes": cfg.batch_sizes,
            "offered_msgs_per_s": cfg.offered,
            "active_senders": cfg.active_senders,
            "body_size": cfg.body_size,
            "duration_s": cfg.duration,
            "warmup_s": cfg.warmup,
            "seed": cfg.seed,
        },
        "points": points,
        "switch_runs": switch_runs,
        "acceptance": bench_scale.evaluate_acceptance(points),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sweep", choices=("figure2", "scale", "all"), default="all",
        help="which sweep(s) to fan out (default: all)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 = one per CPU core, 1 = inline/serial",
    )
    parser.add_argument(
        "--out", default=None,
        help="artifact path (default benchmarks/results/sweep.json)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="scale sweep: use the CI smoke config",
    )
    parser.add_argument(
        "--duration", type=float, default=4.0,
        help="figure2: simulated seconds per cell",
    )
    parser.add_argument(
        "--senders", default=None,
        help="figure2: comma-separated active-sender counts",
    )
    parser.add_argument(
        "--protocols", default=None,
        help="figure2: comma-separated protocols (default sequencer,token)",
    )
    parser.add_argument(
        "--sizes", default=None,
        help="scale: comma-separated group sizes",
    )
    parser.add_argument(
        "--batches", default=None,
        help="scale: comma-separated max_batch values",
    )
    args = parser.parse_args(argv)
    workers = 1 if args.workers == 1 else default_workers(args.workers or None)

    sweeps: Dict[str, Any] = {}
    if args.sweep in ("figure2", "all"):
        sweeps["figure2"] = run_figure2(args, workers)
    if args.sweep in ("scale", "all"):
        sweeps["scale"] = run_scale(args, workers)

    artifact = {
        "benchmark": "sweeprunner",
        "schema_version": SCHEMA_VERSION,
        "seed": args.seed,
        "sweeps": sweeps,
    }
    out = args.out
    if out is None:
        out = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "results", "sweep.json"
        )
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nartifact: {out}")

    verdict = sweeps.get("scale", {}).get("acceptance")
    if verdict is not None and not verdict["pass"]:
        print("scale acceptance: FAIL")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
