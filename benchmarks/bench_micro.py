"""Microbenchmarks of the substrate: event engine, network models,
protocol layers, and the SP itself.

These are classic pytest-benchmark kernels (multiple rounds) — useful
for catching performance regressions in the simulator that would make
the paper-scale experiments (minutes of simulated time, hundreds of
thousands of events) impractically slow.
"""

import pickle

from repro.core.switchable import ProtocolSpec, build_switch_group
from repro.net.codec import WireCodec
from repro.net.ethernet import EthernetNetwork, EthernetParams
from repro.net.faults import FaultPlan
from repro.net.ptp import PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.runtime import SimRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group
from repro.stack.message import Message
from repro.stack.stack import build_group


def test_engine_event_throughput(benchmark):
    """Schedule+fire throughput of the event wheel."""
    benchmark.extra_info["runtime"] = "engine"

    def run():
        sim = Simulator()

        def chain(n):
            if n:
                sim.schedule(1e-6, lambda: chain(n - 1))

        chain(10_000)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 10_000


def test_runtime_boundary_event_throughput(benchmark):
    """The same 10k-event chain through the SimRuntime adapter.

    Compare against ``test_engine_event_throughput``: the difference is
    the whole cost of the runtime boundary (one extra delegating call
    per schedule), which must stay in the noise.
    """
    benchmark.extra_info["runtime"] = SimRuntime.name

    def run():
        runtime = SimRuntime()

        def chain(n):
            if n:
                runtime.schedule(1e-6, lambda: chain(n - 1))

        chain(10_000)
        runtime.run()
        return runtime.events_processed

    assert benchmark(run) == 10_000


def test_engine_cancellation_churn(benchmark):
    """Armed-then-cancelled retransmit-timer pattern of long chaos runs.

    Each iteration arms a timer far in the future, cancels the previous
    one, and polls ``pending()`` — the hot loop of a reliable layer under
    load.  Before the counted-cancellation fast path this left every dead
    timer in the heap (O(n) growth) and made each ``pending()`` call an
    O(n) scan; with compaction + the live counter the whole kernel is
    O(n log c) for a bounded heap size c.
    """
    benchmark.extra_info["runtime"] = "engine"

    def run():
        sim = Simulator()
        armed = None
        polled = 0
        for i in range(20_000):
            if armed is not None:
                armed.cancel()
            armed = sim.schedule(1000.0 + i * 1e-6, lambda: None)
            polled += sim.pending()
        # The wheel stayed bounded: all but the final timer were cancelled
        # and compaction reclaimed the dead entries.
        assert sim.footprint() < 20_000
        assert sim.pending() == 1
        return polled

    assert benchmark(run) == 20_000


def test_ethernet_multicast_throughput(benchmark):
    """1000 ten-member multicasts through the shared-medium model."""

    def run():
        sim = Simulator()
        net = EthernetNetwork(sim, 10, EthernetParams(), rng=RandomStreams(0))
        group = Group.of_size(10)
        stacks = build_group(sim, net, group, lambda r: [])
        count = [0]
        for stack in stacks.values():
            stack.on_deliver(lambda m: count.__setitem__(0, count[0] + 1))
        for i in range(1000):
            sim.schedule_at(i * 1e-4, lambda i=i: stacks[i % 10].cast(i, 1024))
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_sequencer_ordering_throughput(benchmark):
    def run():
        sim = Simulator()
        net = PointToPointNetwork(sim, 5, rng=RandomStreams(0))
        group = Group.of_size(5)
        stacks = build_group(sim, net, group, lambda r: [SequencerLayer()])
        delivered = [0]
        stacks[4].on_deliver(lambda m: delivered.__setitem__(0, delivered[0] + 1))
        for i in range(500):
            stacks[i % 5].cast(i, 64)
        sim.run()
        return delivered[0]

    assert benchmark(run) == 500


def test_token_ring_throughput(benchmark):
    def run():
        sim = Simulator()
        net = PointToPointNetwork(sim, 5, rng=RandomStreams(0))
        group = Group.of_size(5)
        stacks = build_group(sim, net, group, lambda r: [TokenRingLayer()])
        delivered = [0]
        stacks[4].on_deliver(lambda m: delivered.__setitem__(0, delivered[0] + 1))
        for i in range(500):
            stacks[i % 5].cast(i, 64)
        sim.run_until(5.0)
        return delivered[0]

    assert benchmark(run) == 500


def test_reliable_layer_under_loss(benchmark):
    """Recovery machinery cost: 200 messages across a 20%-lossy net."""

    def run():
        sim = Simulator()
        net = PointToPointNetwork(
            sim, 4, faults=FaultPlan(loss_rate=0.2), rng=RandomStreams(1)
        )
        group = Group.of_size(4)
        stacks = build_group(sim, net, group, lambda r: [ReliableLayer()])
        delivered = [0]
        stacks[3].on_deliver(lambda m: delivered.__setitem__(0, delivered[0] + 1))
        for i in range(200):
            sim.schedule_at(i * 1e-3, lambda i=i: stacks[i % 4].cast(i, 64))
        sim.run_until(10.0)
        return delivered[0]

    assert benchmark(run) == 200


def test_switch_latency_kernel(benchmark):
    """One full token-SP switch (3 rotations), idle group of 10."""

    def run():
        sim = Simulator()
        net = PointToPointNetwork(sim, 10, rng=RandomStreams(2))
        group = Group.of_size(10)
        specs = [
            ProtocolSpec("A", lambda r: [FifoLayer()]),
            ProtocolSpec("B", lambda r: [FifoLayer()]),
        ]
        stacks = build_switch_group(
            sim, net, group, specs, initial="A", variant="token",
            token_interval=0.002,
        )
        stacks[0].request_switch("B")
        sim.run_until(2.0)
        assert all(s.current_protocol == "B" for s in stacks.values())
        return stacks[0].protocol.last_switch_duration

    duration = benchmark(run)
    assert duration is not None


# ---------------------------------------------------------------------------
# Message/codec hot-path kernels (see bench_hotpath.py for the
# baseline-comparison variants with pinned speedup bars)
# ---------------------------------------------------------------------------

#: (key, value, size): the deep composed stack's header shape.
_HOP_STACK = (
    ("prio", {"k": "data"}, 6),
    ("batch", {"n": 4}, 8),
    ("mux", 3, 2),
    ("conf", "clear", 4),
    ("mac", b"\x00" * 16, 32),
    ("causal", {0: 1, 1: 5, 2: 9}, 24),
    ("rel", {"k": "data", "seq": 41, "dk": "G", "src": 3}, 10),
    ("seqr", {"k": "ord", "gseq": 1041}, 8),
    ("fifo", 41, 4),
)


def _sequencer_data_message():
    return (
        Message(sender=3, mid=(3, 41), body=("payload", 41), body_size=256)
        .with_header("fifo", 41, 4)
        .with_header("seqr", {"k": "ord", "gseq": 1041}, 8)
        .with_header("rel", {"k": "data", "seq": 41, "dk": "G", "src": 3}, 10)
    )


def test_header_push_pop_churn(benchmark):
    """One multicast hop through 9 layers, popped at 8 receivers.

    The persistent-chain hot loop: every push is one link allocation,
    every LIFO pop an O(1) unlink, and pops after the first receiver
    hit the memo (a multicast hands all receivers the same object).
    """

    def run():
        msg = Message(sender=3, mid=(3, 41), body="payload", body_size=256)
        for key, value, size in _HOP_STACK:
            msg = msg.with_header(key, value, size)
        msg = msg.with_dest(None)
        total = 0
        for __ in range(8):
            up = msg
            for key, __unused, size in reversed(_HOP_STACK):
                up = up.without_header(key, size)
            total += up.size_bytes
        return total

    # All headers popped: back to body + fixed overhead at every receiver.
    assert benchmark(run) == 8 * (256 + 28)


def test_codec_roundtrip_vs_pickle(benchmark):
    """Wire codec round trip of a sequencer data message.

    Guarded against regressing past pickle (the encoding it replaced);
    the struct-packed frame must also stay strictly smaller.
    """
    codec = WireCodec()
    msg = _sequencer_data_message()
    assert len(codec.encode(3, 5, msg)) < len(pickle.dumps((3, 5, msg), -1))

    def run():
        return codec.decode(codec.encode(3, 5, msg))[2]

    back = benchmark(run)
    assert dict(back.headers) == dict(msg.headers)


def test_multicast_encode_fanout(benchmark):
    """Datagram bytes for an 8-destination multicast, encoded once.

    The payload encodes a single time; each destination costs one
    6-byte frame prefix, not a re-serialization of the whole payload.
    """
    codec = WireCodec()
    msg = _sequencer_data_message()

    def run():
        body = codec.encode_payload(msg)
        return [codec.frame(3, dst, body) for dst in range(8)]

    datagrams = benchmark(run)
    assert len(datagrams) == 8
    assert len({d[6:] for d in datagrams}) == 1  # shared body bytes
