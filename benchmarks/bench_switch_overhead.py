"""Section 7 switching overhead.

Paper: "the overhead of switching near the cross-over point is about 31
msecs.  Processes are never blocked from sending during switching, so the
perceived hiccup is often less than that."

We measure (a) the full end-to-end switch duration at the initiator
(three token rotations plus drain), (b) the worst inter-delivery gap any
member perceives (the hiccup), against a no-switch control run, and (c)
that sends are never blocked.
"""

from repro.workloads.experiment import (
    Figure2Config,
    run_switch_overhead_experiment,
)

CONFIG = Figure2Config(duration=3.5, warmup=0.75, seed=42)


def test_switch_overhead_near_crossover(benchmark, report):
    def run():
        return {
            ("sequencer->token", 5): run_switch_overhead_experiment(
                5, "sequencer->token", CONFIG
            ),
            ("sequencer->token", 6): run_switch_overhead_experiment(
                6, "sequencer->token", CONFIG
            ),
            ("token->sequencer", 6): run_switch_overhead_experiment(
                6, "token->sequencer", CONFIG
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Section 7: switching overhead near the crossover",
        "",
        f"{'direction':<20} {'senders':>7} {'switch':>10} {'hiccup':>10} "
        f"{'baseline':>10} {'blocked':>8}",
    ]
    for (direction, senders), r in results.items():
        lines.append(
            f"{direction:<20} {senders:>7} {r.switch_duration_ms:>8.1f}ms "
            f"{r.max_hiccup_ms:>8.1f}ms {r.baseline_hiccup_ms:>8.1f}ms "
            f"{r.sends_blocked:>8}"
        )
    lines.append("")
    lines.append("paper: overhead near the cross-over is about 31 msecs; the")
    lines.append("       perceived hiccup is often less (sends never block).")
    report("switch_overhead.txt", "\n".join(lines))

    for r in results.values():
        # Same order of magnitude as the paper's 31 ms.
        assert 5.0 <= r.switch_duration_ms <= 150.0
        # The perceived hiccup is much smaller than the full duration —
        # the paper's point about sends never blocking.
        assert r.max_hiccup_ms < r.switch_duration_ms
        assert r.sends_blocked == 0
        # And it is a bounded perturbation over the no-switch baseline.
        assert r.max_hiccup_ms < r.baseline_hiccup_ms + 50.0
