"""Latency measurement.

:class:`LatencyProbe` attaches to stacks' deliver streams and computes
end-to-end latency from the :class:`~repro.workloads.generator.Payload`
timestamps — for every (message, receiver) pair, like the paper's
"message latency".  A warmup horizon excludes start-of-run transients
(token injection, first NAK timers) from the statistics.

It also tracks, per process, the largest gap between consecutive
deliveries — the "perceived hiccup" §7 uses to discuss switching
overhead.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..runtime.api import Clock
from ..sim.monitor import Summary
from ..stack.message import Message
from .generator import Payload

__all__ = ["LatencyProbe"]


class LatencyProbe:
    """Collects delivery latency and inter-delivery gaps.

    Args:
        clock: the runtime clock latencies are measured against.
        warmup: horizon before which samples are ignored.
        sink: optional callable invoked once per delivery with the
            measured latency (``None`` for control/view payloads,
            which carry no timestamp).  Lets a second consumer — the
            telemetry plane — ride the probe's single per-delivery
            latency computation instead of duplicating it.
    """

    def __init__(
        self,
        clock: Clock,
        warmup: float = 0.0,
        sink: Optional[Callable[[Optional[float]], None]] = None,
    ) -> None:
        self.clock = clock
        self.warmup = warmup
        self.sink = sink
        self.latency = Summary()
        self.deliveries = 0
        self.ignored = 0
        self._last_delivery_at: Dict[int, float] = {}
        self.max_gap: float = 0.0
        self.max_gap_at: Optional[float] = None
        self.max_gap_process: Optional[int] = None

    def attach(self, stack) -> None:
        """Hook one stack's deliver stream."""
        rank = stack.rank
        stack.on_deliver(lambda msg, rank=rank: self.observe(rank, msg))

    def attach_all(self, stacks) -> None:
        """Hook every stack of a rank -> stack mapping."""
        for stack in stacks.values():
            self.attach(stack)

    def observe(self, rank: int, msg: Message) -> None:
        """Record one delivery at ``rank`` (hooked via attach)."""
        now = self.clock.now
        body = msg.body
        sink = self.sink
        if not isinstance(body, Payload):
            if sink is not None:
                sink(None)
            return  # control/view payloads are not workload messages
        last = self._last_delivery_at.get(rank)
        if last is not None:
            gap = now - last
            if gap > self.max_gap and last >= self.warmup:
                self.max_gap = gap
                self.max_gap_at = now
                self.max_gap_process = rank
        self._last_delivery_at[rank] = now
        latency = now - body.sent_at
        if sink is not None:
            sink(latency)
        if body.sent_at < self.warmup:
            self.ignored += 1
            return
        self.deliveries += 1
        self.latency.observe(latency)

    # ------------------------------------------------------------------
    @property
    def mean_ms(self) -> float:
        return self.latency.mean * 1e3

    @property
    def median_ms(self) -> float:
        return self.latency.median * 1e3

    def quantile_ms(self, q: float) -> float:
        """Exact latency quantile, in milliseconds."""
        return self.latency.quantile(q) * 1e3
