"""Workload generators.

The §7 experiment: "A subgroup of varying size is sending 50 messages per
second per member."  :class:`PoissonSender` models one such member with
exponentially distributed inter-send gaps (the randomness is what gives
the latency curves their queueing-theoretic shape);
:class:`UniformSender` sends at fixed intervals for tests that need
determinism.

Payloads are :class:`Payload` tuples carrying the send timestamp, so any
receiver can compute end-to-end latency without a side channel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ReproError
from ..runtime.api import Scheduler

__all__ = ["Payload", "PoissonSender", "UniformSender"]


@dataclass(frozen=True)
class Payload:
    """Application payload with latency bookkeeping."""

    origin: int
    seq: int
    sent_at: float


class _SenderBase:
    """Common machinery: start/stop, sequence numbers, respect for
    back-pressure (``can_send`` — keeps Amoeba-style stacks honest)."""

    def __init__(
        self,
        runtime: Scheduler,
        stack,
        body_size: int = 1024,
        start: float = 0.0,
        stop: Optional[float] = None,
        respect_backpressure: bool = False,
    ) -> None:
        self.runtime = runtime
        self.stack = stack
        self.body_size = body_size
        self.start_at = start
        self.stop_at = stop
        self.respect_backpressure = respect_backpressure
        self.sent = 0
        self.skipped = 0
        self._active = False

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        delay = max(0.0, self.start_at - self.runtime.now) + self._next_gap()
        self.runtime.schedule(delay, self._fire)

    def stop(self) -> None:
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def _fire(self) -> None:
        if not self._active:
            return
        if self.stop_at is not None and self.runtime.now >= self.stop_at:
            self._active = False
            return
        if self.respect_backpressure and not self.stack.can_send():
            self.skipped += 1
        else:
            payload = Payload(self.stack.rank, self.sent, self.runtime.now)
            self.stack.cast(payload, self.body_size)
            self.sent += 1
        self.runtime.schedule(self._next_gap(), self._fire)

    def _next_gap(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError


class PoissonSender(_SenderBase):
    """Sends at ``rate`` messages/second with exponential gaps."""

    def __init__(
        self,
        runtime: Scheduler,
        stack,
        rate: float,
        rng: random.Random,
        **kwargs,
    ) -> None:
        if rate <= 0:
            raise ReproError(f"rate must be positive, got {rate}")
        super().__init__(runtime, stack, **kwargs)
        self.rate = rate
        self.rng = rng

    def retune(self, rate: float) -> None:
        """Change the send rate; takes effect from the next gap drawn.

        The already-armed gap keeps its old length (one-shot timers are
        not re-armed), which is exactly the behaviour a rate drift
        scenario wants: load changes, in-flight decisions do not.
        """
        if rate <= 0:
            raise ReproError(f"rate must be positive, got {rate}")
        self.rate = rate

    def _next_gap(self) -> float:
        return self.rng.expovariate(self.rate)


class UniformSender(_SenderBase):
    """Sends at fixed ``interval`` seconds (deterministic tests)."""

    def __init__(self, runtime: Scheduler, stack, interval: float, **kwargs) -> None:
        if interval <= 0:
            raise ReproError(f"interval must be positive, got {interval}")
        super().__init__(runtime, stack, **kwargs)
        self.interval = interval

    def _next_gap(self) -> float:
        return self.interval
