"""One sequencer→token-ring switch under load, on any runtime.

This is the payoff of the runtime boundary: the *identical* switchable
stack — sequencer and token-ring total order under the token-variant
switching protocol — driven by the same workload and checked by the same
oracle, on either

* the deterministic discrete-event runtime (``runtime="sim"``, the
  point-to-point model), or
* the real asyncio runtime over localhost UDP sockets
  (``runtime="asyncio"``, :mod:`repro.net.udp`).

The run casts Poisson traffic from every member, requests one
sequencer→tokenring switch mid-run at the coordinator, lets the group
settle, and then applies the chaos harness's oracle: convergence (no
member stuck mid-switch, all on the target protocol), no duplicate
deliveries, and per-slot delivery-order agreement.  ``repro run``
exposes it from the command line; the parity and smoke tests drive it
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.switchable import ProtocolSpec, build_group_handle
from ..errors import ReproError
from ..net.ptp import LatencyMatrix, PointToPointNetwork
from ..obs.bus import Bus
from ..protocols.reliable import ReliableLayer
from ..protocols.sequencer import SequencerLayer
from ..protocols.tokenring import TokenRingLayer
from ..runtime import AsyncioRuntime, make_runtime
from ..sim.rng import RandomStreams
from ..stack.batching import BatchingLayer
from ..stack.layer import Layer
from ..stack.membership import Group
from ..testing.chaos import check_slot_order
from .generator import PoissonSender
from .latency import LatencyProbe

__all__ = ["SwitchRunConfig", "SwitchRunResult", "run_switch_demo"]

#: The switch exercised by the demo, in request order.
SLOT_NAMES = ("sequencer", "tokenring")


@dataclass
class SwitchRunConfig:
    """Parameters of one ``repro run`` execution.

    Attributes:
        runtime: "sim" (virtual time) or "asyncio" (wall clock + UDP).
        members: group size (every member sends).
        duration: seconds of workload (simulated or wall, per runtime).
        rate: casts per second per member.
        body_size: application payload size in bytes.
        seed: master seed for the Poisson workload.
        switch_at: when the coordinator requests sequencer→tokenring.
        warmup: latency samples before this horizon are discarded.
        token_interval: SP NORMAL-token pacing.
        settle_windows / settle_window: convergence grace after the
            workload stops (same shape as the chaos harness).
        base_port: first UDP port (asyncio runtime only).
        latency: base one-way latency of the simulated mesh (sim only).
        max_batch: casts coalesced per wire frame (1 = no batching layer).
        linger: seconds an incomplete batch waits before flushing.
    """

    runtime: str = "sim"
    members: int = 4
    duration: float = 3.0
    rate: float = 50.0
    body_size: int = 256
    seed: int = 42
    switch_at: float = 1.5
    warmup: float = 0.25
    token_interval: float = 0.005
    settle_windows: int = 20
    settle_window: float = 0.25
    base_port: int = 47310
    latency: float = 1e-3
    max_batch: int = 1
    linger: float = 0.0

    def __post_init__(self) -> None:
        if self.members < 2:
            raise ReproError("the switch demo needs at least two members")
        if not 0 < self.switch_at < self.duration:
            raise ReproError("switch_at must fall inside the run")
        if self.max_batch < 1:
            raise ReproError("max_batch must be >= 1")
        if self.linger < 0:
            raise ReproError("linger must be non-negative")


@dataclass
class SwitchRunResult:
    """Outcome of one switch demo run, with oracle verdicts."""

    config: SwitchRunConfig
    runtime: str
    casts: int
    delivered: Dict[int, int]
    mean_ms: float
    median_ms: float
    p90_ms: float
    samples: int
    switch_duration_ms: Optional[float]
    max_hiccup_ms: float
    switches_completed: int
    final_protocols: Dict[int, str]
    settle_time: float
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        switch = (
            f"{self.switch_duration_ms:.1f}ms"
            if self.switch_duration_ms is not None
            else "n/a"
        )
        lines = [
            f"switch run: runtime={self.runtime} members={self.config.members} "
            f"duration={self.config.duration}s seed={self.config.seed}",
            f"  workload: casts={self.casts} delivered/member="
            f"{sorted(self.delivered.values())} latency mean={self.mean_ms:.2f}ms "
            f"median={self.median_ms:.2f}ms p90={self.p90_ms:.2f}ms "
            f"(n={self.samples})",
            f"  switch:   sequencer->tokenring took {switch} end to end; "
            f"max delivery hiccup {self.max_hiccup_ms:.1f}ms; "
            f"completed={self.switches_completed}",
            f"  final protocols: {self.final_protocols} "
            f"(settled at t={self.settle_time:.2f}s)",
        ]
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append(
                "  oracle: convergence, no-duplicates, per-slot order all hold"
            )
        return "\n".join(lines)


def _specs(config: Optional[SwitchRunConfig] = None) -> List[ProtocolSpec]:
    # ReliableLayer under each total-order layer: a no-op on the loss-free
    # simulated mesh, real NAK/retransmit protection on the UDP runtime.
    # With max_batch > 1 a BatchingLayer tops each slot — above the
    # total-order layer so a whole batch is ordered (and pays CPU) once,
    # below the switching core so SP send counts stay per-message.
    def data_layers(r: int, order_layer: Layer) -> List[Layer]:
        layers: List[Layer] = []
        if config is not None and config.max_batch > 1:
            layers.append(BatchingLayer(config.max_batch, config.linger))
        layers.append(order_layer)
        layers.append(ReliableLayer())
        return layers

    return [
        ProtocolSpec("sequencer", lambda r: data_layers(r, SequencerLayer())),
        ProtocolSpec("tokenring", lambda r: data_layers(r, TokenRingLayer())),
    ]


def run_switch_demo(
    config: Optional[SwitchRunConfig] = None,
    bus: Optional[Bus] = None,
) -> SwitchRunResult:
    """Execute one sequencer→tokenring switch under load; oracle-check it.

    Passing an enabled :class:`~repro.obs.bus.Bus` records the full
    instrumentation picture of the run — switch-phase spans, token
    events, layer/network metrics — stamped by this run's runtime clock.
    The caller exports the bus afterwards (see :mod:`repro.obs.export`).
    """
    config = config or SwitchRunConfig()
    runtime = make_runtime(config.runtime)
    if bus is not None:
        bus.clock = runtime
    streams = RandomStreams(config.seed)

    if isinstance(runtime, AsyncioRuntime):
        from ..net.udp import UdpNetwork

        network = UdpNetwork(
            runtime, config.members, base_port=config.base_port
        )
        runtime.run_task(network.open())
    else:
        network = PointToPointNetwork(
            runtime,
            config.members,
            latency=LatencyMatrix(config.members, config.latency),
            rng=streams,
        )

    if bus is not None:
        network.instrument(bus)

    try:
        return _drive(runtime, network, config, streams, bus)
    finally:
        if isinstance(runtime, AsyncioRuntime):
            runtime.close()


def _drive(
    runtime, network, config: SwitchRunConfig, streams, bus=None
) -> SwitchRunResult:
    group = Group.of_size(config.members)
    # A single-group run is a fleet of size one: the same GroupHandle
    # lifecycle the fleet's GroupManager drives at thousands.
    handle = build_group_handle(
        runtime,
        network,
        group,
        _specs(config),
        initial=SLOT_NAMES[0],
        variant="token",
        token_interval=config.token_interval,
        streams=streams,
        bus=bus,
    )
    stacks = handle.stacks

    # --- observation ---------------------------------------------------
    deliveries: Dict[int, List[tuple]] = {r: [] for r in group}
    for rank, stack in stacks.items():
        stack.on_deliver(
            lambda msg, rank=rank: deliveries[rank].append(msg.mid)
        )
    cast_slot: Dict[tuple, str] = {}
    probe = LatencyProbe(runtime, warmup=config.warmup)
    probe.attach_all(stacks)

    senders = []
    for rank in group:
        stack = stacks[rank]
        stack.on_send(
            lambda msg, stack=stack: cast_slot.__setitem__(
                msg.mid, stack.core.send_slot
            )
        )
        sender = PoissonSender(
            runtime,
            stack,
            rate=config.rate,
            rng=streams.stream(f"workload{rank}"),
            body_size=config.body_size,
        )
        sender.start()
        senders.append(sender)

    durations: List[float] = []
    manager = stacks[group.coordinator]
    manager.protocol.on_global_complete(
        lambda __, duration: durations.append(duration)
    )
    runtime.schedule_at(
        config.switch_at, lambda: handle.request_switch(SLOT_NAMES[1])
    )

    # --- run, then let the group settle --------------------------------
    runtime.run_until(config.duration)
    for sender in senders:
        sender.stop()
    violations: List[str] = []
    settle_time = config.duration
    for __ in range(config.settle_windows):
        runtime.run_for(config.settle_window)
        settle_time = runtime.now
        if not any(stacks[r].switching for r in group) and (
            len({stacks[r].current_protocol for r in group}) == 1
        ):
            break
    else:
        violations.append(
            f"group did not converge within {config.settle_windows} settle "
            f"windows (still switching: "
            f"{[r for r in group if stacks[r].switching]})"
        )

    # --- oracle ---------------------------------------------------------
    live = list(group)
    finals = {r: stacks[r].current_protocol for r in live}
    if len(set(finals.values())) > 1:
        violations.append(f"members disagree on the protocol: {finals}")
    elif finals and next(iter(finals.values())) != SLOT_NAMES[1]:
        violations.append(
            f"switch never took effect: group settled on "
            f"{next(iter(finals.values()))!r}"
        )
    for rank in live:
        mids = deliveries[rank]
        if len(mids) != len(set(mids)):
            dupes = len(mids) - len(set(mids))
            violations.append(f"member {rank} delivered {dupes} duplicates")
    violations.extend(
        check_slot_order(deliveries, cast_slot, live, SLOT_NAMES)
    )

    has_samples = probe.latency.count > 0
    return SwitchRunResult(
        config=config,
        runtime=runtime.name,
        casts=len(cast_slot),
        delivered={r: len(deliveries[r]) for r in live},
        mean_ms=probe.mean_ms if has_samples else float("nan"),
        median_ms=probe.median_ms if has_samples else float("nan"),
        p90_ms=probe.quantile_ms(0.90) if has_samples else float("nan"),
        samples=probe.latency.count,
        switch_duration_ms=durations[0] * 1e3 if durations else None,
        max_hiccup_ms=probe.max_gap * 1e3,
        switches_completed=manager.core.switches_completed,
        final_protocols=finals,
        settle_time=settle_time,
        violations=violations,
    )
