"""Workloads and the §7 experiment runners.

* :mod:`repro.workloads.generator` — Poisson/uniform multicast sources.
* :mod:`repro.workloads.latency` — end-to-end latency probes.
* :mod:`repro.workloads.experiment` — Figure 2 sweep, switch-overhead,
  and oscillation/hysteresis experiments.
"""

from .experiment import (
    Figure2Config,
    LatencyResult,
    OscillationResult,
    SwitchOverheadResult,
    find_crossover,
    run_figure2_sweep,
    run_group_size_sweep,
    run_point_statistics,
    run_oscillation_experiment,
    run_switch_overhead_experiment,
    run_total_order_experiment,
)
from .generator import Payload, PoissonSender, UniformSender
from .latency import LatencyProbe
from .preservation import SCENARIOS, ScenarioOutcome, run_preservation_suite

__all__ = [
    "Figure2Config",
    "LatencyResult",
    "OscillationResult",
    "SwitchOverheadResult",
    "find_crossover",
    "run_figure2_sweep",
    "run_group_size_sweep",
    "run_point_statistics",
    "run_oscillation_experiment",
    "run_switch_overhead_experiment",
    "run_total_order_experiment",
    "Payload",
    "PoissonSender",
    "UniformSender",
    "LatencyProbe",
    "SCENARIOS",
    "ScenarioOutcome",
    "run_preservation_suite",
]
