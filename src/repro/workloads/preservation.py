"""Experiment S6: which properties survive live protocol switching.

The paper's §5–§6 prose makes per-property claims about its switching
protocol; this module exercises each claim against *recorded executions*
of the real SP implementation (not the trace calculus — that's
bench_table2's job):

Preserved — Total Order, Reliability (§6.3 notes it is preserved despite
failing Safety), Integrity (under active forgery), Confidentiality
(under a promiscuous-mode eavesdropper on the shared Ethernet).

Not preserved — No Replay (§6.2: same body re-delivered across the
seam), Amoeba (§5.3–5.4: the switch un-blocks a sender awaiting its own
message), Prioritized Delivery (§5.2: SP buffering reorders deliveries
across processes), Virtual Synchrony (§6.1: the switched-to protocol's
epoch evidence is missing / regresses).

Plus the §8 extension: the same workload over :class:`ViewSwitchStack`
*does* preserve Virtual Synchrony.

Each scenario returns a :class:`ScenarioOutcome` with the observed
verdict; most also run a no-switch (or no-defense) control to show the
violation really is the switch's doing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.switchable import ProtocolSpec, SwitchableStack, build_group_handle
from ..core.view_switch import ViewSwitchStack
from ..net.ethernet import EthernetNetwork, EthernetParams
from ..net.faults import FaultPlan
from ..net.ptp import LatencyMatrix, PointToPointNetwork
from ..protocols.amoeba import AmoebaLayer
from ..protocols.confidentiality import ConfidentialityLayer
from ..protocols.crypto import Ciphertext, GroupKey
from ..protocols.fifo import FifoLayer
from ..protocols.integrity import IntegrityLayer
from ..protocols.noreplay import NoReplayLayer
from ..protocols.priority import PrioritizedDeliveryLayer
from ..protocols.reliable import ReliableLayer
from ..protocols.sequencer import SequencerLayer
from ..protocols.tokenring import TokenRingLayer
from ..protocols.virtual_synchrony import VirtualSynchronyLayer
from ..runtime.api import Runtime
from ..runtime.sim_runtime import SimRuntime
from ..sim.rng import RandomStreams
from ..stack.membership import Group
from ..stack.message import Message
from ..traces.properties import (
    Amoeba,
    Confidentiality,
    Integrity,
    NoReplay,
    PrioritizedDelivery,
    Property,
    Reliability,
    TotalOrder,
    VirtualSynchrony,
)
from ..traces.recorder import TraceRecorder

__all__ = ["ScenarioOutcome", "run_preservation_suite", "SCENARIOS"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of one preservation scenario."""

    scenario: str
    property_name: str
    paper_ref: str
    expected_holds: bool
    holds: bool
    control_holds: Optional[bool]  # the control run's verdict (if any)
    explanation: Optional[str]  # violation detail when not holding

    @property
    def as_expected(self) -> bool:
        return self.holds == self.expected_holds

    def row(self) -> str:
        """One formatted report line for this outcome."""
        verdict = "holds" if self.holds else "VIOLATED"
        expect = "holds" if self.expected_holds else "VIOLATED"
        agree = "ok" if self.as_expected else "** MISMATCH **"
        ctl = ""
        if self.control_holds is not None:
            ctl = f" control={'holds' if self.control_holds else 'VIOLATED'}"
        return (
            f"{self.scenario:<28} {self.property_name:<22} "
            f"observed={verdict:<9} paper({self.paper_ref})={expect:<9} "
            f"{agree}{ctl}"
        )


# ----------------------------------------------------------------------
# Scenario helpers
# ----------------------------------------------------------------------
def _switch_run(
    specs: List[ProtocolSpec],
    script: Callable[[Runtime, Dict[int, SwitchableStack]], None],
    group_size: int = 4,
    duration: float = 2.0,
    initial: Optional[str] = None,
    variant: str = "broadcast",
    latency: Optional[LatencyMatrix] = None,
    faults: Optional[FaultPlan] = None,
    seed: int = 7,
) -> Tuple[TraceRecorder, Dict[int, SwitchableStack]]:
    """Run a scripted switching execution on a PTP network; return the
    recorder (app-level global trace) and the stacks."""
    sim = SimRuntime()
    streams = RandomStreams(seed)
    net = PointToPointNetwork(
        sim, group_size, latency=latency, faults=faults, rng=streams
    )
    group = Group.of_size(group_size)
    stacks = build_group_handle(
        sim,
        net,
        group,
        specs,
        initial=initial or specs[0].name,
        variant=variant,
        token_interval=0.002,
        streams=streams,
    ).stacks
    recorder = TraceRecorder(sim)
    recorder.attach_all(stacks)
    script(sim, stacks)
    sim.run_until(duration)
    return recorder, stacks


def _steady_casts(
    sim: Runtime,
    stacks: Dict[int, SwitchableStack],
    times_bodies: List[Tuple[float, int, object]],
) -> None:
    for when, rank, body in times_bodies:
        sim.schedule_at(
            when, lambda rank=rank, body=body: stacks[rank].cast(body, 64)
        )


def _outcome(
    scenario: str,
    prop: Property,
    paper_ref: str,
    expected_holds: bool,
    recorder: TraceRecorder,
    control_holds: Optional[bool] = None,
) -> ScenarioOutcome:
    explanation = prop.explain(recorder.trace())
    return ScenarioOutcome(
        scenario=scenario,
        property_name=prop.name,
        paper_ref=paper_ref,
        expected_holds=expected_holds,
        holds=explanation is None,
        control_holds=control_holds,
        explanation=explanation,
    )


# ----------------------------------------------------------------------
# Preserved properties
# ----------------------------------------------------------------------
def scenario_total_order() -> ScenarioOutcome:
    """Total Order survives a sequencer -> token switch under load."""
    specs = [
        ProtocolSpec("seq", lambda r: [SequencerLayer()]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer()]),
    ]

    def script(sim, stacks):
        schedule = []
        t = 0.005
        for i in range(30):
            schedule.append((t, i % 4, f"m{i}"))
            t += 0.004
        _steady_casts(sim, stacks, schedule)
        sim.schedule_at(0.050, lambda: stacks[2].request_switch("tok"))

    recorder, stacks = _switch_run(specs, script)
    assert all(s.current_protocol == "tok" for s in stacks.values())
    return _outcome(
        "switch under load", TotalOrder(), "section 6.3", True, recorder
    )


def scenario_reliability() -> ScenarioOutcome:
    """Reliability survives switching, over a lossy network."""
    specs = [
        ProtocolSpec("relA", lambda r: [ReliableLayer()]),
        ProtocolSpec("relB", lambda r: [ReliableLayer()]),
    ]

    def script(sim, stacks):
        schedule = [(0.005 + 0.005 * i, i % 4, f"r{i}") for i in range(20)]
        _steady_casts(sim, stacks, schedule)
        sim.schedule_at(0.040, lambda: stacks[0].request_switch("relB"))

    recorder, stacks = _switch_run(
        specs,
        script,
        duration=4.0,
        faults=FaultPlan(loss_rate=0.10, reorder_jitter=0.002),
    )
    assert all(s.current_protocol == "relB" for s in stacks.values())
    return _outcome(
        "switch over 10% loss",
        Reliability(receivers={0, 1, 2, 3}),
        "section 6.3",
        True,
        recorder,
    )


def scenario_integrity() -> ScenarioOutcome:
    """Integrity survives switching while an attacker injects forgeries.

    The attacker is *not* a group member: it attaches a raw endpoint to
    the network and injects messages that mimic the slots' wire format
    with an invalid MAC.  The control run mounts slots without the
    integrity layer; there the forgery is delivered.
    """
    key = GroupKey("group-secret")
    group_size = 4
    attacker_rank = group_size  # extra node, outside the group

    def build_and_run(defended: bool) -> TraceRecorder:
        sim = SimRuntime()
        streams = RandomStreams(11)
        net = PointToPointNetwork(sim, group_size + 1, rng=streams)
        group = Group.of_size(group_size)
        if defended:
            specs = [
                ProtocolSpec("macA", lambda r: [IntegrityLayer(key)]),
                ProtocolSpec(
                    "macB", lambda r: [FifoLayer(), IntegrityLayer(key)]
                ),
            ]
        else:
            specs = [
                ProtocolSpec("macA", lambda r: []),
                ProtocolSpec("macB", lambda r: [FifoLayer()]),
            ]
        stacks = build_group_handle(
            sim, net, group, specs, initial="macA", variant="broadcast",
            streams=streams,
        ).stacks
        recorder = TraceRecorder(sim)
        recorder.attach_all(stacks)
        attacker_endpoint = net.attach(attacker_rank, lambda pkt: None)

        def inject(channel: int) -> None:
            forged = (
                Message(
                    sender=attacker_rank,
                    mid=(attacker_rank, 0xBAD),
                    body="forged",
                    body_size=16,
                )
                .with_header("mac", "not-a-valid-tag", 32)
                .with_header("mux", channel, 2)
            )
            attacker_endpoint.unicast(1, forged, forged.size_bytes)

        schedule = [(0.005 + 0.004 * i, i % 4, f"i{i}") for i in range(12)]
        _steady_casts(sim, stacks, schedule)
        sim.schedule_at(0.010, lambda: inject(1))  # into macA, pre-switch
        sim.schedule_at(0.030, lambda: stacks[0].request_switch("macB"))
        sim.schedule_at(0.080, lambda: inject(2))  # into macB, post-switch
        sim.run_until(1.0)
        return recorder

    prop = Integrity(trusted=set(range(group_size)))
    control_recorder = build_and_run(defended=False)
    control_holds = prop.holds(control_recorder.trace())
    recorder = build_and_run(defended=True)
    return ScenarioOutcome(
        scenario="forgery across switch",
        property_name=prop.name,
        paper_ref="section 6.3",
        expected_holds=True,
        holds=prop.holds(recorder.trace()),
        control_holds=control_holds,
        explanation=prop.explain(recorder.trace()),
    )


def scenario_confidentiality() -> ScenarioOutcome:
    """Confidentiality survives switching under a promiscuous sniffer.

    The group runs on a shared Ethernet segment; an eavesdropper NIC in
    promiscuous mode reads every frame.  With the confidentiality layer
    mounted (data *and* control channels) it can decrypt nothing; the
    undefended control run leaks everything.
    """
    key = GroupKey("conf-secret")
    group_size = 4
    sniffer_id = 99  # identity of the eavesdropper in the trace

    def build_and_run(defended: bool) -> TraceRecorder:
        sim = SimRuntime()
        streams = RandomStreams(13)
        net = EthernetNetwork(sim, group_size, EthernetParams(), rng=streams)
        group = Group.of_size(group_size)

        def conf_layers(extra):
            def factory(rank):
                layers = list(extra())
                if defended:
                    layers.append(ConfidentialityLayer(key))
                return layers

            return factory

        specs = [
            ProtocolSpec("confA", conf_layers(lambda: [])),
            ProtocolSpec("confB", conf_layers(lambda: [FifoLayer()])),
        ]
        stacks = build_group_handle(
            sim, net, group, specs, initial="confA", variant="broadcast",
            control_factory=conf_layers(lambda: [ReliableLayer()]),
            streams=streams,
        ).stacks
        recorder = TraceRecorder(sim)
        recorder.attach_all(stacks)

        def sniff(packet) -> None:
            payload = packet.payload
            if not isinstance(payload, Message):
                return
            if isinstance(payload.body, Ciphertext):
                return  # sealed: the eavesdropper learns nothing
            if payload.body is None:
                return  # empty frames carry no information
            recorder.record_deliver(sniffer_id, payload)

        net.attach_sniffer(sniff)
        schedule = [(0.005 + 0.005 * i, i % 4, f"s{i}") for i in range(12)]
        _steady_casts(sim, stacks, schedule)
        sim.schedule_at(0.035, lambda: stacks[0].request_switch("confB"))
        sim.run_until(1.0)
        return recorder

    prop = Confidentiality(trusted=set(range(group_size)))
    control_recorder = build_and_run(defended=False)
    control_holds = prop.holds(control_recorder.trace())
    recorder = build_and_run(defended=True)
    return ScenarioOutcome(
        scenario="eavesdropper on the wire",
        property_name=prop.name,
        paper_ref="section 6.3",
        expected_holds=True,
        holds=prop.holds(recorder.trace()),
        control_holds=control_holds,
        explanation=prop.explain(recorder.trace()),
    )


# ----------------------------------------------------------------------
# Violated properties
# ----------------------------------------------------------------------
def scenario_no_replay() -> ScenarioOutcome:
    """No Replay breaks across a switch: each slot's replay cache is
    fresh, so the same body delivered once per epoch reaches the
    application twice (§6.2)."""
    specs = [
        ProtocolSpec("nrA", lambda r: [NoReplayLayer()]),
        ProtocolSpec("nrB", lambda r: [NoReplayLayer()]),
    ]

    def script(sim, stacks):
        sim.schedule_at(0.005, lambda: stacks[1].cast("duplicate-body", 64))
        sim.schedule_at(0.020, lambda: stacks[0].request_switch("nrB"))
        sim.schedule_at(0.100, lambda: stacks[1].cast("duplicate-body", 64))

    recorder, __ = _switch_run(specs, script)

    # Control: the same double-send without a switch is suppressed.
    def control_script(sim, stacks):
        sim.schedule_at(0.005, lambda: stacks[1].cast("duplicate-body", 64))
        sim.schedule_at(0.100, lambda: stacks[1].cast("duplicate-body", 64))

    control_recorder, __ = _switch_run(specs, control_script)
    prop = NoReplay()
    return ScenarioOutcome(
        scenario="same body across switch",
        property_name=prop.name,
        paper_ref="section 6.2",
        expected_holds=False,
        holds=prop.holds(recorder.trace()),
        control_holds=prop.holds(control_recorder.trace()),
        explanation=prop.explain(recorder.trace()),
    )


def scenario_amoeba() -> ScenarioOutcome:
    """Amoeba breaks: the switch lets a blocked sender send again while
    its old-protocol message is still outstanding (§5.3–§5.4).

    The old protocol is token-ring total order, so a sender's own cast
    takes most of a token rotation to come back; the switch happens in
    that window, and the application — honestly consulting can_send() —
    is allowed to send over the new protocol.
    """
    specs = [
        ProtocolSpec("amA", lambda r: [AmoebaLayer(), TokenRingLayer()]),
        ProtocolSpec("amB", lambda r: [AmoebaLayer()]),
    ]
    latency = LatencyMatrix(4, base_latency=3e-3)

    def script(do_switch: bool):
        def inner(sim, stacks):
            sent_second = []

            def try_second_send() -> None:
                if sent_second:
                    return
                if stacks[1].can_send():
                    stacks[1].cast("second", 64)
                    sent_second.append(True)
                    return
                sim.schedule(0.001, try_second_send)

            sim.schedule_at(0.004, lambda: stacks[1].cast("first", 64))
            if do_switch:
                sim.schedule_at(0.005, lambda: stacks[0].request_switch("amB"))
            sim.schedule_at(0.006, try_second_send)

        return inner

    recorder, __ = _switch_run(specs, script(True), latency=latency)
    control_recorder, __ = _switch_run(specs, script(False), latency=latency)
    prop = Amoeba()
    return ScenarioOutcome(
        scenario="unblocked sender",
        property_name=prop.name,
        paper_ref="sections 5.3-5.4",
        expected_holds=False,
        holds=prop.holds(recorder.trace()),
        control_holds=prop.holds(control_recorder.trace()),
        explanation=prop.explain(recorder.trace()),
    )


def scenario_prioritized_delivery() -> ScenarioOutcome:
    """Prioritized Delivery breaks: SP buffering re-orders deliveries
    *across processes* (the Asynchrony failure, §5.2).

    The master's inbound links are slow, so it drains the old protocol
    long after everyone else; a message sent over the new protocol is
    flushed at a fast member before the master's buffered copy."""
    master = 0
    specs = [
        ProtocolSpec("prA", lambda r: [PrioritizedDeliveryLayer(master)]),
        ProtocolSpec("prB", lambda r: [PrioritizedDeliveryLayer(master)]),
    ]
    latency = LatencyMatrix(4, base_latency=1e-3)
    for rank in (1, 2, 3):
        latency.set(rank, master, 25e-3)  # into the master: slow
    latency.set(1, 3, 25e-3)  # initiator's control traffic to rank 3: slow

    def script(do_switch: bool):
        def inner(sim, stacks):
            # rank 3 keeps sending on the old protocol until its late
            # PREPARE arrives.
            schedule = [(0.002 + 0.004 * i, 3, f"old{i}") for i in range(6)]
            _steady_casts(sim, stacks, schedule)
            if do_switch:
                sim.schedule_at(0.003, lambda: stacks[1].request_switch("prB"))
            # rank 2 sends during the switching window (over the new
            # protocol if switching).
            sim.schedule_at(0.008, lambda: stacks[2].cast("during", 64))

        return inner

    recorder, __ = _switch_run(specs, script(True), latency=latency)
    control_recorder, __ = _switch_run(specs, script(False), latency=latency)
    prop = PrioritizedDelivery(master)
    return ScenarioOutcome(
        scenario="buffered past the master",
        property_name=prop.name,
        paper_ref="section 5.2",
        expected_holds=False,
        holds=prop.holds(recorder.trace()),
        control_holds=prop.holds(control_recorder.trace()),
        explanation=prop.explain(recorder.trace()),
    )


def scenario_virtual_synchrony() -> ScenarioOutcome:
    """Virtual Synchrony breaks: the switched-to VS protocol announces
    its own epoch, whose view id regresses — the history the new
    protocol never saw (the Memoryless failure, §6.1)."""
    specs = [
        ProtocolSpec(
            "vsA",
            lambda r: [
                VirtualSynchronyLayer(announce="first_activity", namespace=0)
            ],
        ),
        ProtocolSpec(
            "vsB",
            lambda r: [
                VirtualSynchronyLayer(announce="first_activity", namespace=1)
            ],
        ),
    ]

    def script(do_switch: bool):
        def inner(sim, stacks):
            schedule = [(0.004 + 0.004 * i, i % 4, f"v{i}") for i in range(6)]
            _steady_casts(sim, stacks, schedule)
            if do_switch:
                sim.schedule_at(0.030, lambda: stacks[0].request_switch("vsB"))
            later = [(0.080 + 0.004 * i, i % 4, f"w{i}") for i in range(6)]
            _steady_casts(sim, stacks, later)

        return inner

    recorder, __ = _switch_run(specs, script(True))
    control_recorder, __ = _switch_run(specs, script(False))
    prop = VirtualSynchrony()
    return ScenarioOutcome(
        scenario="epoch regression",
        property_name=prop.name,
        paper_ref="section 6.1",
        expected_holds=False,
        holds=prop.holds(recorder.trace()),
        control_holds=prop.holds(control_recorder.trace()),
        explanation=prop.explain(recorder.trace()),
    )


def scenario_view_switch_preserves_vs() -> ScenarioOutcome:
    """The §8 extension: switching *via a view change* preserves VS."""
    sim = SimRuntime()
    streams = RandomStreams(17)
    net = PointToPointNetwork(sim, 4, rng=streams)
    group = Group.of_size(4)
    specs = [
        ProtocolSpec("fifoA", lambda r: [FifoLayer()]),
        ProtocolSpec("fifoB", lambda r: [FifoLayer()]),
    ]
    stacks = {
        rank: ViewSwitchStack(
            sim, net, group, rank, specs, initial="fifoA",
            variant="broadcast", streams=streams.fork(f"rank{rank}"),
        )
        for rank in group
    }
    recorder = TraceRecorder(sim)
    for stack in stacks.values():
        recorder.attach(stack)
    schedule = [(0.004 + 0.004 * i, i % 4, f"x{i}") for i in range(8)]
    _steady_casts(sim, stacks, schedule)
    sim.schedule_at(0.020, lambda: stacks[0].request_switch("fifoB"))
    later = [(0.090 + 0.004 * i, i % 4, f"y{i}") for i in range(8)]
    _steady_casts(sim, stacks, later)
    sim.run_until(1.0)
    assert all(s.current_protocol == "fifoB" for s in stacks.values())
    prop = VirtualSynchrony()
    return ScenarioOutcome(
        scenario="view-change switching",
        property_name=prop.name,
        paper_ref="section 8",
        expected_holds=True,
        holds=prop.holds(recorder.trace()),
        control_holds=None,
        explanation=prop.explain(recorder.trace()),
    )


# ----------------------------------------------------------------------
# Extension scenarios (beyond the paper's own claims)
# ----------------------------------------------------------------------
def scenario_causal_order_preserved() -> ScenarioOutcome:
    """Extension: Causal Order satisfies all six meta-properties (see
    bench_table2 / test_causal_meta), so the section 6.3 theorem predicts
    preservation — confirmed live."""
    from ..protocols.causal import CausalOrderLayer
    from ..traces.properties import CausalOrder

    specs = [
        ProtocolSpec("cA", lambda r: [CausalOrderLayer()]),
        ProtocolSpec("cB", lambda r: [CausalOrderLayer()]),
    ]

    def script(sim, stacks):
        # Causally chained chatter: each delivery may trigger a reply.
        def respond(rank):
            def on_deliver(m):
                if isinstance(m.body, int) and m.body < 4:
                    stacks[rank].cast(m.body + 1, 16)
            return on_deliver

        stacks[1].on_deliver(respond(1))
        stacks[3].on_deliver(respond(3))
        for i in range(6):
            sim.schedule_at(0.003 * (i + 1), lambda i=i: stacks[i % 4].cast(0, 16))
        sim.schedule_at(0.015, lambda: stacks[0].request_switch("cB"))

    recorder, stacks = _switch_run(specs, script)
    assert all(s.current_protocol == "cB" for s in stacks.values())
    return _outcome(
        "causal chains across switch",
        CausalOrder(),
        "extension; theorem sec 6.3",
        True,
        recorder,
    )


def scenario_blocking_sp_preserves_amoeba() -> ScenarioOutcome:
    """Extension (section 8's 'other switching protocols'): a *blocking*
    SP variant queues sends during the switch, which preserves Amoeba —
    the switch cannot complete until the outstanding message drains."""
    from ..protocols.amoeba import AmoebaLayer as _Amoeba
    from ..protocols.tokenring import TokenRingLayer as _Token

    specs = [
        ProtocolSpec("amA", lambda r: [_Amoeba(), _Token()]),
        ProtocolSpec("amB", lambda r: [_Amoeba()]),
    ]
    sim = SimRuntime()
    streams = RandomStreams(9)
    net = PointToPointNetwork(
        sim, 4, latency=LatencyMatrix(4, base_latency=3e-3), rng=streams
    )
    group = Group.of_size(4)
    stacks = build_group_handle(
        sim, net, group, specs, initial="amA", variant="broadcast",
        streams=streams, block_sends_during_switch=True,
    ).stacks
    recorder = TraceRecorder(sim)
    recorder.attach_all(stacks)
    sent_second: List[bool] = []

    def try_second_send() -> None:
        if sent_second:
            return
        if stacks[1].can_send():
            stacks[1].cast("second", 64)
            sent_second.append(True)
            return
        sim.schedule(0.001, try_second_send)

    sim.schedule_at(0.004, lambda: stacks[1].cast("first", 64))
    sim.schedule_at(0.005, lambda: stacks[0].request_switch("amB"))
    sim.schedule_at(0.006, try_second_send)
    sim.run_until(2.0)
    assert sent_second
    prop = Amoeba()
    return ScenarioOutcome(
        scenario="blocking SP, waiting sender",
        property_name=prop.name,
        paper_ref="extension of sec 8",
        expected_holds=True,
        holds=prop.holds(recorder.trace()),
        control_holds=False,  # the paper's SP violates it (scenario_amoeba)
        explanation=prop.explain(recorder.trace()),
    )


#: All paper-claim scenarios in report order.
SCENARIOS: List[Callable[[], ScenarioOutcome]] = [
    scenario_total_order,
    scenario_reliability,
    scenario_integrity,
    scenario_confidentiality,
    scenario_no_replay,
    scenario_amoeba,
    scenario_prioritized_delivery,
    scenario_virtual_synchrony,
    scenario_view_switch_preserves_vs,
]

#: Scenarios for results this repository derives beyond the paper.
EXTENSION_SCENARIOS: List[Callable[[], ScenarioOutcome]] = [
    scenario_causal_order_preserved,
    scenario_blocking_sp_preserves_amoeba,
]


def run_preservation_suite(include_extensions: bool = False) -> List[ScenarioOutcome]:
    """Run every S6 scenario (optionally plus extensions); return outcomes."""
    scenarios = list(SCENARIOS)
    if include_extensions:
        scenarios += EXTENSION_SCENARIOS
    return [scenario() for scenario in scenarios]
