"""The §7 performance experiments, as reusable runners.

Testbed stand-in: a 10-member group on the shared-Ethernet model, a
subgroup of ``active_senders`` members each multicasting 50 msg/s of 1 KB
payloads (Poisson arrivals).  Three protocol configurations:

* ``sequencer`` — centralized-sequencer total order,
* ``token`` — token-ring total order,
* ``hybrid`` — both mounted under the switching protocol with an
  adaptive (hysteresis) oracle, the paper's "best of both worlds".

Calibration (documented in EXPERIMENTS.md): per-packet host CPU time and
the sequencer's ordering cost are set so the sequencer saturates between
5 and 6 active senders — the paper's crossover — while the token ring's
rotation dominates its (flatter) latency.  Absolute milliseconds are not
expected to match a 1998 Sparc testbed; shapes and orderings are.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core.hybrid import AdaptiveController
from ..core.oracle import HysteresisOracle, Oracle, ThresholdOracle
from ..core.stats import ActivityMonitor
from ..core.switchable import ProtocolSpec, SwitchableStack, build_group_handle
from ..errors import ReproError
from ..net.ethernet import EthernetNetwork, EthernetParams
from ..protocols.sequencer import SequencerLayer
from ..protocols.tokenring import TokenRingLayer
from ..runtime.api import Runtime
from ..runtime.sim_runtime import SimRuntime
from ..sim.rng import RandomStreams
from ..sim.seeding import figure2_cell_seed, figure2_repeat_seed
from ..stack.membership import Group
from ..stack.stack import build_group
from .generator import PoissonSender
from .latency import LatencyProbe

__all__ = [
    "Figure2Config",
    "LatencyResult",
    "LatencyStatistics",
    "run_point_statistics",
    "find_crossover",
    "run_total_order_experiment",
    "run_figure2_sweep",
    "run_group_size_sweep",
    "SwitchOverheadResult",
    "run_switch_overhead_experiment",
    "OscillationResult",
    "run_oscillation_experiment",
]


@dataclass
class Figure2Config:
    """Parameters of the Figure 2 reproduction.

    Defaults mirror the paper where it gives numbers (10 members,
    50 msg/s per active sender, 10 Mbit Ethernet) and calibrate what it
    does not (per-packet CPU, ordering cost).
    """

    group_size: int = 10
    rate: float = 50.0
    body_size: int = 1024
    duration: float = 4.0
    warmup: float = 1.0
    seed: int = 42
    ethernet: EthernetParams = field(
        default_factory=lambda: EthernetParams(
            bandwidth_bps=10e6,
            propagation=100e-6,
            cpu_send=0.7e-3,
            cpu_recv=0.7e-3,
        )
    )
    sequencer_order_cost: float = 0.9e-3
    token_interval: float = 0.010  # SP NORMAL-token pacing (hybrid only)
    oracle_low: float = 4.5  # hybrid: switch down below this many senders
    oracle_high: float = 5.5  # hybrid: switch up above this
    oracle_dwell: float = 0.5
    oracle_poll: float = 0.1


@dataclass(frozen=True)
class LatencyResult:
    """Latency statistics from one run."""

    protocol: str
    active_senders: int
    mean_ms: float
    median_ms: float
    p90_ms: float
    samples: int
    switches: int = 0

    def row(self) -> str:
        """One formatted report line for this result."""
        return (
            f"{self.protocol:<10} senders={self.active_senders:<3} "
            f"mean={self.mean_ms:7.2f}ms median={self.median_ms:7.2f}ms "
            f"p90={self.p90_ms:7.2f}ms n={self.samples}"
        )


def _sequencer_layers(config: Figure2Config):
    return lambda rank: [SequencerLayer(order_cost=config.sequencer_order_cost)]


def _token_layers(config: Figure2Config):
    return lambda rank: [TokenRingLayer()]


def _build_plain(
    runtime: Runtime,
    network: EthernetNetwork,
    group: Group,
    protocol: str,
    config: Figure2Config,
    streams: RandomStreams,
):
    if protocol == "sequencer":
        factory = _sequencer_layers(config)
    elif protocol == "token":
        factory = _token_layers(config)
    else:
        raise ReproError(f"unknown plain protocol {protocol!r}")
    return build_group(runtime, network, group, factory, streams=streams)


def _build_hybrid(
    runtime: Runtime,
    network: EthernetNetwork,
    group: Group,
    config: Figure2Config,
    streams: RandomStreams,
    initial: str,
    oracle_factory: Optional[Callable[[ActivityMonitor], Oracle]] = None,
) -> Tuple[Dict[int, SwitchableStack], AdaptiveController]:
    specs = [
        ProtocolSpec("sequencer", _sequencer_layers(config)),
        ProtocolSpec("token", _token_layers(config)),
    ]
    stacks = build_group_handle(
        runtime,
        network,
        group,
        specs,
        initial=initial,
        variant="token",
        token_interval=config.token_interval,
        streams=streams,
    ).stacks
    manager = stacks[group.coordinator]
    monitor = ActivityMonitor(runtime, window=0.5)
    manager.on_deliver(monitor.observe)
    if oracle_factory is None:
        oracle: Oracle = HysteresisOracle(
            metric=monitor.active_senders,
            low_threshold=config.oracle_low,
            high_threshold=config.oracle_high,
            low_protocol="sequencer",
            high_protocol="token",
            min_dwell=config.oracle_dwell,
        )
    else:
        oracle = oracle_factory(monitor)
    controller = AdaptiveController(
        manager, oracle, poll_interval=config.oracle_poll
    )
    controller.start()
    return stacks, controller


def run_total_order_experiment(
    protocol: str,
    active_senders: int,
    config: Optional[Figure2Config] = None,
) -> LatencyResult:
    """One point of Figure 2: mean latency for ``active_senders`` senders.

    ``protocol``: "sequencer", "token", or "hybrid".
    """
    config = config or Figure2Config()
    if not 1 <= active_senders <= config.group_size:
        raise ReproError(
            f"active_senders must be in [1, {config.group_size}]"
        )
    runtime = SimRuntime()
    streams = RandomStreams(figure2_cell_seed(config.seed, active_senders))
    network = EthernetNetwork(
        runtime, config.group_size, replace(config.ethernet), rng=streams
    )
    group = Group.of_size(config.group_size)

    switches = 0
    if protocol == "hybrid":
        # Start on the per-regime best guess's *opposite* to force the
        # oracle to earn its keep near the thresholds.
        initial = "sequencer"
        stacks, controller = _build_hybrid(
            runtime, network, group, config, streams, initial
        )
    else:
        stacks = _build_plain(runtime, network, group, protocol, config, streams)
        controller = None

    probe = LatencyProbe(runtime, warmup=config.warmup)
    probe.attach_all(stacks)

    senders = []
    for rank in list(group)[:active_senders]:
        sender = PoissonSender(
            runtime,
            stacks[rank],
            rate=config.rate,
            rng=streams.stream(f"workload{rank}"),
            body_size=config.body_size,
        )
        sender.start()
        senders.append(sender)

    runtime.run_until(config.duration)
    if controller is not None:
        switches = stacks[group.coordinator].core.switches_completed
    if probe.latency.count == 0:
        raise ReproError(
            f"no latency samples for {protocol} at {active_senders} senders"
        )
    return LatencyResult(
        protocol=protocol,
        active_senders=active_senders,
        mean_ms=probe.mean_ms,
        median_ms=probe.median_ms,
        p90_ms=probe.quantile_ms(0.90),
        samples=probe.latency.count,
        switches=switches,
    )


@dataclass(frozen=True)
class LatencyStatistics:
    """Cross-seed statistics for one Figure 2 point."""

    protocol: str
    active_senders: int
    repeats: int
    mean_ms: float
    std_ms: float
    min_ms: float
    max_ms: float


def run_point_statistics(
    protocol: str,
    active_senders: int,
    config: Optional[Figure2Config] = None,
    repeats: int = 5,
) -> LatencyStatistics:
    """One Figure 2 point, repeated over ``repeats`` independent seeds.

    Useful for error bars / robustness checks: the single-seed sweep is
    deterministic, but the Poisson workload makes each point a random
    variable; this reports its spread.
    """
    if repeats < 1:
        raise ReproError("repeats must be positive")
    base = config or Figure2Config()
    means: List[float] = []
    for repeat in range(repeats):
        run_config = replace(
            base, seed=figure2_repeat_seed(base.seed, repeat)
        )
        result = run_total_order_experiment(
            protocol, active_senders, run_config
        )
        means.append(result.mean_ms)
    mean = sum(means) / len(means)
    variance = sum((m - mean) ** 2 for m in means) / len(means)
    return LatencyStatistics(
        protocol=protocol,
        active_senders=active_senders,
        repeats=repeats,
        mean_ms=mean,
        std_ms=variance ** 0.5,
        min_ms=min(means),
        max_ms=max(means),
    )


def run_figure2_sweep(
    protocols: Tuple[str, ...] = ("sequencer", "token"),
    sender_counts: Optional[List[int]] = None,
    config: Optional[Figure2Config] = None,
) -> Dict[str, List[LatencyResult]]:
    """The full Figure 2 sweep: latency vs. number of active senders."""
    config = config or Figure2Config()
    counts = sender_counts or list(range(1, config.group_size + 1))
    results: Dict[str, List[LatencyResult]] = {}
    for protocol in protocols:
        results[protocol] = [
            run_total_order_experiment(protocol, k, config) for k in counts
        ]
    return results


def find_crossover(
    seq_results: List[LatencyResult], tok_results: List[LatencyResult]
) -> Optional[Tuple[int, int]]:
    """The sender counts (k, k+1) between which the curves cross.

    Paper: "a cross-over point when the size of the subset is between 5
    and 6 active senders."
    """
    pairs = list(zip(seq_results, tok_results))
    for (s1, t1), (s2, t2) in zip(pairs, pairs[1:]):
        if s1.mean_ms <= t1.mean_ms and s2.mean_ms > t2.mean_ms:
            return (s1.active_senders, s2.active_senders)
    return None


def run_group_size_sweep(
    protocol: str,
    group_sizes: List[int],
    active_senders: int = 2,
    config: Optional[Figure2Config] = None,
) -> List[LatencyResult]:
    """Latency vs. *group size* at fixed load — the other axis of the §7
    trade-off.

    The token ring's unloaded latency is about half a rotation, and a
    rotation is linear in the group size; the sequencer's is two network
    hops regardless.  This sweep makes that structural difference (which
    Figure 2 holds fixed at n=10) measurable.
    """
    base = config or Figure2Config()
    results = []
    for size in group_sizes:
        if active_senders > size:
            raise ReproError(
                f"{active_senders} senders do not fit a group of {size}"
            )
        sized = replace(base, group_size=size)
        results.append(
            run_total_order_experiment(protocol, active_senders, sized)
        )
    return results


@dataclass(frozen=True)
class SwitchOverheadResult:
    """§7 switching-overhead measurement."""

    active_senders: int
    direction: str
    switch_duration_ms: float  # initiator-observed, full 3 rotations
    max_hiccup_ms: float  # largest inter-delivery gap near the switch
    baseline_hiccup_ms: float  # largest gap in a no-switch control run
    sends_blocked: int  # should be 0: sends never block


def run_switch_overhead_experiment(
    active_senders: int = 5,
    direction: str = "sequencer->token",
    config: Optional[Figure2Config] = None,
) -> SwitchOverheadResult:
    """Measure the cost of one switch near the crossover (§7: ~31 ms;
    'the perceived hiccup is often less than that')."""
    config = config or Figure2Config()
    initial, target = direction.split("->")

    def run(trigger_switch: bool) -> Tuple[float, float, int]:
        runtime = SimRuntime()
        streams = RandomStreams(config.seed)
        network = EthernetNetwork(
            runtime, config.group_size, replace(config.ethernet), rng=streams
        )
        group = Group.of_size(config.group_size)
        specs = [
            ProtocolSpec("sequencer", _sequencer_layers(config)),
            ProtocolSpec("token", _token_layers(config)),
        ]
        stacks = build_group_handle(
            runtime, network, group, specs, initial=initial,
            variant="token", token_interval=config.token_interval,
            streams=streams,
        ).stacks
        probe = LatencyProbe(runtime, warmup=config.warmup)
        probe.attach_all(stacks)
        blocked = 0
        for rank in list(group)[:active_senders]:
            PoissonSender(
                runtime, stacks[rank], rate=config.rate,
                rng=streams.stream(f"workload{rank}"),
                body_size=config.body_size,
            ).start()
        durations: List[float] = []
        manager = stacks[group.coordinator]
        manager.protocol.on_global_complete(
            lambda __, duration: durations.append(duration)
        )
        switch_at = config.warmup + 1.0
        if trigger_switch:
            runtime.schedule_at(switch_at, lambda: manager.request_switch(target))
        runtime.run_until(config.duration)
        for rank in list(group)[:active_senders]:
            if not stacks[rank].can_send():
                blocked += 1
        duration_ms = durations[0] * 1e3 if durations else float("nan")
        return duration_ms, probe.max_gap * 1e3, blocked

    switch_duration, hiccup, blocked = run(trigger_switch=True)
    __, baseline_hiccup, __unused = run(trigger_switch=False)
    return SwitchOverheadResult(
        active_senders=active_senders,
        direction=direction,
        switch_duration_ms=switch_duration,
        max_hiccup_ms=hiccup,
        baseline_hiccup_ms=baseline_hiccup,
        sends_blocked=blocked,
    )


@dataclass(frozen=True)
class OscillationResult:
    """§7 aggressive-vs-hysteresis comparison."""

    policy: str
    switch_requests: int
    switches_completed: int
    mean_latency_ms: float


def run_oscillation_experiment(
    policy: str,
    config: Optional[Figure2Config] = None,
    duration: float = 12.0,
    flutter_period: float = 1.0,
) -> OscillationResult:
    """Load hovers around the crossover; compare oracle policies.

    The active-sender count alternates between 5 and 6 every
    ``flutter_period`` seconds (one sender toggles on/off).  The
    "aggressive" policy (single threshold, no dwell) oscillates; the
    "hysteresis" policy stays put or switches rarely.
    """
    config = config or Figure2Config()
    runtime = SimRuntime()
    streams = RandomStreams(config.seed)
    network = EthernetNetwork(
        runtime, config.group_size, replace(config.ethernet), rng=streams
    )
    group = Group.of_size(config.group_size)

    def oracle_factory(monitor: ActivityMonitor) -> Oracle:
        if policy == "aggressive":
            return ThresholdOracle(
                metric=monitor.active_senders,
                threshold=(config.oracle_low + config.oracle_high) / 2,
                low_protocol="sequencer",
                high_protocol="token",
            )
        if policy == "hysteresis":
            return HysteresisOracle(
                metric=monitor.active_senders,
                low_threshold=config.oracle_low,
                high_threshold=config.oracle_high,
                low_protocol="sequencer",
                high_protocol="token",
                min_dwell=config.oracle_dwell,
            )
        raise ReproError(f"unknown policy {policy!r}")

    stacks, controller = _build_hybrid(
        runtime, network, group, config, streams, "sequencer", oracle_factory
    )
    probe = LatencyProbe(runtime, warmup=config.warmup)
    probe.attach_all(stacks)

    # Five steady senders plus one that flutters on and off.
    steady = list(group)[:5]
    for rank in steady:
        PoissonSender(
            runtime, stacks[rank], rate=config.rate,
            rng=streams.stream(f"workload{rank}"),
            body_size=config.body_size,
        ).start()
    flutter_rank = list(group)[5]
    flutter_rng = streams.stream("flutter")

    def schedule_flutter(start: float) -> None:
        if start >= duration:
            return
        sender = PoissonSender(
            runtime, stacks[flutter_rank], rate=config.rate, rng=flutter_rng,
            body_size=config.body_size, start=start,
            stop=start + flutter_period,
        )
        runtime.schedule_at(start, sender.start)
        schedule_flutter(start + 2 * flutter_period)

    schedule_flutter(config.warmup)
    runtime.run_until(duration)
    manager = stacks[group.coordinator]
    return OscillationResult(
        policy=policy,
        switch_requests=controller.switch_request_count,
        switches_completed=manager.core.switches_completed,
        mean_latency_ms=probe.mean_ms if probe.latency.count else float("nan"),
    )
