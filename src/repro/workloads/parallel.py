"""Deterministic parallel fan-out for sweep cells.

A *sweep* (Figure 2, the scaling benchmark) is a grid of independent
cells — one simulated run per ``(protocol, senders)`` or ``(protocol,
group_size, max_batch)`` combination.  Each cell builds its own
:class:`~repro.runtime.sim_runtime.SimRuntime` and seeds its own
:class:`~repro.sim.rng.RandomStreams` purely from the cell parameters,
so cells share no state and their results do not depend on execution
order.  That makes them embarrassingly parallel: this module fans cells
across a :class:`~concurrent.futures.ProcessPoolExecutor` and merges
the results back **in cell-definition order**, so a sweep run with
``workers=8`` is value-identical (and, downstream, byte-identical as a
JSON artifact) to the same sweep run with ``workers=1``.

The contract a cell function must honour to stay deterministic:

* module-level (picklable by reference) and pure — everything it needs
  arrives in the cell mapping, everything it learns leaves in the
  return value;
* all randomness derived from seeds carried *in the cell* (for
  Figure 2 this is ``config.seed + active_senders``, exactly what the
  serial sweep uses);
* no wall-clock reads, global counters, or filesystem side effects.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from .experiment import Figure2Config, LatencyResult, run_total_order_experiment

__all__ = [
    "default_workers",
    "run_cells",
    "figure2_cells",
    "run_figure2_cell",
    "run_figure2_sweep_parallel",
]

Cell = Mapping[str, Any]


def default_workers(requested: Optional[int] = None) -> int:
    """Clamp a ``--workers`` request to something sane for this host."""
    cores = os.cpu_count() or 1
    if requested is None or requested <= 0:
        return cores
    return min(requested, cores)


def run_cells(
    cells: Iterable[Cell],
    worker: Callable[[Cell], Any],
    workers: int = 1,
) -> List[Any]:
    """Run ``worker`` over every cell, in parallel when ``workers > 1``.

    Results come back in cell-definition order regardless of which
    process finished first, so callers may ``zip(cells, results)``.
    ``workers <= 1`` runs inline with no executor (and no pickling),
    which is also the reference path for determinism checks.
    """
    cells = list(cells)
    if workers <= 1 or len(cells) <= 1:
        return [worker(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        # map() preserves input order; chunksize=1 because cells are
        # coarse (whole simulated runs), not tiny work items.
        return list(pool.map(worker, cells, chunksize=1))


# ---------------------------------------------------------------------------
# Figure 2 cells
# ---------------------------------------------------------------------------
def figure2_cells(
    protocols: Sequence[str],
    sender_counts: Sequence[int],
    config: Figure2Config,
) -> List[Dict[str, Any]]:
    """The cell grid of :func:`run_figure2_sweep`, in its loop order."""
    return [
        {"protocol": protocol, "senders": senders, "config": config}
        for protocol in protocols
        for senders in sender_counts
    ]


def run_figure2_cell(cell: Cell) -> LatencyResult:
    """One Figure 2 point; the executor's (picklable) worker function."""
    return run_total_order_experiment(
        cell["protocol"], cell["senders"], cell["config"]
    )


def run_figure2_sweep_parallel(
    protocols: Sequence[str],
    sender_counts: Sequence[int],
    config: Figure2Config,
    workers: int = 1,
) -> Dict[str, List[LatencyResult]]:
    """Drop-in parallel replacement for :func:`run_figure2_sweep`.

    Value-identical to the serial sweep for any worker count: each cell
    seeds from ``config.seed + active_senders`` exactly as the serial
    path does, and results merge back in grid order.
    """
    cells = figure2_cells(protocols, sender_counts, config)
    results = run_cells(cells, run_figure2_cell, workers)
    merged: Dict[str, List[LatencyResult]] = {p: [] for p in protocols}
    for cell, result in zip(cells, results):
        merged[cell["protocol"]].append(result)
    return merged
