"""Fault injection for network models.

The switching protocol's correctness argument assumes the underlying
protocols deliver messages at-most-once and without spurious deliveries,
and its liveness needs exactly-once (§2).  Our reliable-multicast layer
provides that *over a faulty network*; these injectors supply the faults:
message loss, duplication, reordering, timed partitions, and — for the
fault-tolerant switching work — process crashes and per-link/per-channel
fault overrides targeting the SP's private control traffic.

A :class:`FaultPlan` is consulted per delivered copy by the point-to-point
network model (the Ethernet model has its own simpler loss knob).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import NetworkError

__all__ = [
    "Partition",
    "Crash",
    "LinkFaults",
    "FaultPlan",
    "FaultDecision",
    "Intercept",
]


@dataclass(frozen=True)
class Partition:
    """A network partition active during [start, end).

    ``groups`` is a list of disjoint node sets; nodes in different groups
    cannot exchange packets while the partition is active.  Nodes absent
    from every group are unreachable by everyone (total isolation).
    """

    start: float
    end: float
    groups: Tuple[frozenset, ...]

    @staticmethod
    def split(start: float, end: float, *groups: Sequence[int]) -> "Partition":
        if end <= start:
            raise NetworkError(f"empty partition window [{start}, {end})")
        frozen = tuple(frozenset(g) for g in groups)
        seen: Set[int] = set()
        for group in frozen:
            if seen & group:
                raise NetworkError("partition groups must be disjoint")
            seen |= group
        return Partition(start, end, frozen)

    def active_at(self, time: float) -> bool:
        """True while the partition window covers ``time``."""
        return self.start <= time < self.end

    def allows(self, a: int, b: int) -> bool:
        """True if a and b may communicate while this partition is active."""
        for group in self.groups:
            if a in group and b in group:
                return True
        return False


@dataclass(frozen=True)
class Crash:
    """A fail-silent process crash during [at, until).

    While crashed, a node neither transmits nor receives: every copy it
    sends and every copy addressed to it is dropped.  ``until`` defaults
    to forever (a crash with no recovery); a finite ``until`` models a
    recovering process that rejoins with whatever protocol state it had.
    """

    node: int
    at: float
    until: float = math.inf

    def __post_init__(self) -> None:
        if self.at < 0:
            raise NetworkError(f"crash time must be non-negative, got {self.at}")
        if self.until <= self.at:
            raise NetworkError(
                f"empty crash window [{self.at}, {self.until}) for node {self.node}"
            )

    def down_at(self, time: float) -> bool:
        """True while the node is crashed at ``time``."""
        return self.at <= time < self.until


@dataclass(frozen=True)
class LinkFaults:
    """Per-link probabilistic fault overrides for one ordered (src, dst).

    Any rate left as ``None`` falls back to the plan-wide value, so a link
    can e.g. override only its loss rate while inheriting jitter.
    """

    loss_rate: Optional[float] = None
    duplicate_rate: Optional[float] = None
    reorder_jitter: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value < 1.0:
                raise NetworkError(f"link {name} must be in [0, 1), got {value}")
        if self.reorder_jitter is not None and self.reorder_jitter < 0:
            raise NetworkError("link reorder_jitter must be non-negative")


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one delivered copy."""

    drop: bool = False
    duplicates: int = 0
    extra_delay: float = 0.0


#: An intercept inspects (time, src, dst, channel, payload) for one copy
#: and either dictates its fate with a FaultDecision or returns None to
#: fall through to the plan's probabilistic machinery.  Used by tests to
#: drop *specific* control messages (e.g. "the first PREPARE token").
Intercept = Callable[[float, int, int, Optional[int], object], Optional[FaultDecision]]


@dataclass
class FaultPlan:
    """Probabilistic faults plus scheduled partitions and crashes.

    Attributes:
        loss_rate: probability a copy is silently dropped.
        duplicate_rate: probability a copy is delivered twice.
        reorder_jitter: max uniform extra delay, which reorders packets
            whose nominal delivery times are closer than the jitter.
        partitions: timed partitions; a copy crossing an active partition
            boundary is dropped deterministically.
        crashes: timed fail-silent process crashes; a crashed node sends
            and receives nothing until it recovers.
        links: per-(src, dst) overrides of the probabilistic rates.
        channels: when set, the probabilistic faults (plan-wide and
            per-link) apply only to copies on these mux channels — e.g.
            ``frozenset({0})`` targets the SP's control traffic while
            leaving the data protocols untouched.  Partitions and crashes
            always apply to every channel.
        intercept: optional per-copy override consulted first (after
            crashes); see :data:`Intercept`.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_jitter: float = 0.0
    partitions: List[Partition] = field(default_factory=list)
    crashes: List[Crash] = field(default_factory=list)
    links: Dict[Tuple[int, int], LinkFaults] = field(default_factory=dict)
    channels: Optional[FrozenSet[int]] = None
    intercept: Optional[Intercept] = None

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise NetworkError(f"{name} must be in [0, 1), got {value}")
        if self.reorder_jitter < 0:
            raise NetworkError("reorder_jitter must be non-negative")
        if self.channels is not None:
            self.channels = frozenset(self.channels)

    def is_lossless(self) -> bool:
        """True when the plan injects no faults at all."""
        return (
            self.loss_rate == 0.0
            and self.duplicate_rate == 0.0
            and not self.partitions
            and not self.crashes
            and not self.links
            and self.intercept is None
        )

    # ------------------------------------------------------------------
    # Crash queries
    # ------------------------------------------------------------------
    def node_alive(self, node: int, time: float) -> bool:
        """True if no scheduled crash keeps ``node`` down at ``time``."""
        return not any(c.node == node and c.down_at(time) for c in self.crashes)

    # ------------------------------------------------------------------
    # Rate resolution
    # ------------------------------------------------------------------
    def _rates(self, src: int, dst: int) -> Tuple[float, float, float]:
        link = self.links.get((src, dst))
        if link is None:
            return self.loss_rate, self.duplicate_rate, self.reorder_jitter
        return (
            self.loss_rate if link.loss_rate is None else link.loss_rate,
            self.duplicate_rate
            if link.duplicate_rate is None
            else link.duplicate_rate,
            self.reorder_jitter
            if link.reorder_jitter is None
            else link.reorder_jitter,
        )

    def decide(
        self,
        rng: random.Random,
        time: float,
        src: int,
        dst: int,
        channel: Optional[int] = None,
        payload: object = None,
    ) -> FaultDecision:
        """Decide the fate of one copy sent at ``time`` from src to dst.

        ``channel`` is the mux channel the copy travels on (None when the
        network cannot tell); ``payload`` is the on-wire object, passed to
        the intercept only.
        """
        if not self.node_alive(src, time) or not self.node_alive(dst, time):
            return FaultDecision(drop=True)
        if self.intercept is not None:
            verdict = self.intercept(time, src, dst, channel, payload)
            if verdict is not None:
                return verdict
        for partition in self.partitions:
            if partition.active_at(time) and not partition.allows(src, dst):
                return FaultDecision(drop=True)
        if self.channels is not None and channel not in self.channels:
            return FaultDecision()
        loss, dup, jitter = self._rates(src, dst)
        if loss and rng.random() < loss:
            return FaultDecision(drop=True)
        duplicates = 0
        if dup and rng.random() < dup:
            duplicates = 1
        extra = rng.random() * jitter if jitter else 0.0
        return FaultDecision(duplicates=duplicates, extra_delay=extra)
