"""Fault injection for network models.

The switching protocol's correctness argument assumes the underlying
protocols deliver messages at-most-once and without spurious deliveries,
and its liveness needs exactly-once (§2).  Our reliable-multicast layer
provides that *over a faulty network*; these injectors supply the faults:
message loss, duplication, reordering, and timed partitions.

A :class:`FaultPlan` is consulted per delivered copy by the point-to-point
network model (the Ethernet model has its own simpler loss knob).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..errors import NetworkError

__all__ = ["Partition", "FaultPlan", "FaultDecision"]


@dataclass(frozen=True)
class Partition:
    """A network partition active during [start, end).

    ``groups`` is a list of disjoint node sets; nodes in different groups
    cannot exchange packets while the partition is active.  Nodes absent
    from every group are unreachable by everyone (total isolation).
    """

    start: float
    end: float
    groups: Tuple[frozenset, ...]

    @staticmethod
    def split(start: float, end: float, *groups: Sequence[int]) -> "Partition":
        if end <= start:
            raise NetworkError(f"empty partition window [{start}, {end})")
        frozen = tuple(frozenset(g) for g in groups)
        seen: Set[int] = set()
        for group in frozen:
            if seen & group:
                raise NetworkError("partition groups must be disjoint")
            seen |= group
        return Partition(start, end, frozen)

    def active_at(self, time: float) -> bool:
        """True while the partition window covers ``time``."""
        return self.start <= time < self.end

    def allows(self, a: int, b: int) -> bool:
        """True if a and b may communicate while this partition is active."""
        for group in self.groups:
            if a in group and b in group:
                return True
        return False


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one delivered copy."""

    drop: bool = False
    duplicates: int = 0
    extra_delay: float = 0.0


@dataclass
class FaultPlan:
    """Probabilistic faults plus scheduled partitions.

    Attributes:
        loss_rate: probability a copy is silently dropped.
        duplicate_rate: probability a copy is delivered twice.
        reorder_jitter: max uniform extra delay, which reorders packets
            whose nominal delivery times are closer than the jitter.
        partitions: timed partitions; a copy crossing an active partition
            boundary is dropped deterministically.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_jitter: float = 0.0
    partitions: List[Partition] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise NetworkError(f"{name} must be in [0, 1), got {value}")
        if self.reorder_jitter < 0:
            raise NetworkError("reorder_jitter must be non-negative")

    def is_lossless(self) -> bool:
        """True when the plan injects no faults at all."""
        return (
            self.loss_rate == 0.0
            and self.duplicate_rate == 0.0
            and not self.partitions
        )

    def decide(
        self, rng: random.Random, time: float, src: int, dst: int
    ) -> FaultDecision:
        """Decide the fate of one copy sent at ``time`` from src to dst."""
        for partition in self.partitions:
            if partition.active_at(time) and not partition.allows(src, dst):
                return FaultDecision(drop=True)
        if self.loss_rate and rng.random() < self.loss_rate:
            return FaultDecision(drop=True)
        duplicates = 0
        if self.duplicate_rate and rng.random() < self.duplicate_rate:
            duplicates = 1
        extra = rng.random() * self.reorder_jitter if self.reorder_jitter else 0.0
        return FaultDecision(duplicates=duplicates, extra_delay=extra)
