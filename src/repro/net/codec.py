"""Binary wire codec for the UDP network.

Replaces whole-datagram pickling with struct-packed framing so the
asyncio/UDP runtime stops paying pickle's header-object tax on every
send and — crucially — so a multicast can encode its payload **once**
and reuse the bytes across every fan-out destination (only the 6-byte
frame prefix differs per target).

Wire layout::

    0      1      2        4        6
    +------+------+--------+--------+---------------------------+
    | 0xC5 | ver  |  src   |  dst   |  payload body ...         |
    +------+------+--------+--------+---------------------------+
      magic  u8      u16be    u16be

``ver`` selects the body encoding: :data:`VERSION_BINARY` is the
tag-length-value encoding below; :data:`VERSION_PICKLE` is a plain
pickle of the payload, kept as an escape hatch and for decoding
fixtures produced before the codec existed.

:data:`VERSION_GROUP` frames carry a fleet group id between the fixed
prefix and the body, as an unsigned LEB128 varint (1 byte up to 127,
2 up to 16383, at most 5 for the u32 ceiling)::

    0      1      2        4        6
    +------+------+--------+--------+----------+----------------+
    | 0xC5 |  2   |  src   |  dst   | group id |  payload body  |
    +------+------+--------+--------+----------+----------------+
      magic  u8      u16be    u16be    varint

Group 0 — every pre-fleet single-group run — keeps encoding as a
:data:`VERSION_BINARY` frame, so its bytes are identical to the
pre-group codec and the pinned parity fixtures cannot drift.

The TLV body handles every value the stack actually ships — ``None``,
bools, ints, floats, strings, bytes, tuples, lists, dicts, and
:class:`~repro.stack.message.Message` itself (recursively, so a
batching frame whose body is a tuple of messages encodes natively).
Message *headers* first consult a **registry of per-layer codecs**
(:func:`register_header_codec`): the hot layers (fifo, sequencer,
token ring, reliable, batching, mux, priority, confidentiality) pack
their small fixed-shape values into a few bytes each.  A value no
codec and no TLV tag can represent falls back to an embedded pickle,
counted on the observability bus (``codec.pickle_fallbacks``) and on
the codec's :attr:`WireCodec.stats` so a hot path quietly degrading to
pickle is visible instead of silent.
"""

from __future__ import annotations

import marshal
import pickle
import struct
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import NetworkError
from ..sim.monitor import Counter

__all__ = [
    "WireCodec",
    "register_header_codec",
    "registered_header_keys",
    "FRAME_OVERHEAD",
    "MAGIC",
    "MAX_GROUP_ID",
    "VERSION_PICKLE",
    "VERSION_BINARY",
    "VERSION_GROUP",
]

MAGIC = 0xC5

#: Body is ``pickle.dumps(payload)`` — pre-codec escape hatch.
VERSION_PICKLE = 0
#: Body is the TLV encoding implemented here.
VERSION_BINARY = 1
#: A varint group id follows the fixed prefix, then a TLV body.
VERSION_GROUP = 2

_FRAME = struct.Struct("!BBHH")  # magic, version, src, dst
FRAME_OVERHEAD = _FRAME.size

#: Largest group id the frame carries (u32 range; ≤ 5 varint bytes).
MAX_GROUP_ID = 2 ** 32 - 1


def _append_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    while value > 0x7F:
        out.append(0x80 | (value & 0x7F))
        value >>= 7
    out.append(value)


def _uvarint(value: int) -> bytes:
    out = bytearray()
    _append_uvarint(out, value)
    return bytes(out)


def _read_uvarint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Decode an unsigned LEB128 varint at ``pos``; returns (value, end)."""
    value = shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 35:
            raise NetworkError("group id varint over 5 bytes")

# ---------------------------------------------------------------------------
# TLV tags
# ---------------------------------------------------------------------------
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03       # !q
_T_BIGINT = 0x04    # !I length + signed big-endian bytes
_T_FLOAT = 0x05     # !d
_T_STR = 0x06       # !I length + utf-8
_T_BYTES = 0x07     # !I length + raw
_T_TUPLE = 0x08     # !I count + values
_T_LIST = 0x09      # !I count + values
_T_DICT = 0x0A      # !I count + key/value pairs
_T_MESSAGE = 0x0B   # see _encode_message
_T_PICKLE = 0x0C    # !I length + pickle bytes (counted fallback)

_Q = struct.Struct("!q")
_D = struct.Struct("!d")
_I = struct.Struct("!I")
_H = struct.Struct("!H")
_B = struct.Struct("!B")

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: Message skeleton fast path: sender u16, mid (u16 origin, i64 seq),
#: body_size u32, header_size u32; dest follows as 0xFF (None) or a
#: count byte plus that many u16 ranks.
_MSG_FIXED = struct.Struct("!HHqII")

#: Length-prefixed encoded header keys (tiny, bounded set).
_KEY_CACHE: Dict[str, bytes] = {}

#: Precompiled ``!<n>H`` rank-tuple structs, keyed by rank count.
#: ``struct.pack("!%dH" % n, ...)`` pays a string format plus struct's
#: format-cache probe on every message; dest tuples reuse a handful of
#: counts, so compiling once per count removes both from the hot path.
#: Bounded: counts are one byte on the wire (u16 for rel dest keys).
_RANK_STRUCTS: Dict[int, struct.Struct] = {}


def _rank_struct(count: int) -> struct.Struct:
    entry = _RANK_STRUCTS.get(count)
    if entry is None:
        entry = _RANK_STRUCTS[count] = struct.Struct("!%dH" % count)
    return entry

# ---------------------------------------------------------------------------
# Per-layer header codec registry
# ---------------------------------------------------------------------------
HeaderPack = Callable[[Any], bytes]
HeaderUnpack = Callable[[bytes], Any]

_HEADER_CODECS: Dict[str, Tuple[HeaderPack, HeaderUnpack]] = {}

#: key -> (wire id byte, pack); decode side indexes _ID_TABLE[id].
_KEY_IDS: Dict[str, Tuple[int, HeaderPack]] = {}
_ID_TABLE: list = [None]  # id 0x00 marks a string-keyed entry


def register_header_codec(key: str, pack: HeaderPack, unpack: HeaderUnpack) -> None:
    """Register a compact codec for the header named ``key``.

    ``pack`` may raise (``struct.error``, ``KeyError``, ``TypeError``,
    ``ValueError``) on values outside its compact shape; the encoder
    then falls back to the generic TLV encoding for that value, so a
    registration never has to be total.

    Registered keys travel as one-byte ids assigned in registration
    order, so encoder and decoder must register the same codecs in the
    same order — true by construction for this single program, and why
    the module performs its standard registrations at import time.
    """
    # The decode row carries the key's precomputed bloom-mask bit so the
    # header-chain rebuild skips a hash + shift per decoded header.
    row = (key, unpack, 1 << (hash(key) & 63))
    if key in _KEY_IDS:
        key_id = _KEY_IDS[key][0]
        _ID_TABLE[key_id] = row
    else:
        if len(_ID_TABLE) > 0xFE:
            raise NetworkError("header codec id space exhausted")
        key_id = len(_ID_TABLE)
        _ID_TABLE.append(row)
    _KEY_IDS[key] = (key_id, pack)
    _HEADER_CODECS[key] = (pack, unpack)


def registered_header_keys() -> Tuple[str, ...]:
    """The header keys with a registered compact codec."""
    return tuple(_HEADER_CODECS)


# -- standard registrations for the repo's layers ---------------------------

def _pack_u32(value: Any) -> bytes:
    return _I.pack(value)


def _unpack_u32(data: bytes) -> int:
    return _I.unpack(data)[0]


def _pack_u16(value: Any) -> bytes:
    return _H.pack(value)


def _unpack_u16(data: bytes) -> int:
    return _H.unpack(data)[0]


def _pack_batch(value: Any) -> bytes:
    if set(value) != {"n"}:
        raise ValueError(value)
    return _H.pack(value["n"])


def _unpack_batch(data: bytes) -> Dict[str, int]:
    return {"n": _H.unpack(data)[0]}


def _pack_seqr(value: Any) -> bytes:
    kind = value["k"]
    if kind == "raw" and len(value) == 1:
        return b"\x00"
    if kind == "ord" and len(value) == 2:
        return b"\x01" + _I.pack(value["gseq"])
    raise ValueError(value)


def _unpack_seqr(data: bytes) -> Dict[str, Any]:
    if data[0] == 0:
        return {"k": "raw"}
    return {"k": "ord", "gseq": _I.unpack_from(data, 1)[0]}


def _pack_tring(value: Any) -> bytes:
    kind = value["k"]
    if kind == "dat" and len(value) == 2:
        return b"\x00" + _I.pack(value["gseq"])
    if kind == "tok" and len(value) == 3:
        return b"\x01" + struct.pack("!Iq", value["gseq"], value["ep"])
    raise ValueError(value)


_TOK = struct.Struct("!Iq")


def _unpack_tring(data: bytes) -> Dict[str, Any]:
    if data[0] == 0:
        return {"k": "dat", "gseq": _I.unpack_from(data, 1)[0]}
    gseq, epoch = _TOK.unpack_from(data, 1)
    return {"k": "tok", "gseq": gseq, "ep": epoch}


_REL_KINDS = ("data", "nak", "ack", "hb")
_REL_DATA = struct.Struct("!IH")

# rel shape bytes: 0x00 = data with the whole-group dest key "G";
# 0x01 = data with a u8-counted dest tuple (legacy — decoded but no
# longer emitted, it silently truncated tuples past 255 ranks);
# 0x02 = data with a u16-counted dest tuple; 0x10+i = kind-only.


def _pack_rel(value: Any) -> bytes:
    kind = value["k"]
    if kind == "data":
        try:
            head = _REL_DATA.pack(value["seq"], value["src"])
            dest_key = value["dk"]
        except KeyError:
            raise ValueError(value) from None
        if dest_key == "G":
            return b"\x00" + head
        count = len(dest_key)
        return (
            b"\x02" + head + _H.pack(count)
            + _rank_struct(count).pack(*dest_key)
        )
    if kind in _REL_KINDS:
        return _B.pack(0x10 + _REL_KINDS.index(kind))
    raise ValueError(value)


def _unpack_rel(data: bytes) -> Dict[str, Any]:
    shape = data[0]
    if shape >= 0x10:
        return {"k": _REL_KINDS[shape - 0x10]}
    seq, src = _REL_DATA.unpack_from(data, 1)
    if shape == 0:
        dest_key: Any = "G"
    elif shape == 1:
        count = data[7]
        dest_key = _rank_struct(count).unpack_from(data, 8)
    else:
        count = _H.unpack_from(data, 7)[0]
        dest_key = _rank_struct(count).unpack_from(data, 9)
    return {"k": "data", "seq": seq, "dk": dest_key, "src": src}


_ONEOF_REGISTRY: Dict[str, Tuple[str, Tuple[Any, ...]]] = {
    "conf": ("", ("clear", "sealed")),
    "prio": ("k", ({"k": "data"}, {"k": "release"})),
}


def _register_oneof(key: str, choices: Tuple[Any, ...]) -> None:
    def pack(value: Any, _choices=choices) -> bytes:
        return _B.pack(_choices.index(value))

    def unpack(data: bytes, _choices=choices) -> Any:
        return _choices[data[0]]

    register_header_codec(key, pack, unpack)


register_header_codec("fifo", _pack_u32, _unpack_u32)
register_header_codec("mux", _pack_u16, _unpack_u16)
register_header_codec("batch", _pack_batch, _unpack_batch)
register_header_codec("seqr", _pack_seqr, _unpack_seqr)
register_header_codec("tring", _pack_tring, _unpack_tring)
register_header_codec("rel", _pack_rel, _unpack_rel)
_register_oneof("conf", ("clear", "sealed"))
_register_oneof("prio", ({"k": "data"}, {"k": "release"}))


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------
class WireCodec:
    """Encodes/decodes ``(src, dst, payload)`` datagram frames.

    Stateless apart from counters, so one instance may serve a whole
    network.  ``obs`` is an observability scope (anything with
    ``enabled`` and ``count``); pickle fallbacks are counted there and
    on :attr:`stats`.
    """

    def __init__(self, obs: Any = None) -> None:
        self.obs = obs
        self.stats = Counter()
        # Late import: stack depends on net for nothing, net.codec needs
        # the Message type only for isinstance dispatch.
        from ..stack.message import Message

        self._message_type = Message

    # -- encoding ----------------------------------------------------------
    def encode_payload(self, payload: Any) -> bytes:
        """TLV-encode ``payload`` into reusable body bytes."""
        out = bytearray()
        if type(payload) is self._message_type:
            self._encode_message(out, payload)
        else:
            self._encode_value(out, payload)
        return bytes(out)

    def frame(self, src: int, dst: int, body: bytes,
              version: int = VERSION_BINARY, group: int = 0) -> bytes:
        """Prefix already-encoded ``body`` bytes for one destination.

        ``group`` 0 (the single-group world) emits the requested legacy
        ``version`` frame, byte-identical to the pre-group codec; any
        other group id upgrades the frame to :data:`VERSION_GROUP`.
        """
        if group == 0:
            return _FRAME.pack(MAGIC, version, src, dst) + body
        if not 0 < group <= MAX_GROUP_ID:
            raise NetworkError(f"group id {group} outside [0, {MAX_GROUP_ID}]")
        return (
            _FRAME.pack(MAGIC, VERSION_GROUP, src, dst)
            + _uvarint(group) + body
        )

    def encode(self, src: int, dst: int, payload: Any, group: int = 0) -> bytes:
        """One-shot ``frame(src, dst, encode_payload(payload), group)``.

        Appends the payload straight after the frame prefix in one
        buffer, skipping the intermediate body copy ``encode_payload``
        + ``frame`` would make; a multicast wanting to reuse the body
        bytes calls those two explicitly instead.
        """
        if group == 0:
            out = bytearray(_FRAME.pack(MAGIC, VERSION_BINARY, src, dst))
        else:
            if not 0 < group <= MAX_GROUP_ID:
                raise NetworkError(
                    f"group id {group} outside [0, {MAX_GROUP_ID}]"
                )
            out = bytearray(_FRAME.pack(MAGIC, VERSION_GROUP, src, dst))
            _append_uvarint(out, group)
        if type(payload) is self._message_type:
            self._encode_message(out, payload)
        else:
            self._encode_value(out, payload)
        return bytes(out)

    # -- decoding ----------------------------------------------------------
    def decode(self, data: bytes) -> Tuple[int, int, Any]:
        """Decode a datagram into ``(src, dst, payload)``.

        Back-compat 3-tuple shape; group-aware receivers call
        :meth:`decode_datagram` to also get the frame's group id.
        """
        __, src, dst, payload = self.decode_datagram(data)
        return src, dst, payload

    def decode_datagram(self, data: bytes) -> Tuple[int, int, int, Any]:
        """Decode a datagram into ``(group, src, dst, payload)``.

        Deliberately *not* zero-copy: every variable-length field is a
        plain ``bytes`` slice.  A memoryview receive path was built and
        measured (CPython 3.11) and lost at every site — ``bytes``
        indexing beats view indexing, ``bytes.decode`` beats
        ``str(view, "utf-8")`` even including the slice copy, and
        ``pickle.loads`` is slower on views — so the copies stay; see
        docs/ARCHITECTURE.md (hot paths) for the numbers.  Decoded
        values therefore always own their storage and never alias the
        receive buffer, which the transport is free to reuse.
        """
        magic, version, src, dst = _FRAME.unpack_from(data)
        if magic != MAGIC:
            raise NetworkError(f"bad frame magic 0x{magic:02X}")
        group = 0
        pos = FRAME_OVERHEAD
        if version == VERSION_GROUP:
            group, pos = _read_uvarint(data, pos)
            if group > MAX_GROUP_ID:
                raise NetworkError(f"group id {group} over {MAX_GROUP_ID}")
        elif version == VERSION_PICKLE:
            return 0, src, dst, pickle.loads(data[FRAME_OVERHEAD:])
        elif version != VERSION_BINARY:
            raise NetworkError(f"unknown codec version {version}")
        if data[pos] == _T_MESSAGE:
            payload, end = self._decode_message(data, pos + 1)
        else:
            payload, end = self._decode_value(data, pos)
        if end != len(data):
            raise NetworkError(
                f"trailing garbage: {len(data) - end} B after payload"
            )
        return group, src, dst, payload

    # -- value encoding ----------------------------------------------------
    def _encode_value(self, out: bytearray, value: Any) -> None:
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif type(value) is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                out.append(_T_INT)
                out += _Q.pack(value)
            else:
                raw = value.to_bytes(
                    (value.bit_length() + 8) // 8, "big", signed=True
                )
                out.append(_T_BIGINT)
                out += _I.pack(len(raw))
                out += raw
        elif type(value) is float:
            out.append(_T_FLOAT)
            out += _D.pack(value)
        elif type(value) is str:
            raw = value.encode("utf-8")
            out.append(_T_STR)
            out += _I.pack(len(raw))
            out += raw
        elif type(value) is bytes:
            out.append(_T_BYTES)
            out += _I.pack(len(value))
            out += value
        elif type(value) is tuple:
            out.append(_T_TUPLE)
            out += _I.pack(len(value))
            for item in value:
                self._encode_value(out, item)
        elif type(value) is list:
            out.append(_T_LIST)
            out += _I.pack(len(value))
            for item in value:
                self._encode_value(out, item)
        elif type(value) is dict:
            out.append(_T_DICT)
            out += _I.pack(len(value))
            for key, item in value.items():
                self._encode_value(out, key)
                self._encode_value(out, item)
        elif isinstance(value, self._message_type):
            self._encode_message(out, value)
        else:
            self._encode_pickled(out, value)

    def _encode_pickled(self, out: bytearray, value: Any) -> None:
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats.incr("pickle_fallbacks")
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.count("codec.pickle_fallbacks")
        out.append(_T_PICKLE)
        out += _I.pack(len(raw))
        out += raw

    def _encode_message(self, out: bytearray, msg: Any) -> None:
        mid = msg.mid
        dest = msg.dest
        # Fast path: struct-pack the whole fixed-shape skeleton (ranks
        # are u16, sizes u32, sequence i64, dest a short rank list) in
        # one call; anything out of range takes the generic-field shape.
        try:
            skeleton = _MSG_FIXED.pack(
                msg.sender, mid[0], mid[1], msg.body_size, msg._header_size
            )
            if dest is None:
                dest_raw = b"\xff"
            else:
                count = len(dest)
                if count > 254:  # 0xFF is the None sentinel
                    raise struct.error("dest too wide for packed skeleton")
                dest_raw = _B.pack(count) + _rank_struct(count).pack(*dest)
        except (struct.error, TypeError, IndexError):
            out.append(_T_MESSAGE)
            out.append(1)  # generic-field variant
            self._encode_value(out, msg.sender)
            self._encode_value(out, mid)
            self._encode_value(out, msg.body_size)
            self._encode_value(out, dest)
            self._encode_value(out, msg._header_size)
        else:
            out.append(_T_MESSAGE)
            out.append(0)  # packed-skeleton variant
            out += skeleton
            out += dest_raw
        body = msg.body
        # Bodies are opaque app payloads of plain data; marshal encodes
        # them at C speed.  A body that embeds Messages (e.g. a batching
        # frame) is unmarshallable and recurses through the TLV instead.
        try:
            raw_body = marshal.dumps(body, 2)
        except ValueError:
            out.append(1)
            self._encode_value(out, body)
        else:
            out.append(0)
            out += _I.pack(len(raw_body))
            out += raw_body
        headers = msg._materialized()
        out.append(len(headers))
        key_ids = _KEY_IDS
        key_cache = _KEY_CACHE
        for key, value in headers.items():
            entry = key_ids.get(key)
            if entry is not None:
                try:
                    packed = entry[1](value)
                except (struct.error, KeyError, TypeError, ValueError,
                        IndexError):
                    packed = None
                if packed is not None and len(packed) <= 0xFF:
                    out.append(entry[0])
                    out.append(len(packed))
                    out += packed
                    continue
            # String-keyed entry: id 0x00, length-prefixed key, TLV value.
            out.append(0)
            raw_key = key_cache.get(key)
            if raw_key is None:
                raw = key.encode("utf-8")
                raw_key = key_cache[key] = _B.pack(len(raw)) + raw
            out += raw_key
            self._encode_value(out, value)

    # -- value decoding ----------------------------------------------------
    def _decode_value(self, buf: bytes, pos: int) -> Tuple[Any, int]:
        # Dispatch ordered by measured tag frequency: bodies are mostly
        # tuples/lists of ints and strings, so those tags come first.
        tag = buf[pos]
        pos += 1
        if tag == _T_INT:
            return _Q.unpack_from(buf, pos)[0], pos + 8
        if tag == _T_STR:
            length = _I.unpack_from(buf, pos)[0]
            pos += 4
            return buf[pos:pos + length].decode("utf-8"), pos + length
        if tag == _T_TUPLE or tag == _T_LIST:
            count = _I.unpack_from(buf, pos)[0]
            pos += 4
            items = []
            for __ in range(count):
                item, pos = self._decode_value(buf, pos)
                items.append(item)
            return (tuple(items) if tag == _T_TUPLE else items), pos
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_FLOAT:
            return _D.unpack_from(buf, pos)[0], pos + 8
        if tag == _T_DICT:
            count = _I.unpack_from(buf, pos)[0]
            pos += 4
            mapping = {}
            for __ in range(count):
                key, pos = self._decode_value(buf, pos)
                mapping[key], pos = self._decode_value(buf, pos)
            return mapping, pos
        if tag == _T_BYTES:
            length = _I.unpack_from(buf, pos)[0]
            pos += 4
            return buf[pos:pos + length], pos + length
        if tag == _T_MESSAGE:
            return self._decode_message(buf, pos)
        if tag == _T_BIGINT:
            length = _I.unpack_from(buf, pos)[0]
            pos += 4
            raw = buf[pos:pos + length]
            return int.from_bytes(raw, "big", signed=True), pos + length
        if tag == _T_PICKLE:
            length = _I.unpack_from(buf, pos)[0]
            pos += 4
            return pickle.loads(buf[pos:pos + length]), pos + length
        raise NetworkError(f"unknown TLV tag 0x{tag:02X}")

    def _decode_message(self, buf: bytes, pos: int) -> Tuple[Any, int]:
        variant = buf[pos]
        pos += 1
        if variant == 0:
            sender, mid0, mid1, body_size, header_size = _MSG_FIXED.unpack_from(
                buf, pos
            )
            mid: Any = (mid0, mid1)
            pos += _MSG_FIXED.size
            dest_count = buf[pos]
            pos += 1
            if dest_count == 0xFF:
                dest: Any = None
            else:
                dest = _rank_struct(dest_count).unpack_from(buf, pos)
                pos += 2 * dest_count
        else:
            sender, pos = self._decode_value(buf, pos)
            mid, pos = self._decode_value(buf, pos)
            body_size, pos = self._decode_value(buf, pos)
            dest, pos = self._decode_value(buf, pos)
            header_size, pos = self._decode_value(buf, pos)
        if buf[pos] == 0:  # marshalled body
            pos += 1
            body_len = _I.unpack_from(buf, pos)[0]
            pos += 4
            body = marshal.loads(buf[pos:pos + body_len])
            pos += body_len
        else:
            pos += 1
            body, pos = self._decode_value(buf, pos)
        count = buf[pos]
        pos += 1
        id_table = _ID_TABLE
        # Build the Message's persistent header chain directly, link by
        # link in push order — same node shape as Message.with_header,
        # minus one list + loop; the bloom bit comes precomputed from
        # the id table instead of a hash + shift per header.
        chain = None
        mask = 0
        for __ in range(count):
            key_id = buf[pos]
            pos += 1
            if key_id:
                key, unpack, bit = id_table[key_id]
                length = buf[pos]
                pos += 1
                end = pos + length
                value = unpack(buf[pos:end])
                pos = end
            else:
                key_len = buf[pos]
                pos += 1
                key = buf[pos:pos + key_len].decode("utf-8")
                pos += key_len
                value, pos = self._decode_value(buf, pos)
                bit = 1 << (hash(key) & 63)
            mask |= bit
            chain = (mask, chain, key, value)
        message = self._message_type._from_wire(
            sender, mid, body, body_size, dest, header_size, chain
        )
        return message, pos
