"""Shared-medium Ethernet model with host CPU queues.

This is the stand-in for the paper's testbed: ten SparcStation-20s running
Solaris on a 10 Mbit shared Ethernet (§7).  The model captures the three
effects that shape Figure 2:

1. **Host CPU service time.**  Mid-90s workstations running a user-level
   protocol stack spend on the order of a millisecond of CPU per packet
   sent or received.  Each host has a FIFO CPU queue: packet sends and
   receives are serialized through it, so a host that handles many packets
   (the sequencer!) builds a queue and its latency grows with load.
2. **Wire serialization.**  The 10 Mbit medium is a single shared resource;
   a 1 KB frame occupies it for ~0.8 ms.  Transmissions queue FIFO for the
   medium (an adequate stand-in for CSMA/CD under the moderate loads of
   the experiments).
3. **Hardware multicast.**  One transmission is heard by every receiver,
   so a multicast costs one wire slot regardless of fan-out.

Hosts may also request bare CPU work via :meth:`EthernetNetwork.cpu_work`;
protocol layers use this to model per-message protocol processing (e.g.
the sequencer's ordering work) that queues behind packet handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..errors import NetworkError
from ..runtime.api import Runtime
from ..sim.monitor import Counter
from ..sim.rng import RandomStreams
from .base import Endpoint, Network
from .packet import Packet

__all__ = ["EthernetParams", "EthernetNetwork", "HostCpu", "SharedMedium"]


@dataclass
class EthernetParams:
    """Tunable parameters of the Ethernet model.

    Defaults approximate the paper's testbed; the Figure 2 benchmark
    documents its exact calibration in EXPERIMENTS.md.

    Attributes:
        bandwidth_bps: shared medium bandwidth (10 Mbit/s).
        propagation: one-way propagation + interrupt latency, seconds.
        cpu_send: host CPU time to push one packet down to the NIC.
        cpu_recv: host CPU time to take one packet from the NIC to the app.
        loss_rate: independent per-receiver drop probability in [0, 1).
        jitter: uniform extra delay in [0, jitter] added per delivered copy,
            modelling scheduling noise on the receiving host.
    """

    bandwidth_bps: float = 10e6
    propagation: float = 100e-6
    cpu_send: float = 0.8e-3
    cpu_recv: float = 0.8e-3
    loss_rate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        for name in ("propagation", "cpu_send", "cpu_recv", "jitter"):
            if getattr(self, name) < 0:
                raise NetworkError(f"{name} must be non-negative")

    def serialization(self, size_bytes: int) -> float:
        """Time a frame of ``size_bytes`` occupies the medium."""
        return size_bytes * 8 / self.bandwidth_bps


class HostCpu:
    """A FIFO single-server queue modelling one host's processor.

    ``run(duration, then)`` enqueues ``duration`` seconds of work; ``then``
    fires when that work completes.  Work is processed in submission order,
    one piece at a time — this is what makes the sequencer saturate.
    """

    def __init__(self, runtime: Runtime, node: int) -> None:
        self.runtime = runtime
        self.node = node
        self._busy_until = 0.0
        self.busy_time = 0.0

    def run(self, duration: float, then: Callable[[], None]) -> float:
        """Queue ``duration`` seconds of CPU work; returns completion time.

        Zero-duration work does not queue: it completes at the current
        instant (modelling work handled off the protocol-processing
        path), keeping zero-cost configurations free of artificial
        serialization.
        """
        if duration < 0:
            raise NetworkError(f"negative CPU work: {duration}")
        if duration == 0:
            done = self.runtime.now
            self.runtime.schedule_at(done, then)
            return done
        start = max(self.runtime.now, self._busy_until)
        done = start + duration
        self._busy_until = done
        self.busy_time += duration
        self.runtime.schedule_at(done, then)
        return done

    @property
    def backlog(self) -> float:
        """Seconds of queued work not yet completed."""
        return max(0.0, self._busy_until - self.runtime.now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent busy (cumulative)."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class SharedMedium:
    """The single shared wire: a FIFO single-server queue of transmissions."""

    def __init__(self, runtime: Runtime) -> None:
        self.runtime = runtime
        self._busy_until = 0.0
        self.busy_time = 0.0
        self.transmissions = 0

    def transmit(self, duration: float, then: Callable[[], None]) -> float:
        """Occupy the medium for ``duration``; ``then`` fires at frame end."""
        start = max(self.runtime.now, self._busy_until)
        done = start + duration
        self._busy_until = done
        self.busy_time += duration
        self.transmissions += 1
        self.runtime.schedule_at(done, then)
        return done

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the medium was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class EthernetNetwork(Network):
    """A group of hosts on one shared Ethernet segment."""

    def __init__(
        self,
        runtime: Runtime,
        num_nodes: int,
        params: Optional[EthernetParams] = None,
        rng: Optional[RandomStreams] = None,
    ) -> None:
        super().__init__(runtime, num_nodes)
        self.params = params or EthernetParams()
        self._rng = (rng or RandomStreams(0)).stream("ethernet")
        self.medium = SharedMedium(runtime)
        self.cpus: List[HostCpu] = [HostCpu(runtime, n) for n in range(num_nodes)]
        self.stats = Counter()
        self._sniffers: List[Callable[[Packet], None]] = []

    def _make_endpoint(self, node: int) -> "EthernetEndpoint":
        return EthernetEndpoint(self, node)

    # ------------------------------------------------------------------
    # CPU work API for protocol layers
    # ------------------------------------------------------------------
    def cpu_work(self, node: int, duration: float, then: Callable[[], None]) -> None:
        """Queue protocol-processing CPU work on ``node``'s processor."""
        self._check_node(node)
        self.cpus[node].run(duration, then)

    # ------------------------------------------------------------------
    # Promiscuous mode
    # ------------------------------------------------------------------
    def attach_sniffer(self, callback: Callable[[Packet], None]) -> None:
        """Register an eavesdropper that sees every frame on the wire.

        A shared Ethernet segment is a broadcast medium: any attached NIC
        in promiscuous mode receives every transmission regardless of its
        destination.  Sniffers get one callback per frame (the ``dst`` of
        the packet they see is the frame's first addressee), at the
        moment the frame leaves the wire.  This is the threat model the
        Confidentiality property defends against.
        """
        self._sniffers.append(callback)

    # ------------------------------------------------------------------
    # Transmission pipeline
    # ------------------------------------------------------------------
    def _send(
        self,
        src: int,
        dsts: List[int],
        payload: object,
        size: int,
        group: int = 0,
    ) -> None:
        """Full pipeline: src CPU -> wire -> per-dst (loss, prop, dst CPU)."""
        params = self.params
        sent_at = self.runtime.now
        self.stats.incr("sends")
        if self.obs.enabled:
            self.obs.count("net.packets_sent")
            self.obs.count("net.bytes_sent", size)

        remote = [d for d in dsts if d != src]
        loop_local = src in dsts

        def after_src_cpu() -> None:
            if loop_local:
                # Loopback copies skip the wire entirely.
                self._schedule_receive(
                    Packet(src, src, payload, size, sent_at, group),
                    extra_delay=0.0,
                )
            if not remote:
                return
            self.medium.transmit(
                params.serialization(size),
                lambda: self._after_wire(
                    src, remote, payload, size, sent_at, group
                ),
            )

        self.cpus[src].run(params.cpu_send, after_src_cpu)

    def _after_wire(
        self,
        src: int,
        dsts: List[int],
        payload: object,
        size: int,
        sent_at: float,
        group: int = 0,
    ) -> None:
        params = self.params
        for sniffer in self._sniffers:
            sniffer(Packet(src, dsts[0], payload, size, sent_at, group))
        for dst in dsts:
            if not self._attached[dst]:
                continue
            if params.loss_rate and self._rng.random() < params.loss_rate:
                self.stats.incr("drops")
                if self.obs.enabled:
                    self.obs.count("net.drops")
                continue
            extra = params.jitter * self._rng.random() if params.jitter else 0.0
            self._schedule_receive(
                Packet(src, dst, payload, size, sent_at, group),
                extra_delay=params.propagation + extra,
            )

    def _schedule_receive(self, packet: Packet, extra_delay: float) -> None:
        def arrive() -> None:
            self.cpus[packet.dst].run(
                self.params.cpu_recv, lambda: self._count_and_deliver(packet)
            )

        if extra_delay > 0:
            self.runtime.schedule(extra_delay, arrive)
        else:
            arrive()

    def _count_and_deliver(self, packet: Packet) -> None:
        # Counted here — after propagation and the dst CPU queue — so the
        # delivery counters agree with traces even under backlog.
        self.stats.incr("deliveries")
        if self.obs.enabled:
            self.obs.count("net.packets_delivered")
        self._deliver(packet)


class EthernetEndpoint(Endpoint):
    """Send handle for a host on an :class:`EthernetNetwork`."""

    network: EthernetNetwork

    def unicast(
        self, dst: int, payload: object, size_bytes: int, group: int = 0
    ) -> None:
        self.network._check_node(dst)
        self.network._send(self.node, [dst], payload, size_bytes, group)

    def multicast(
        self,
        dsts: Iterable[int],
        payload: object,
        size_bytes: int,
        group: int = 0,
    ) -> None:
        dst_list = list(dict.fromkeys(dsts))  # dedupe, keep order
        for dst in dst_list:
            self.network._check_node(dst)
        if not dst_list:
            return
        self.network._send(self.node, dst_list, payload, size_bytes, group)
