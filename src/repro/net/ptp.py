"""Idealized point-to-point network with fault injection.

Unlike the Ethernet model, this mesh has no shared resources: every copy
travels independently with a per-pair latency.  It is the workhorse for
protocol-*correctness* tests, where we want precise control over message
timing, loss, duplication, reordering, and partitions without queueing
effects muddying the picture.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from ..errors import NetworkError
from ..runtime.api import Runtime
from ..sim.monitor import Counter
from ..sim.rng import RandomStreams
from .base import Endpoint, Network
from .faults import FaultPlan
from .packet import Packet

__all__ = ["PointToPointNetwork", "LatencyMatrix"]


class LatencyMatrix:
    """One-way latency per ordered node pair, with a uniform default.

    Latency to self (loopback) defaults to one tenth of the base latency.
    """

    def __init__(self, num_nodes: int, base_latency: float = 1e-3) -> None:
        if base_latency < 0:
            raise NetworkError("base latency must be non-negative")
        self.num_nodes = num_nodes
        self.base_latency = base_latency
        self._overrides: Dict[Tuple[int, int], float] = {}

    def set(self, src: int, dst: int, latency: float) -> None:
        """Override the one-way latency for the ordered pair (src, dst)."""
        if latency < 0:
            raise NetworkError("latency must be non-negative")
        self._overrides[(src, dst)] = latency

    def set_symmetric(self, a: int, b: int, latency: float) -> None:
        """Override the latency in both directions between a and b."""
        self.set(a, b, latency)
        self.set(b, a, latency)

    def get(self, src: int, dst: int) -> float:
        """The one-way latency from src to dst."""
        override = self._overrides.get((src, dst))
        if override is not None:
            return override
        if src == dst:
            return self.base_latency / 10.0
        return self.base_latency

    def set_base(self, latency: float) -> None:
        """Retune the uniform base latency (pair overrides keep winning).

        Packets already in flight keep the delay they were scheduled
        with; only copies sent after the change see the new value — the
        scenario runner uses this to model link-quality drift mid-run.
        """
        if latency < 0:
            raise NetworkError("latency must be non-negative")
        self.base_latency = latency


class PointToPointNetwork(Network):
    """A fully connected mesh of independent links.

    Crash semantics (fail-silent): a crashed node — whether crashed by a
    scheduled :class:`~repro.net.faults.Crash` in the fault plan or
    dynamically via :meth:`fail_node` — neither transmits nor receives.
    Its protocol timers keep firing inside the process, but every copy it
    emits dies at the interface and every copy addressed to it is
    dropped, on loopback too.  :meth:`recover_node` rejoins it with
    whatever state it last had.
    """

    def __init__(
        self,
        runtime: Runtime,
        num_nodes: int,
        latency: Optional[LatencyMatrix] = None,
        faults: Optional[FaultPlan] = None,
        rng: Optional[RandomStreams] = None,
    ) -> None:
        super().__init__(runtime, num_nodes)
        self.latency = latency or LatencyMatrix(num_nodes)
        if self.latency.num_nodes != num_nodes:
            raise NetworkError("latency matrix size mismatch")
        self.faults = faults or FaultPlan()
        self._rng = (rng or RandomStreams(0)).stream("ptp")
        self._down: set = set()
        self.stats = Counter()

    def _make_endpoint(self, node: int) -> "PtpEndpoint":
        return PtpEndpoint(self, node)

    def cpu_work(self, node: int, duration: float, then: Callable[[], None]) -> None:
        """Model protocol processing as a plain delay (no CPU contention)."""
        self._check_node(node)
        self.runtime.schedule(duration, then)

    def set_faults(self, plan: FaultPlan) -> None:
        """Swap the live fault plan (scenario phase transitions).

        Copies already in flight were decided under the old plan; every
        copy sent from now on is decided under ``plan``.  Dynamically
        crashed nodes (:meth:`fail_node`) stay down regardless.
        """
        self.faults = plan

    # ------------------------------------------------------------------
    # Dynamic crash / recovery (scriptable alongside FaultPlan.crashes)
    # ------------------------------------------------------------------
    def fail_node(self, node: int) -> None:
        """Crash ``node`` now (fail-silent).  Idempotent."""
        self._check_node(node)
        if node not in self._down:
            self._down.add(node)
            self.stats.incr("node_failures")

    def recover_node(self, node: int) -> None:
        """Bring a dynamically crashed ``node`` back up.  Idempotent."""
        self._check_node(node)
        if node in self._down:
            self._down.discard(node)
            self.stats.incr("node_recoveries")

    def node_alive(self, node: int) -> bool:
        """True if ``node`` is up right now (dynamic and scheduled crashes)."""
        self._check_node(node)
        return node not in self._down and self.faults.node_alive(
            node, self.runtime.now
        )

    @staticmethod
    def _channel_of(payload: object) -> Optional[int]:
        """The mux channel a wire payload travels on, if discernible."""
        header = getattr(payload, "header", None)
        if header is None:
            return None
        channel = header("mux")
        return channel if isinstance(channel, int) else None

    def _send_copy(
        self, src: int, dst: int, payload: object, size: int, group: int = 0
    ) -> None:
        self.stats.incr("sends")
        if self.obs.enabled:
            self.obs.count("net.packets_sent")
            self.obs.count("net.bytes_sent", size)
        if not self.node_alive(src) or not self.node_alive(dst):
            self.stats.incr("crash_drops")
            if self.obs.enabled:
                self.obs.count("net.drops")
            return
        if src == dst:
            # Loopback copies never traverse the faulty medium.
            packet = Packet(src, dst, payload, size, self.runtime.now, group)
            self.runtime.schedule(self.latency.get(src, dst), lambda: self._arrive(packet))
            return
        decision = self.faults.decide(
            self._rng,
            self.runtime.now,
            src,
            dst,
            channel=self._channel_of(payload),
            payload=payload,
        )
        if decision.drop:
            self.stats.incr("drops")
            if self.obs.enabled:
                self.obs.count("net.drops")
            return
        packet = Packet(src, dst, payload, size, self.runtime.now, group)
        copies = 1 + decision.duplicates
        if decision.duplicates:
            self.stats.incr("duplicates", decision.duplicates)
        for __ in range(copies):
            delay = self.latency.get(src, dst) + decision.extra_delay
            self.runtime.schedule(delay, lambda p=packet: self._arrive(p))

    def _arrive(self, packet: Packet) -> None:
        if not self._attached[packet.dst]:
            self.stats.incr("dead_letters")
            return
        if not self.node_alive(packet.dst):
            self.stats.incr("crash_drops")
            if self.obs.enabled:
                self.obs.count("net.drops")
            return
        self.stats.incr("deliveries")
        if self.obs.enabled:
            self.obs.count("net.packets_delivered")
        self._deliver(packet)


class PtpEndpoint(Endpoint):
    """Send handle for a node on a :class:`PointToPointNetwork`."""

    network: PointToPointNetwork

    def unicast(
        self, dst: int, payload: object, size_bytes: int, group: int = 0
    ) -> None:
        self.network._check_node(dst)
        self.network._send_copy(self.node, dst, payload, size_bytes, group)

    def multicast(
        self,
        dsts: Iterable[int],
        payload: object,
        size_bytes: int,
        group: int = 0,
    ) -> None:
        for dst in dict.fromkeys(dsts):
            self.network._check_node(dst)
            self.network._send_copy(self.node, dst, payload, size_bytes, group)
