"""Abstract network model and endpoint interfaces.

A network model owns a set of node ids.  A protocol stack *attaches* to a
node and gets back an :class:`Endpoint` — its handle for sending — while
registering a receive callback that the model invokes (in simulated time)
for every packet that survives the trip.

Two concrete models ship with the library:

* :class:`~repro.net.ethernet.EthernetNetwork` — a shared 10 Mbit medium
  with host CPU queues, used for the performance experiments (Figure 2).
* :class:`~repro.net.ptp.PointToPointNetwork` — an idealized latency mesh
  with optional fault injection, used for protocol-correctness tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, List

from ..errors import NetworkError
from ..obs.bus import Bus, BusScope, null_scope
from ..runtime.api import Runtime
from .packet import Packet

__all__ = ["Endpoint", "Network", "ReceiveCallback"]

ReceiveCallback = Callable[[Packet], None]


class Endpoint(ABC):
    """A node's handle for transmitting on a network model."""

    def __init__(self, network: "Network", node: int) -> None:
        self.network = network
        self.node = node

    @abstractmethod
    def unicast(
        self, dst: int, payload: object, size_bytes: int, group: int = 0
    ) -> None:
        """Send ``payload`` to a single node.

        ``group`` tags the transmission with a fleet group id; models
        carry it opaquely onto the delivered :class:`Packet` (and, on
        real wires, into the frame) so one node can host many groups.
        """

    @abstractmethod
    def multicast(
        self,
        dsts: Iterable[int],
        payload: object,
        size_bytes: int,
        group: int = 0,
    ) -> None:
        """Send ``payload`` to every node in ``dsts``.

        On broadcast media this is one wire transmission; on point-to-point
        meshes it fans out to independent unicasts.  Including the sending
        node in ``dsts`` yields a local loopback delivery.
        """

    def broadcast(
        self, payload: object, size_bytes: int, group: int = 0
    ) -> None:
        """Multicast to every attached node except the sender."""
        others = [n for n in self.network.nodes() if n != self.node]
        self.multicast(others, payload, size_bytes, group)


class Network(ABC):
    """Base class for network models (simulated or real).

    A model receives the runtime it should read time from and arm timers
    on; it must not assume the clock is virtual.
    """

    def __init__(self, runtime: Runtime, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise NetworkError(f"need at least one node, got {num_nodes}")
        self.runtime = runtime
        self.num_nodes = num_nodes
        self._receivers: List[ReceiveCallback] = [
            _unattached for __ in range(num_nodes)
        ]
        self._attached = [False] * num_nodes
        #: Instrumentation scope (rank-less: the network is a global
        #: producer).  The disabled null scope until :meth:`instrument`.
        self.obs: BusScope = null_scope()

    def instrument(self, bus: Bus) -> None:
        """Attach an instrumentation bus for packet/byte/drop metrics."""
        self.obs = bus.scoped(None)

    @property
    def sim(self) -> Runtime:
        """Back-compat alias for :attr:`runtime` (pre-boundary name)."""
        return self.runtime

    def nodes(self) -> range:
        """All node ids in the network."""
        return range(self.num_nodes)

    def attach(self, node: int, on_receive: ReceiveCallback) -> Endpoint:
        """Register a receiver for ``node`` and return its send endpoint."""
        self._check_node(node)
        if self._attached[node]:
            raise NetworkError(f"node {node} is already attached")
        self._receivers[node] = on_receive
        self._attached[node] = True
        return self._make_endpoint(node)

    def detach(self, node: int) -> None:
        """Unregister ``node``'s receiver so a later attach can rebuild it.

        Packets already in flight to a detached node raise on arrival —
        teardown should drain first (or the caller swallows strays).
        """
        self._check_node(node)
        if not self._attached[node]:
            raise NetworkError(f"node {node} is not attached")
        self._receivers[node] = _unattached
        self._attached[node] = False

    def is_attached(self, node: int) -> bool:
        """True if ``node`` has attached a receiver."""
        self._check_node(node)
        return self._attached[node]

    @abstractmethod
    def _make_endpoint(self, node: int) -> Endpoint:
        """Create the model-specific endpoint for an attached node."""

    def _deliver(self, packet: Packet) -> None:
        """Hand a packet to its destination's receive callback (now)."""
        self._receivers[packet.dst](packet)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(
                f"node {node} out of range [0, {self.num_nodes})"
            )


def _unattached(packet: Packet) -> None:
    raise NetworkError(f"packet delivered to unattached node: {packet!r}")
