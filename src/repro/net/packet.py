"""Packets: what travels through a simulated network.

A packet carries an opaque ``payload`` (whatever the protocol stack put on
the wire — in this library, an encoded :class:`~repro.stack.message.Message`)
plus the metadata the network models need: source, destination, and the
declared on-wire size used to compute serialization delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Packet", "BROADCAST"]

#: Destination constant meaning "all attached nodes except the sender".
BROADCAST = -1


@dataclass(frozen=True)
class Packet:
    """One network-level datagram.

    Attributes:
        src: sending node id.
        dst: receiving node id for this delivered copy (a multicast results
            in one :class:`Packet` per receiver, sharing one wire
            transmission on broadcast media).
        payload: opaque protocol data; never inspected by network models.
        size_bytes: declared on-wire size, including protocol headers.
        sent_at: simulated time at which the send was requested.
        group: fleet group id the payload belongs to (0 = the default
            single-group world; network models never interpret it beyond
            carrying it to the receiver).
    """

    src: int
    dst: int
    payload: Any
    size_bytes: int
    sent_at: float = field(default=0.0, compare=False)
    group: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.src}->{self.dst} {self.size_bytes}B "
            f"t={self.sent_at:.6f}>"
        )
