"""Real localhost UDP network for the asyncio runtime.

Every node of a :class:`UdpNetwork` binds its own UDP socket on
``127.0.0.1`` (``base_port + node``), so a "multicast" fans out to one
real datagram per destination and every message genuinely traverses the
kernel's network stack — serialization, copies, socket buffers, and
(under pressure) real drops.  This is the Spectrum/Ring-Paxos-style
deployment shape scaled down to one machine: per-process stacks run as
tasks of one asyncio loop, but the wire between them is real.

Payloads are :class:`~repro.stack.message.Message` objects (and their
layer headers), pickled for the wire.  Pickle is acceptable here because
both ends are the same trusted program on the same host; a cross-host
deployment would swap in an explicit codec at this same boundary.

Usage (inside the runtime's loop)::

    runtime = AsyncioRuntime()
    net = UdpNetwork(runtime, num_nodes=4)
    runtime.run_task(net.open())     # bind the sockets
    ... build stacks (attach happens in their constructors) ...
    runtime.run_for(duration)
    net.close()
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Iterable, List, Optional, Tuple

from ..errors import NetworkError
from ..runtime.aio import AsyncioRuntime
from ..sim.monitor import Counter
from .base import Endpoint, Network
from .packet import Packet

__all__ = ["UdpNetwork", "UdpEndpoint", "DEFAULT_BASE_PORT"]

#: Default first port; node ``i`` binds ``base_port + i``.
DEFAULT_BASE_PORT = 47310

#: Largest datagram we are willing to send (localhost loopback allows
#: much more than an Ethernet MTU; stay well under typical buffers).
MAX_DATAGRAM = 60_000


class _NodeProtocol(asyncio.DatagramProtocol):
    """Receives datagrams for one node and hands them to the network."""

    def __init__(self, network: "UdpNetwork", node: int) -> None:
        self.network = network
        self.node = node

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.network._on_datagram(self.node, data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.network.stats.incr("socket_errors")


class UdpNetwork(Network):
    """A group of nodes exchanging real UDP datagrams on localhost."""

    def __init__(
        self,
        runtime: AsyncioRuntime,
        num_nodes: int,
        base_port: int = DEFAULT_BASE_PORT,
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__(runtime, num_nodes)
        self.base_port = base_port
        self.host = host
        self.stats = Counter()
        self._transports: List[Optional[asyncio.DatagramTransport]] = [
            None
        ] * num_nodes
        self._open = False
        self._was_open = False
        runtime.on_close(self.close)

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------
    async def open(self) -> None:
        """Bind one UDP socket per node.  Call before traffic flows."""
        if self._open:
            return
        loop = self.runtime.loop
        for node in range(self.num_nodes):
            transport, __ = await loop.create_datagram_endpoint(
                lambda node=node: _NodeProtocol(self, node),
                local_addr=(self.host, self.base_port + node),
            )
            self._transports[node] = transport
        self._open = True
        self._was_open = True

    def close(self) -> None:
        """Close every socket.  Idempotent."""
        for index, transport in enumerate(self._transports):
            if transport is not None:
                transport.close()
                self._transports[index] = None
        self._open = False

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def _encode(self, src: int, dst: int, payload: object) -> bytes:
        data = pickle.dumps((src, dst, payload), protocol=pickle.HIGHEST_PROTOCOL)
        if len(data) > MAX_DATAGRAM:
            raise NetworkError(
                f"payload pickles to {len(data)} B, over the "
                f"{MAX_DATAGRAM} B datagram cap"
            )
        return data

    def _on_datagram(self, node: int, data: bytes) -> None:
        try:
            src, dst, payload = pickle.loads(data)
        except Exception:
            self.stats.incr("undecodable")
            return
        if dst != node:
            self.stats.incr("misrouted")
            return
        self.stats.incr("deliveries")
        if self.obs.enabled:
            self.obs.count("net.packets_delivered")
            self.obs.count("net.bytes_delivered", len(data))
        self._deliver(Packet(src, dst, payload, len(data), self.runtime.now))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _send_copy(self, src: int, dst: int, payload: object, size: int) -> None:
        if not self._open:
            if self._was_open:
                # Stragglers during teardown (retransmit timers, the SP
                # token) are expected; drop them quietly.
                self.stats.incr("send_after_close")
                return
            raise NetworkError("UdpNetwork used before open()")
        transport = self._transports[src]
        if transport is None or transport.is_closing():
            self.stats.incr("send_after_close")
            return
        self.stats.incr("sends")
        data = self._encode(src, dst, payload)
        if self.obs.enabled:
            self.obs.count("net.packets_sent")
            self.obs.count("net.bytes_sent", len(data))
        transport.sendto(data, (self.host, self.base_port + dst))

    def _make_endpoint(self, node: int) -> "UdpEndpoint":
        return UdpEndpoint(self, node)


class UdpEndpoint(Endpoint):
    """Send handle for a node on a :class:`UdpNetwork`."""

    network: UdpNetwork

    def unicast(self, dst: int, payload: object, size_bytes: int) -> None:
        self.network._check_node(dst)
        self.network._send_copy(self.node, dst, payload, size_bytes)

    def multicast(
        self, dsts: Iterable[int], payload: object, size_bytes: int
    ) -> None:
        for dst in dict.fromkeys(dsts):
            self.network._check_node(dst)
            self.network._send_copy(self.node, dst, payload, size_bytes)
