"""Real localhost UDP network for the asyncio runtime.

Every node of a :class:`UdpNetwork` binds its own UDP socket on
``127.0.0.1`` (``base_port + node``), so a "multicast" fans out to one
real datagram per destination and every message genuinely traverses the
kernel's network stack — serialization, copies, socket buffers, and
(under pressure) real drops.  This is the Spectrum/Ring-Paxos-style
deployment shape scaled down to one machine: per-process stacks run as
tasks of one asyncio loop, but the wire between them is real.

Payloads are :class:`~repro.stack.message.Message` objects (and their
layer headers), encoded for the wire by the binary
:class:`~repro.net.codec.WireCodec` (struct-packed framing plus
per-layer header codecs; see ``net/codec.py``).  A multicast encodes
its payload once and reuses the body bytes for every destination —
only the 6-byte frame prefix differs per target.  Pass
``codec=None``-but-``use_pickle=True`` semantics via a custom codec if
an experiment needs the old whole-datagram pickle behaviour.

Usage (inside the runtime's loop)::

    runtime = AsyncioRuntime()
    net = UdpNetwork(runtime, num_nodes=4)
    runtime.run_task(net.open())     # bind the sockets
    ... build stacks (attach happens in their constructors) ...
    runtime.run_for(duration)
    net.close()
"""

from __future__ import annotations

import asyncio
from typing import Iterable, List, Optional, Tuple

from ..errors import NetworkError
from ..obs.bus import Bus
from ..runtime.aio import AsyncioRuntime
from ..sim.monitor import Counter
from ..stack.message import Message
from .base import Endpoint, Network
from .codec import FRAME_OVERHEAD, WireCodec
from .packet import Packet

__all__ = ["UdpNetwork", "UdpEndpoint", "DEFAULT_BASE_PORT"]

#: Default first port; node ``i`` binds ``base_port + i``.
DEFAULT_BASE_PORT = 47310

#: Largest datagram we are willing to send (localhost loopback allows
#: much more than an Ethernet MTU; stay well under typical buffers).
MAX_DATAGRAM = 60_000


class _NodeProtocol(asyncio.DatagramProtocol):
    """Receives datagrams for one node and hands them to the network."""

    def __init__(self, network: "UdpNetwork", node: int) -> None:
        self.network = network
        self.node = node

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.network._on_datagram(self.node, data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.network.stats.incr("socket_errors")


class UdpNetwork(Network):
    """A group of nodes exchanging real UDP datagrams on localhost."""

    def __init__(
        self,
        runtime: AsyncioRuntime,
        num_nodes: int,
        base_port: int = DEFAULT_BASE_PORT,
        host: str = "127.0.0.1",
        codec: Optional[WireCodec] = None,
    ) -> None:
        super().__init__(runtime, num_nodes)
        self.base_port = base_port
        self.host = host
        self.codec = WireCodec() if codec is None else codec
        self.stats = Counter()
        self._transports: List[Optional[asyncio.DatagramTransport]] = [
            None
        ] * num_nodes
        self._open = False
        self._was_open = False
        runtime.on_close(self.close)

    def instrument(self, bus: Bus) -> None:
        super().instrument(bus)
        self.codec.obs = self.obs

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------
    async def open(self) -> None:
        """Bind one UDP socket per node.  Call before traffic flows."""
        if self._open:
            return
        loop = self.runtime.loop
        for node in range(self.num_nodes):
            transport, __ = await loop.create_datagram_endpoint(
                lambda node=node: _NodeProtocol(self, node),
                local_addr=(self.host, self.base_port + node),
            )
            self._transports[node] = transport
        self._open = True
        self._was_open = True

    def close(self) -> None:
        """Close every socket.  Idempotent."""
        for index, transport in enumerate(self._transports):
            if transport is not None:
                transport.close()
                self._transports[index] = None
        self._open = False

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def _encode_body(self, payload: object) -> bytes:
        """Encode ``payload`` once into frame-ready (reusable) bytes."""
        body = self.codec.encode_payload(payload)
        if len(body) + FRAME_OVERHEAD > MAX_DATAGRAM:
            raise NetworkError(
                f"payload encodes to {len(body)} B, over the "
                f"{MAX_DATAGRAM} B datagram cap"
            )
        return body

    def _on_datagram(self, node: int, data: bytes) -> None:
        # Every decoded value owns its storage (the codec slices, never
        # views), so nothing downstream can alias ``data`` after this
        # call returns.
        try:
            group, src, dst, payload = self.codec.decode_datagram(data)
        except Exception:
            self.stats.incr("undecodable")
            return
        if dst != node:
            self.stats.incr("misrouted")
            return
        self.stats.incr("deliveries")
        if self.obs.enabled:
            self.obs.count("net.packets_delivered")
            self.obs.count("net.bytes_delivered", len(data))
        packet = Packet(src, dst, payload, len(data), self.runtime.now, group)
        self._deliver(packet)
        # Delivery completed: the decoded message's one-way trip up the
        # stack is over.  Drop the packet (it holds the last structural
        # reference) and offer the shell back to the pool — the refcount
        # guard inside _recycle leaves it alone if any layer or callback
        # retained it.
        del packet
        if type(payload) is Message:
            Message._recycle(payload)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _sendable(self, src: int) -> Optional[asyncio.DatagramTransport]:
        """The transport for ``src``, or None if sending must be dropped."""
        if not self._open:
            if self._was_open:
                # Stragglers during teardown (retransmit timers, the SP
                # token) are expected; drop them quietly.
                self.stats.incr("send_after_close")
                return None
            raise NetworkError("UdpNetwork used before open()")
        transport = self._transports[src]
        if transport is None or transport.is_closing():
            self.stats.incr("send_after_close")
            return None
        return transport

    def _send_body(
        self, transport, src: int, dst: int, body: bytes, group: int = 0
    ) -> None:
        """Frame pre-encoded ``body`` for ``dst`` and transmit it."""
        self.stats.incr("sends")
        data = self.codec.frame(src, dst, body, group=group)
        if self.obs.enabled:
            self.obs.count("net.packets_sent")
            self.obs.count("net.bytes_sent", len(data))
        transport.sendto(data, (self.host, self.base_port + dst))

    def _send_copy(
        self, src: int, dst: int, payload: object, size: int, group: int = 0
    ) -> None:
        transport = self._sendable(src)
        if transport is not None:
            self._send_body(
                transport, src, dst, self._encode_body(payload), group
            )

    def _make_endpoint(self, node: int) -> "UdpEndpoint":
        return UdpEndpoint(self, node)


class UdpEndpoint(Endpoint):
    """Send handle for a node on a :class:`UdpNetwork`.

    Multicast encodes the payload once and reuses the body bytes across
    the fan-out; the destination set's dedup + validation result is
    cached keyed on the (typically identical from call to call)
    destination tuple, keeping both off the steady-state path.
    """

    network: UdpNetwork

    def __init__(self, network: UdpNetwork, node: int) -> None:
        super().__init__(network, node)
        self._dsts_key: Optional[Tuple[int, ...]] = None
        self._dsts_cached: Tuple[int, ...] = ()

    def unicast(
        self, dst: int, payload: object, size_bytes: int, group: int = 0
    ) -> None:
        self.network._check_node(dst)
        self.network._send_copy(self.node, dst, payload, size_bytes, group)

    def _targets(self, dsts: Iterable[int]) -> Tuple[int, ...]:
        key = tuple(dsts)
        if key != self._dsts_key:
            deduped = tuple(dict.fromkeys(key))
            for dst in deduped:
                self.network._check_node(dst)
            self._dsts_key, self._dsts_cached = key, deduped
        return self._dsts_cached

    def multicast(
        self,
        dsts: Iterable[int],
        payload: object,
        size_bytes: int,
        group: int = 0,
    ) -> None:
        network = self.network
        targets = self._targets(dsts)
        transport = network._sendable(self.node)
        if transport is None or not targets:
            return
        body = network._encode_body(payload)
        for dst in targets:
            self._send_body_checked(network, self.node, dst, body, group)

    def _send_body_checked(self, network, src, dst, body, group=0) -> None:
        # Re-check per destination: a close() can race the fan-out when
        # delivery callbacks tear the network down mid-multicast.
        transport = network._transports[src]
        if transport is None or transport.is_closing():
            network.stats.incr("send_after_close")
            return
        network._send_body(transport, src, dst, body, group)
