"""Network models, simulated and real.

* :mod:`repro.net.ethernet` — shared 10 Mbit medium with host CPU queues,
  the stand-in for the paper's testbed (used by the Figure 2 benchmarks).
* :mod:`repro.net.ptp` — idealized point-to-point mesh with fault
  injection (used by correctness tests).
* :mod:`repro.net.faults` — loss/duplication/reordering/partition plans.
* :mod:`repro.net.udp` — real localhost UDP sockets for the asyncio
  runtime (imported lazily; not re-exported here to keep simulated-only
  imports light).
"""

from .base import Endpoint, Network
from .ethernet import EthernetNetwork, EthernetParams, HostCpu, SharedMedium
from .faults import Crash, FaultDecision, FaultPlan, LinkFaults, Partition
from .packet import BROADCAST, Packet
from .ptp import LatencyMatrix, PointToPointNetwork

__all__ = [
    "Endpoint",
    "Network",
    "EthernetNetwork",
    "EthernetParams",
    "HostCpu",
    "SharedMedium",
    "Crash",
    "FaultDecision",
    "FaultPlan",
    "LinkFaults",
    "Partition",
    "BROADCAST",
    "Packet",
    "LatencyMatrix",
    "PointToPointNetwork",
]
