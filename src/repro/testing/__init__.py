"""Deterministic chaos testing for the switching protocol.

:mod:`repro.testing.chaos` drives a switchable group through a seeded
storm of control-channel faults, crashes and concurrent switch requests,
then checks the §2 oracle properties on what came out the other side.
"""

from .chaos import ChaosConfig, ChaosResult, CrashWindow, run_chaos

__all__ = ["ChaosConfig", "ChaosResult", "CrashWindow", "run_chaos"]
