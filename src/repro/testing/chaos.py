"""Seeded chaos runner for the fault-tolerant switching protocol.

A chaos run is reproducible from its :class:`ChaosConfig` alone: the
workload (casts, switch requests), the perturbations (token loss,
duplication, reordering on the SP control channel, member crashes and
recoveries) and the simulation itself are all derived deterministically
from the config's seed and expressed as a labelled
:class:`~repro.sim.engine.Timeline` — no wall-clock anywhere.

After the run settles, the runner checks the oracle properties the SP is
supposed to keep under faults:

* **Convergence** (completion-or-abort): no member is stuck mid-switch,
  and every live member ends on the same protocol, within bounded
  simulated time.
* **No duplicates**: no member delivers the same message twice.
* **Per-slot order agreement**: two live members that both delivered a
  pair of messages cast on the same (totally ordered) slot delivered
  them in the same order — even across aborts and reverts.
* **Exactly-once** (quiet runs only): with no crashes, no aborts and no
  false suspicions, every cast is delivered exactly once by every
  member.  Faultier runs legitimately leave residue (a crashed member's
  casts die at its interface; an abort can strand early traffic in
  buffers), so there the check is skipped.

Violations are collected, not raised, so tests and the CLI can report
all of them with the seed that reproduces the run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.switchable import ProtocolSpec, SwitchableStack, build_switch_group
from ..core.token_switch import FaultToleranceConfig
from ..errors import SimulationError
from ..net.faults import FaultPlan, Intercept
from ..net.ptp import LatencyMatrix, PointToPointNetwork
from ..obs.bus import Bus
from ..protocols.reliable import ReliableLayer
from ..protocols.sequencer import SequencerLayer
from ..protocols.tokenring import TokenRingLayer
from ..runtime import SimRuntime, Timeline
from ..sim.rng import RandomStreams
from ..stack.membership import Group

__all__ = [
    "ChaosConfig",
    "ChaosResult",
    "CrashWindow",
    "check_slot_order",
    "run_chaos",
    "run_chaos_cell",
]


@dataclass(frozen=True)
class CrashWindow:
    """Crash ``rank`` at ``at``; recover at ``until`` (inf = never)."""

    rank: int
    at: float
    until: float = math.inf

    @property
    def permanent(self) -> bool:
        return math.isinf(self.until)


@dataclass
class ChaosConfig:
    """Everything a chaos run needs, reproducible from the seed.

    Attributes:
        members: group size.
        seed: master seed for workload and fault randomness.
        duration: how long (simulated seconds) workload keeps arriving.
        settle: extra windows of ``settle_window`` seconds granted for
            the group to converge after the workload stops.
        cast_rate: expected application casts per second, group-wide.
        switch_every: interval between switch requests (0 disables).
        control_loss / control_dup / control_jitter: probabilistic
            faults applied to the SP control channel only (mux channel
            0); the data slots keep their own reliable layers.
        crashes: scripted fail-silent crash windows.
        intercept: optional surgical override (e.g. "drop the first
            PREPARE token"); see :data:`repro.net.faults.Intercept`.
        ft: fault-tolerance knobs for the resilient token protocol.
        token_interval: NORMAL-token pacing.
        latency: base one-way network latency.
    """

    members: int = 4
    seed: int = 0
    duration: float = 6.0
    settle: int = 20
    settle_window: float = 1.0
    cast_rate: float = 120.0
    switch_every: float = 0.7
    control_loss: float = 0.0
    control_dup: float = 0.0
    control_jitter: float = 0.0
    crashes: Sequence[CrashWindow] = ()
    intercept: Optional[Intercept] = None
    ft: FaultToleranceConfig = field(default_factory=FaultToleranceConfig)
    token_interval: float = 0.002
    latency: float = 1e-3

    def __post_init__(self) -> None:
        if self.members < 2:
            raise SimulationError("chaos needs at least two members")
        if self.duration <= 0:
            raise SimulationError("chaos duration must be positive")
        live_forever = self.members - sum(
            1 for c in self.crashes if c.permanent
        )
        if live_forever < 2:
            raise SimulationError(
                "chaos must leave at least two members alive"
            )


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    config: ChaosConfig
    violations: List[str]
    final_protocols: Dict[int, str]
    casts: int
    delivered: Dict[int, int]
    switches_completed: int
    switches_aborted: int
    counters: Dict[str, int]
    timeline: List[Tuple[float, str]]
    settle_time: float

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"chaos seed={self.config.seed} members={self.config.members} "
            f"duration={self.config.duration}s "
            f"(settled at t={self.settle_time:.2f}s)",
            f"  casts={self.casts} delivered/member="
            f"{sorted(self.delivered.values())}",
            f"  switches: completed={self.switches_completed} "
            f"aborted={self.switches_aborted}",
            f"  final protocols: {self.final_protocols}",
        ]
        interesting = (
            "regenerated_tokens",
            "hop_retransmits",
            "takeovers",
            "suspected",
            "stale_tokens",
            "duplicate_tokens",
            "late_joins",
            "node_failures",
            "node_recoveries",
            "crash_drops",
            "drops",
            "duplicates",
        )
        recovery = {
            k: self.counters[k] for k in interesting if self.counters.get(k)
        }
        lines.append(f"  recovery counters: {recovery}")
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  oracle: all properties hold")
        return "\n".join(lines)


#: The two subordinate protocols every chaos group switches between.
#: Both deliver in total order, which the per-slot oracle relies on.
PROTOCOL_NAMES = ("seq", "tok")


def _default_specs() -> List[ProtocolSpec]:
    return [
        ProtocolSpec("seq", lambda r: [SequencerLayer(), ReliableLayer()]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer(), ReliableLayer()]),
    ]


def run_chaos(
    config: ChaosConfig, bus: Optional[Bus] = None
) -> ChaosResult:
    """Execute one seeded chaos run and check the oracle properties.

    An enabled ``bus`` records the run's full instrumentation picture —
    switch-phase spans, token retransmit/reroute/regeneration events,
    network drop counters — stamped in deterministic simulated time, so
    a chaos failure can be exported and inspected in Perfetto.
    """
    rng = random.Random(config.seed)
    sim = SimRuntime()
    if bus is not None:
        bus.clock = sim
    streams = RandomStreams(config.seed)
    plan = FaultPlan(
        loss_rate=config.control_loss,
        duplicate_rate=config.control_dup,
        reorder_jitter=config.control_jitter,
        channels=frozenset({0}),
        intercept=config.intercept,
    )
    network = PointToPointNetwork(
        sim,
        config.members,
        latency=LatencyMatrix(config.members, config.latency),
        faults=plan,
        rng=streams,
    )
    if bus is not None:
        network.instrument(bus)
    group = Group.of_size(config.members)
    stacks = build_switch_group(
        sim,
        network,
        group,
        _default_specs(),
        initial=PROTOCOL_NAMES[0],
        variant="token",
        token_interval=config.token_interval,
        # Bare control channel: the FT token machinery must survive raw
        # loss/duplication/reordering on its own.
        control_factory=lambda __: [],
        streams=streams,
        fault_tolerance=config.ft,
        bus=bus,
    )

    # --- observation ---------------------------------------------------
    deliveries: Dict[int, List[tuple]] = {r: [] for r in group}
    for rank, stack in stacks.items():
        stack.on_deliver(
            lambda msg, rank=rank: deliveries[rank].append(msg.mid)
        )
    cast_slot: Dict[tuple, str] = {}  # mid -> slot it was sent on
    aborts: List[tuple] = []
    for rank, stack in stacks.items():
        stack.on_switch_aborted(
            lambda outcome, rank=rank: aborts.append((rank, outcome))
        )

    # --- the scripted timeline -----------------------------------------
    timeline = Timeline()
    crashed_ever = set()
    for crash in config.crashes:
        crashed_ever.add(crash.rank)
        timeline.at(
            crash.at,
            lambda r=crash.rank: network.fail_node(r),
            label=f"crash {crash.rank}",
        )
        if not crash.permanent:
            timeline.at(
                crash.until,
                lambda r=crash.rank: network.recover_node(r),
                label=f"recover {crash.rank}",
            )

    def cast_from(rank: int) -> None:
        if not network.node_alive(rank):
            return  # a dead member generates no load
        stack = stacks[rank]
        slot = stack.core.send_slot
        mid = stack.cast(("chaos", rank, len(cast_slot)))
        cast_slot[mid] = slot

    time = 0.0
    while True:
        time += rng.expovariate(config.cast_rate)
        if time >= config.duration:
            break
        timeline.at(
            time, lambda r=rng.randrange(config.members): cast_from(r),
            label="cast",
        )

    if config.switch_every > 0:
        time, flip = config.switch_every, 1
        while time < config.duration:
            target = PROTOCOL_NAMES[flip % len(PROTOCOL_NAMES)]
            requester = rng.randrange(config.members)
            timeline.at(
                time,
                lambda r=requester, to=target: stacks[r].request_switch(to),
                label=f"switch {requester}->{target}",
            )
            time += config.switch_every
            flip += 1

    timeline.install(sim)

    # --- run, then let the group settle --------------------------------
    sim.run_until(config.duration)
    violations: List[str] = []
    settle_time = config.duration
    for __ in range(config.settle):
        # Run the window first: even a converged group still has casts
        # in flight at the horizon that must land before the oracle runs.
        sim.run_for(config.settle_window)
        settle_time = sim.now
        if _converged(stacks, network):
            break
    else:
        violations.append(
            f"group did not converge within {config.settle} settle windows "
            f"(still switching: "
            f"{[r for r, s in stacks.items() if s.switching]})"
        )

    # --- oracle ---------------------------------------------------------
    live = [
        r
        for r in group
        if r not in {c.rank for c in config.crashes if c.permanent}
    ]
    finals = {r: stacks[r].current_protocol for r in live}
    if len(set(finals.values())) > 1:
        violations.append(f"live members disagree on the protocol: {finals}")

    for rank in live:
        mids = deliveries[rank]
        if len(mids) != len(set(mids)):
            dupes = len(mids) - len(set(mids))
            violations.append(f"member {rank} delivered {dupes} duplicates")

    violations.extend(
        check_slot_order(deliveries, cast_slot, live, PROTOCOL_NAMES)
    )

    suspicions = sum(
        stacks[r].protocol.stats.get("suspected") for r in group
    )
    quiet = not config.crashes and not aborts and suspicions == 0
    if quiet:
        expected = set(cast_slot)
        for rank in live:
            missing = expected - set(deliveries[rank])
            if missing:
                violations.append(
                    f"member {rank} missed {len(missing)} casts in a "
                    f"fault-free-delivery run"
                )

    # --- counters --------------------------------------------------------
    counters: Dict[str, int] = {}
    for stack in stacks.values():
        for source in (stack.protocol.stats, stack.core.stats):
            for key, value in source.as_dict().items():
                counters[key] = counters.get(key, 0) + value
    for key, value in network.stats.as_dict().items():
        counters[key] = counters.get(key, 0) + value

    return ChaosResult(
        config=config,
        violations=violations,
        final_protocols=finals,
        casts=len(cast_slot),
        delivered={r: len(deliveries[r]) for r in live},
        switches_completed=counters.get("globally_complete", 0),
        switches_aborted=len({outcome.switch_id for __, outcome in aborts}),
        counters=counters,
        timeline=list(timeline.fired),
        settle_time=settle_time,
    )


def run_chaos_cell(cell) -> ChaosResult:
    """One chaos run; a picklable sweep worker (see workloads.parallel).

    The cell carries a complete :class:`ChaosConfig` (picklable as long
    as it uses no ``intercept`` callable), and the run derives all of
    its randomness from that config's seed — so fanning chaos configs
    across worker processes returns results value-identical to running
    them serially, in cell order.
    """
    return run_chaos(cell["config"])


def _converged(
    stacks: Dict[int, SwitchableStack], network: PointToPointNetwork
) -> bool:
    live = [r for r in stacks if network.node_alive(r)]
    if any(stacks[r].switching for r in live):
        return False
    return len({stacks[r].current_protocol for r in live}) == 1


def check_slot_order(
    deliveries: Dict[int, List[tuple]],
    cast_slot: Dict[tuple, str],
    live: Sequence[int],
    slots: Sequence[str],
) -> List[str]:
    """Pairwise order agreement, per sending slot.

    Both subordinate protocols are totally ordered, so two members that
    both delivered messages m1 and m2 (cast on the same slot) must agree
    on their relative order — under crashes, aborts and reverts alike.
    Cross-slot interleavings may legitimately differ after an abort.

    Shared by the chaos harness and the ``repro run`` switch demo (the
    latter runs it over real-UDP executions too).
    """
    violations = []
    positions: Dict[int, Dict[str, Dict[tuple, int]]] = {}
    for rank in live:
        per_slot: Dict[str, Dict[tuple, int]] = {}
        for index, mid in enumerate(deliveries[rank]):
            slot = cast_slot.get(mid)
            if slot is not None:
                per_slot.setdefault(slot, {})[mid] = index
        positions[rank] = per_slot
    ranks = list(live)
    for i, a in enumerate(ranks):
        for b in ranks[i + 1 :]:
            for slot in slots:
                pos_a = positions[a].get(slot, {})
                pos_b = positions[b].get(slot, {})
                common = sorted(
                    set(pos_a) & set(pos_b), key=lambda m: pos_a[m]
                )
                order_b = [pos_b[m] for m in common]
                if order_b != sorted(order_b):
                    violations.append(
                        f"members {a} and {b} disagree on slot {slot!r} "
                        f"delivery order"
                    )
    return violations
