"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the library with a single ``except`` clause
while still being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, or running a simulator that
    has already been stopped.
    """


class NetworkError(ReproError):
    """A network model was asked to do something impossible.

    Examples: sending from an unbound address, or to an unknown node.
    """


class StackError(ReproError):
    """A protocol stack was composed or driven incorrectly.

    Examples: pushing a header twice from the same layer, or delivering a
    message through a layer that never saw its header.
    """


class ProtocolError(StackError):
    """A protocol layer received a message that violates its invariants.

    This indicates a bug in a peer layer (or deliberate fault injection),
    e.g. a sequencer delivering out of order or a duplicate sequence number.
    """


class SwitchError(ReproError):
    """The switching protocol reached an inconsistent state.

    Examples: a SWITCH vector naming an unknown member, or a request to
    switch to a protocol slot that was never configured.
    """


class ScenarioError(ReproError):
    """A scenario spec is malformed or cannot run on the chosen runtime.

    Examples: a catalog entry missing required fields, an unknown oracle
    signal, or asking the asyncio runtime to inject simulated faults.
    """


class TraceError(ReproError):
    """A trace is malformed (e.g. duplicate Send events for one message)."""


class VerificationError(ReproError):
    """A meta-property verification run was configured incorrectly."""


class TelemetryError(ReproError):
    """A telemetry plane, SLO target, or exposition endpoint is misconfigured."""


class ShardError(ReproError):
    """A process-sharded fleet run failed at the supervisor layer.

    Examples: a worker reporting a group outside its slice, or a slice
    left uncovered after every worker reported.
    """


class ShardCrashed(ShardError):
    """A shard worker died (or hung) before reporting its results.

    Carries enough structure for the caller to react per shard instead
    of staring at a hung sweep: the shard id, the process exit code
    (``None`` when the worker was still alive, e.g. a timeout), and a
    human-readable detail line.
    """

    def __init__(self, shard: int, exitcode, detail: str) -> None:
        self.shard = shard
        self.exitcode = exitcode
        self.detail = detail
        super().__init__(
            f"fleet shard {shard} failed "
            f"(exitcode={exitcode!r}): {detail}"
        )
