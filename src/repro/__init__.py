"""repro — a reproduction of *Protocol Switching: Exploiting
Meta-Properties* (Liu, van Renesse, Bickford, Kreitz, Constable;
WARGC/ICDCS 2001).

The package provides:

* :mod:`repro.core` — the switching protocol (broadcast and token-ring
  variants), oracles, and the adaptive hybrid;
* :mod:`repro.traces` — the paper's trace theory: Table 1 properties,
  the six meta-properties, and mechanical Table 2 verification;
* :mod:`repro.protocols` — the group-communication protocol suite
  (sequencer/token total order, reliable multicast, security layers,
  virtual synchrony, ...);
* :mod:`repro.stack` — the Horus-style layered composition framework;
* :mod:`repro.runtime` — the runtime boundary: simulated virtual time
  (:class:`SimRuntime`) or a real asyncio/UDP runtime
  (:class:`AsyncioRuntime`);
* :mod:`repro.net` / :mod:`repro.sim` — the network models and the
  discrete-event engine;
* :mod:`repro.workloads` — the §7 performance experiments.
"""

from ._version import __version__
from .core import (
    AdaptiveController,
    GroupHandle,
    HysteresisOracle,
    ManualOracle,
    Oracle,
    ProtocolSpec,
    ScheduledOracle,
    SwitchableStack,
    ThresholdOracle,
    ViewSwitchStack,
    build_group_handle,
    build_switch_group,
)
from .errors import (
    NetworkError,
    ProtocolError,
    ReproError,
    SimulationError,
    StackError,
    SwitchError,
    TraceError,
    VerificationError,
)
from .net import EthernetNetwork, EthernetParams, FaultPlan, PointToPointNetwork
from .runtime import AsyncioRuntime, Runtime, SimRuntime, Simulator
from .sim import RandomStreams
from .stack import Group, Message, ProcessStack, View, build_group
from .traces import Trace, TraceRecorder

__all__ = [
    "__version__",
    "AdaptiveController",
    "GroupHandle",
    "HysteresisOracle",
    "ManualOracle",
    "Oracle",
    "ProtocolSpec",
    "ScheduledOracle",
    "SwitchableStack",
    "ThresholdOracle",
    "ViewSwitchStack",
    "build_group_handle",
    "build_switch_group",
    "NetworkError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "StackError",
    "SwitchError",
    "TraceError",
    "VerificationError",
    "EthernetNetwork",
    "EthernetParams",
    "FaultPlan",
    "PointToPointNetwork",
    "RandomStreams",
    "Runtime",
    "SimRuntime",
    "AsyncioRuntime",
    "Simulator",
    "Group",
    "Message",
    "ProcessStack",
    "View",
    "build_group",
    "Trace",
    "TraceRecorder",
]
