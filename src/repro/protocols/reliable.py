"""NAK-based reliable multicast with stability tracking.

This layer supplies the guarantees the switching protocol assumes of its
underlying protocols (§2): no spurious deliveries, at-most-once, and —
for switch liveness — exactly-once delivery, over a network that may
lose, duplicate, or reorder packets.

Mechanism (one *stream* per (origin, destination-set) pair):

* Data carries a per-stream sequence number; receivers deliver each
  stream in sequence order from a hold-back queue, which yields
  exactly-once, per-stream-FIFO delivery.
* A receiver that observes a gap (a higher sequence than expected, or a
  heartbeat advertising one) NAKs the origin, which retransmits the
  missing messages point-to-point.  NAKs repeat on a timer until the gap
  closes, so repeated losses are survived.
* Origins with unstable (un-acknowledged) messages emit periodic
  heartbeats advertising their top sequence, so a lost *last* message is
  still detected.
* Receivers periodically acknowledge their delivered prefix; an origin
  garbage-collects a message once every receiver in the stream's
  destination set has acknowledged it (stability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ProtocolError
from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message

__all__ = ["ReliableConfig", "ReliableLayer"]

_HEADER = "rel"
_HEADER_SIZE = 10

#: Stream key for full-group multicast.
_GROUP_KEY = "G"

StreamKey = Tuple[int, object]  # (origin rank, destination key)


@dataclass
class ReliableConfig:
    """Timers and limits for the reliable layer.

    Attributes:
        tick_interval: period of the maintenance timer driving NAKs,
            heartbeats, and ACKs.
        nak_batch: max missing sequence numbers requested per NAK.
        control_size: declared wire size of NAK/ACK/heartbeat bodies.
    """

    tick_interval: float = 0.025
    nak_batch: int = 32
    control_size: int = 16

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ProtocolError("tick_interval must be positive")
        if self.nak_batch <= 0:
            raise ProtocolError("nak_batch must be positive")


class _SendStream:
    """Origin-side state for one destination set."""

    __slots__ = ("next_seq", "buffer", "acks", "receivers", "dirty")

    def __init__(self, receivers: Set[int]) -> None:
        self.next_seq = 0
        self.buffer: Dict[int, Message] = {}
        self.acks: Dict[int, int] = {}  # receiver -> delivered prefix (exclusive)
        self.receivers = receivers
        self.dirty = False  # data sent since last heartbeat tick


class _RecvStream:
    """Receiver-side state for one (origin, destination-set) stream."""

    __slots__ = ("expected", "holdback", "known_top", "acked", "last_nak_at")

    def __init__(self) -> None:
        self.expected = 0
        self.holdback: Dict[int, Message] = {}
        self.known_top = -1  # highest sequence known to exist
        self.acked = 0  # prefix we last acknowledged
        self.last_nak_at = -1.0


class ReliableLayer(Layer):
    """Reliable, per-stream-FIFO, exactly-once delivery."""

    name = "rel"

    def __init__(self, config: Optional[ReliableConfig] = None) -> None:
        super().__init__()
        self.config = config or ReliableConfig()
        self._send_streams: Dict[object, _SendStream] = {}
        self._recv_streams: Dict[StreamKey, _RecvStream] = {}
        self.stats = Counter()
        self._ticker = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        self._schedule_tick()

    def stop(self) -> None:
        super().stop()
        ticker, self._ticker = self._ticker, None
        if ticker is not None:
            ticker.cancel()

    def _schedule_tick(self) -> None:
        self._ticker = self.ctx.after(self.config.tick_interval, self._tick)

    # ------------------------------------------------------------------
    # Downward: wrap data with stream sequence numbers
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        dest_key = self._dest_key(msg)
        stream = self._send_streams.get(dest_key)
        if stream is None:
            stream = _SendStream(self._receivers_of(dest_key))
            self._send_streams[dest_key] = stream
        seq = stream.next_seq
        stream.next_seq += 1
        # "src" is the *transmitting* process — distinct from msg.sender
        # when a layer above us forwards another process's message (the
        # sequencer does exactly that).  Streams are per transmitter.
        wrapped = msg.with_header(
            _HEADER,
            {"k": "data", "seq": seq, "dk": dest_key, "src": self.ctx.rank},
            _HEADER_SIZE,
        )
        stream.buffer[seq] = wrapped
        stream.dirty = True
        self.stats.incr("data_sent")
        self.send_down(wrapped)

    def _dest_key(self, msg: Message) -> object:
        if msg.dest is None:
            return _GROUP_KEY
        return tuple(sorted(msg.dest))

    def _receivers_of(self, dest_key: object) -> Set[int]:
        if dest_key == _GROUP_KEY:
            members: Tuple[int, ...] = self.ctx.group.members
        else:
            members = dest_key  # type: ignore[assignment]
        # Loopback delivery is loss-free, so we never need an ACK from self.
        return {m for m in members if m != self.ctx.rank}

    # ------------------------------------------------------------------
    # Upward: dispatch data vs. control
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        header = msg.header(_HEADER)
        if header is None:
            self.deliver_up(msg)
            return
        kind = header["k"]
        if kind == "data":
            self._on_data(msg, header)
        elif kind == "nak":
            self._on_nak(msg)
        elif kind == "ack":
            self._on_ack(msg)
        elif kind == "hb":
            self._on_heartbeat(msg)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown rel control kind {kind!r}")

    def _on_data(self, msg: Message, header: Dict) -> None:
        origin = header["src"]
        seq = header["seq"]
        stream = self._stream(origin, header["dk"])
        stream.known_top = max(stream.known_top, seq)
        if seq < stream.expected or seq in stream.holdback:
            self.stats.incr("duplicates")
            return
        stream.holdback[seq] = msg
        while stream.expected in stream.holdback:
            ready = stream.holdback.pop(stream.expected)
            stream.expected += 1
            self.stats.incr("delivered")
            self.deliver_up(ready.without_header(_HEADER, _HEADER_SIZE))

    def _stream(self, origin: int, dest_key: object) -> _RecvStream:
        key = (origin, dest_key)
        stream = self._recv_streams.get(key)
        if stream is None:
            stream = _RecvStream()
            self._recv_streams[key] = stream
        return stream

    # ------------------------------------------------------------------
    # Control handling
    # ------------------------------------------------------------------
    def _on_nak(self, msg: Message) -> None:
        dest_key, missing = msg.body
        requester = msg.sender
        stream = self._send_streams.get(dest_key)
        if stream is None:
            return
        for seq in missing:
            buffered = stream.buffer.get(seq)
            if buffered is not None:
                self.stats.incr("retransmits")
                self.send_down(buffered.with_dest((requester,)))

    def _on_ack(self, msg: Message) -> None:
        dest_key, prefix = msg.body
        stream = self._send_streams.get(dest_key)
        if stream is None:
            return
        receiver = msg.sender
        stream.acks[receiver] = max(stream.acks.get(receiver, 0), prefix)
        self._collect_garbage(stream)

    def _collect_garbage(self, stream: _SendStream) -> None:
        if not stream.receivers:
            stream.buffer.clear()
            return
        if not stream.receivers.issubset(stream.acks.keys()):
            return
        stable = min(stream.acks[r] for r in stream.receivers)
        for seq in [s for s in stream.buffer if s < stable]:
            del stream.buffer[seq]

    def _on_heartbeat(self, msg: Message) -> None:
        dest_key, top = msg.body
        stream = self._stream(msg.sender, dest_key)
        stream.known_top = max(stream.known_top, top)

    # ------------------------------------------------------------------
    # Maintenance timer
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._started:
            return
        self._nak_gaps()
        self._heartbeat()
        self._acknowledge()
        self._schedule_tick()

    def _nak_gaps(self) -> None:
        for (origin, dest_key), stream in self._recv_streams.items():
            if origin == self.ctx.rank:
                continue
            if stream.known_top < stream.expected:
                continue
            missing = [
                seq
                for seq in range(stream.expected, stream.known_top + 1)
                if seq not in stream.holdback
            ][: self.config.nak_batch]
            if not missing:
                continue
            self.stats.incr("naks_sent")
            self._control("nak", (dest_key, missing), dest=(origin,))

    def _heartbeat(self) -> None:
        for dest_key, stream in self._send_streams.items():
            if not stream.buffer:
                continue
            if stream.dirty:
                # Data flowed since the last tick; it advertises top itself.
                stream.dirty = False
                continue
            dest = None if dest_key == _GROUP_KEY else tuple(stream.receivers)
            if dest is not None and not dest:
                continue
            self.stats.incr("heartbeats")
            self._control("hb", (dest_key, stream.next_seq - 1), dest=dest)

    def _acknowledge(self) -> None:
        for (origin, dest_key), stream in self._recv_streams.items():
            if origin == self.ctx.rank:
                continue
            if stream.expected > stream.acked:
                stream.acked = stream.expected
                self.stats.incr("acks_sent")
                self._control("ack", (dest_key, stream.expected), dest=(origin,))

    def _control(self, kind: str, body: object, dest) -> None:
        msg = self.ctx.make_message(body, self.config.control_size, dest=dest)
        self.send_down(msg.with_header(_HEADER, {"k": kind}, _HEADER_SIZE))

    # ------------------------------------------------------------------
    # Introspection (tests, telemetry)
    # ------------------------------------------------------------------
    @property
    def unstable_messages(self) -> int:
        """Messages we originated that are not yet globally acknowledged."""
        return sum(len(s.buffer) for s in self._send_streams.values())

    @property
    def holdback_size(self) -> int:
        return sum(len(s.holdback) for s in self._recv_streams.values())
