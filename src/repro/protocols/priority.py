"""Prioritized Delivery: the master delivers every message first
(Table 1).

Mechanism: non-master receivers buffer incoming data until the master
multicasts a RELEASE for it; the master delivers immediately and then
releases.  The resulting *global* ordering guarantee (master's Deliver
precedes everyone else's, in real time) is exactly the kind of
cross-process ordering that the Asynchrony meta-property forbids — which
is why the paper singles this property out as not preserved by the
switching protocol (§5.2).

Run above a reliable layer on lossy networks (a lost RELEASE would stall
its message forever on a bare stack).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..errors import ProtocolError
from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message, MessageId

__all__ = ["PrioritizedDeliveryLayer"]

_HEADER = "prio"
_HEADER_SIZE = 6


class PrioritizedDeliveryLayer(Layer):
    """Master-first delivery order.

    Args:
        master: rank of the master process (defaults to the group
            coordinator).
    """

    name = "prio"

    def __init__(self, master: Optional[int] = None) -> None:
        super().__init__()
        self._master_rank = master
        self._waiting: Dict[MessageId, Message] = {}
        self._released: Set[MessageId] = set()
        self.stats = Counter()

    @property
    def master(self) -> int:
        if self._master_rank is not None:
            return self._master_rank
        return self.ctx.group.coordinator

    @property
    def is_master(self) -> bool:
        return self.ctx.rank == self.master

    def send(self, msg: Message) -> None:
        if msg.dest is not None:
            # Control traffic of a layer above: not priority-gated.
            self.stats.incr("passthrough")
            self.send_down(msg)
            return
        self.send_down(msg.with_header(_HEADER, {"k": "data"}, _HEADER_SIZE))

    def receive(self, msg: Message) -> None:
        header = msg.header(_HEADER)
        if header is None:
            self.deliver_up(msg)
            return
        kind = header["k"]
        if kind == "data":
            self._on_data(msg.without_header(_HEADER, _HEADER_SIZE))
        elif kind == "release":
            self._on_release(msg.body)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown prio header kind {kind!r}")

    def _on_data(self, msg: Message) -> None:
        if self.is_master:
            self.stats.incr("master_delivered")
            self.deliver_up(msg)
            release = self.ctx.make_message(
                msg.mid, 12, dest=self.ctx.group.others(self.ctx.rank)
            )
            self.send_down(
                release.with_header(_HEADER, {"k": "release"}, _HEADER_SIZE)
            )
            return
        if msg.mid in self._released:
            self._released.discard(msg.mid)
            self.stats.incr("delivered")
            self.deliver_up(msg)
        else:
            self.stats.incr("buffered")
            self._waiting[msg.mid] = msg

    def _on_release(self, mid: MessageId) -> None:
        if self.is_master:
            return
        waiting = self._waiting.pop(mid, None)
        if waiting is not None:
            self.stats.incr("delivered")
            self.deliver_up(waiting)
        else:
            # RELEASE outran the data (reordering): remember it.
            self._released.add(mid)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)
