"""Sequencer-based total-order multicast.

The first of the two total-order mechanisms evaluated in §7, after
Kaashoek's Amoeba broadcast [8]: messages are sent FIFO to a fixed
*sequencer* process, which assigns a global sequence number and forwards
them by multicast, again FIFO.  Everyone (the original sender included)
delivers in global-sequence order.

Latency is low — basically twice the network latency — but the sequencer
handles every message twice (receive + forward) plus ordering work, so it
saturates first as the number of active senders grows.  That saturation
is the left-hand curve of Figure 2.

``order_cost`` models the sequencer's per-message protocol processing; on
the Ethernet model it queues on the sequencer's host CPU, which is what
produces the rising latency curve.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ProtocolError
from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message

__all__ = ["SequencerLayer"]

_HEADER = "seqr"
_HEADER_SIZE = 8


class SequencerLayer(Layer):
    """Total order via a centralized sequencer.

    Args:
        sequencer: rank of the sequencer process (defaults to the group
            coordinator).
        order_cost: CPU seconds of ordering work per message at the
            sequencer (0 disables the model).
    """

    name = "seqr"

    def __init__(self, sequencer: Optional[int] = None, order_cost: float = 0.0) -> None:
        super().__init__()
        if order_cost < 0:
            raise ProtocolError("order_cost must be non-negative")
        self._sequencer_rank = sequencer
        self.order_cost = order_cost
        self._next_gseq = 0  # sequencer-only: next number to assign
        self._expected = 0  # everyone: next number to deliver
        self._holdback: Dict[int, Message] = {}
        self.stats = Counter()

    # ------------------------------------------------------------------
    @property
    def sequencer(self) -> int:
        if self._sequencer_rank is not None:
            return self._sequencer_rank
        return self.ctx.group.coordinator

    @property
    def is_sequencer(self) -> bool:
        return self.ctx.rank == self.sequencer

    # ------------------------------------------------------------------
    # Downward
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        if msg.dest is not None:
            # Not a group cast: control traffic of a layer above (e.g. a
            # priority RELEASE).  Ordering doesn't apply; pass through.
            self.stats.incr("passthrough")
            self.send_down(msg)
            return
        self.stats.incr("casts")
        if self.is_sequencer:
            self._order(msg)
        else:
            self.send_down(
                msg.with_header(_HEADER, {"k": "raw"}, _HEADER_SIZE).with_dest(
                    (self.sequencer,)
                )
            )

    # ------------------------------------------------------------------
    # Upward
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        header = msg.header(_HEADER)
        if header is None:
            self.deliver_up(msg)
            return
        kind = header["k"]
        if kind == "raw":
            if not self.is_sequencer:
                raise ProtocolError(
                    f"rank {self.ctx.rank}: raw submission but I am not the sequencer"
                )
            self._order(msg.without_header(_HEADER, _HEADER_SIZE))
        elif kind == "ord":
            self._on_ordered(msg, header["gseq"])
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown sequencer header kind {kind!r}")

    # ------------------------------------------------------------------
    # Sequencer-side ordering
    # ------------------------------------------------------------------
    def _order(self, msg: Message) -> None:
        """Queue ordering work, then assign a number and forward."""

        def assign_and_forward() -> None:
            gseq = self._next_gseq
            self._next_gseq += 1
            self.stats.incr("ordered")
            self.send_down(
                msg.with_header(
                    _HEADER, {"k": "ord", "gseq": gseq}, _HEADER_SIZE
                ).with_dest(None)
            )

        self.ctx.cpu_work(self.order_cost, assign_and_forward)

    # ------------------------------------------------------------------
    # Delivery in global order
    # ------------------------------------------------------------------
    def _on_ordered(self, msg: Message, gseq: int) -> None:
        if gseq < self._expected or gseq in self._holdback:
            self.stats.incr("duplicates")
            return
        self._holdback[gseq] = msg
        while self._expected in self._holdback:
            ready = self._holdback.pop(self._expected)
            self._expected += 1
            self.stats.incr("delivered")
            self.deliver_up(ready.without_header(_HEADER, _HEADER_SIZE))

    @property
    def holdback_size(self) -> int:
        return len(self._holdback)
