"""Group-communication protocol layers (the paper's Table 1 properties,
implemented).

Ordering / reliability:

* :class:`FifoLayer` — per-sender FIFO.
* :class:`ReliableLayer` — NAK-based reliable multicast (exactly-once).
* :class:`SequencerLayer` — centralized-sequencer total order [8].
* :class:`TokenRingLayer` — rotating-token total order [4].

Security / delivery policies:

* :class:`IntegrityLayer` — MAC authentication.
* :class:`ConfidentialityLayer` — body encryption.
* :class:`NoReplayLayer` — at-most-once per body.
* :class:`PrioritizedDeliveryLayer` — master-first delivery.
* :class:`AmoebaLayer` — send-blocking while awaiting own messages.
* :class:`VirtualSynchronyLayer` — views + flush.
"""

from .amoeba import AmoebaLayer
from .causal import CausalOrderLayer
from .confidentiality import ConfidentialityLayer
from .delay import DelayLayer
from .crypto import Ciphertext, GroupKey, compute_mac, verify_mac
from .fifo import FifoLayer
from .integrity import IntegrityLayer
from .noreplay import NoReplayLayer, body_digest
from .priority import PrioritizedDeliveryLayer
from .reliable import ReliableConfig, ReliableLayer
from .sequencer import SequencerLayer
from .tokenring import TokenRingLayer
from .virtual_synchrony import VirtualSynchronyLayer, view_message_mid

__all__ = [
    "AmoebaLayer",
    "CausalOrderLayer",
    "ConfidentialityLayer",
    "DelayLayer",
    "Ciphertext",
    "GroupKey",
    "compute_mac",
    "verify_mac",
    "FifoLayer",
    "IntegrityLayer",
    "NoReplayLayer",
    "body_digest",
    "PrioritizedDeliveryLayer",
    "ReliableConfig",
    "ReliableLayer",
    "SequencerLayer",
    "TokenRingLayer",
    "VirtualSynchronyLayer",
    "view_message_mid",
]
