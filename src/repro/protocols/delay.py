"""A pure delay layer — the paper's §4 observation, executable.

"Interestingly, several of the difficulties with the composition are not
because of switching, but because of delays incurred by layering.  These
delays re-organize event traces and can potentially violate properties."

:class:`DelayLayer` adds configurable (optionally jittered) latency to
the downward (send) and upward (deliver) paths, exactly the effect the
Delayable and Asynchrony meta-properties model.  Layering it under a
protocol lets tests and examples demonstrate that non-Delayable or
non-Asynchronous properties break with *no switching involved* — e.g.
Prioritized Delivery loses its cross-process ordering under per-process
delivery jitter, and Amoeba's send restriction is reordered past local
deliveries.

Ordering note: each direction uses a FIFO release queue, so the layer
delays but never *reorders* a single direction's stream (that's what the
fault injector's reorder jitter is for).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import ProtocolError
from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message

__all__ = ["DelayLayer"]


class DelayLayer(Layer):
    """Adds latency to one or both vertical directions.

    Args:
        send_delay: seconds added to the downward path.
        deliver_delay: seconds added to the upward path.
        jitter_stream: name of the RNG stream for uniform extra jitter.
        jitter: max uniform extra seconds per event (both directions).
    """

    name = "delay"

    def __init__(
        self,
        send_delay: float = 0.0,
        deliver_delay: float = 0.0,
        jitter: float = 0.0,
        jitter_stream: str = "delay-jitter",
    ) -> None:
        super().__init__()
        if send_delay < 0 or deliver_delay < 0 or jitter < 0:
            raise ProtocolError("delays must be non-negative")
        self.send_delay = send_delay
        self.deliver_delay = deliver_delay
        self.jitter = jitter
        self.jitter_stream = jitter_stream
        self._down_queue: Deque[Message] = deque()
        self._up_queue: Deque[Message] = deque()
        self.stats = Counter()

    def _delay(self, base: float) -> float:
        if self.jitter:
            rng = self.ctx.streams.stream(self.jitter_stream)
            return base + rng.random() * self.jitter
        return base

    def send(self, msg: Message) -> None:
        delay = self._delay(self.send_delay)
        if delay <= 0:
            self.send_down(msg)
            return
        self.stats.incr("sends_delayed")
        self._down_queue.append(msg)
        self.ctx.after(delay, self._release_down)

    def _release_down(self) -> None:
        self.send_down(self._down_queue.popleft())

    def receive(self, msg: Message) -> None:
        delay = self._delay(self.deliver_delay)
        if delay <= 0:
            self.deliver_up(msg)
            return
        self.stats.incr("delivers_delayed")
        self._up_queue.append(msg)
        self.ctx.after(delay, self._release_up)

    def _release_up(self) -> None:
        self.deliver_up(self._up_queue.popleft())
