"""Virtual Synchrony: views and flush (Table 1).

"A process only delivers messages from processes in some common view."
This layer installs :class:`~repro.stack.membership.View` objects by
*delivering* them to the application (a view message is a Deliver event —
the trace-level evidence the VS property quantifies over), and guarantees
the classic virtually-synchronous contract between views: all members of
a view deliver the same set of data messages between consecutive view
deliveries, and data is delivered in the view it was sent in.

View changes run a flush round (coordinator-driven): FLUSH stops senders,
members report per-view send counts, the coordinator disseminates the
cut, members drain to the cut, and the new view is installed everywhere.
The paper points out (§8) that this flush machinery is itself a
heavier-weight way to switch protocols — one that *does* preserve VS; see
:mod:`repro.core.view_switch`.

``announce`` controls when the *initial* view is delivered:

* ``"start"`` — at layer start (standalone VS stacks).
* ``"first_activity"`` — lazily, just before the first data send or
  delivery.  This is the honest model for a protocol slot sitting idle
  under a switching layer: its view was installed "in history" before the
  application started listening to it.
* ``"never"`` — never delivered; used to exhibit VS violations.

The Memoryless meta-property failure (§6.1) is visible right here: the
VS property's justification lives in *delivered view messages*, and a
protocol switched-to mid-history never re-delivers them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ProtocolError
from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.membership import View
from ..stack.message import Message

__all__ = ["VirtualSynchronyLayer", "view_message_mid"]

_HEADER = "vs"
_HEADER_SIZE = 10


def view_message_mid(view: View, namespace: int = 0) -> Tuple[int, int]:
    """The deterministic message id shared by all deliveries of a view.

    Negative sequence numbers keep view messages out of the id space of
    ordinary messages; ``namespace`` separates distinct VS protocol
    instances living under one switching layer.
    """
    return (view.coordinator, -(1 + view.view_id + namespace * 1_000_000))


class VirtualSynchronyLayer(Layer):
    """Views + flush.  Compose above a reliable FIFO substrate on lossy
    networks; view-change liveness assumes no member crashes mid-flush.

    Args:
        initial_view: the first view (defaults to view 0 over the group).
        announce: when to deliver the initial view ("start",
            "first_activity", or "never").
        namespace: id namespace for this VS instance's view messages.
    """

    name = "vs"

    def __init__(
        self,
        initial_view: Optional[View] = None,
        announce: str = "start",
        namespace: int = 0,
    ) -> None:
        super().__init__()
        if announce not in ("start", "first_activity", "never"):
            raise ProtocolError(f"unknown announce mode {announce!r}")
        self._initial_view = initial_view
        self.announce = announce
        self.namespace = namespace
        self.view: Optional[View] = None  # installed (delivered) view
        self._announced = False
        self._flushing = False
        self._send_queue: Deque[Message] = deque()
        self._sent_in_view = 0
        self._delivered_in_view: Dict[int, int] = {}
        self._early: List[Tuple[Message, int]] = []  # data from a future view
        # Coordinator-side flush state:
        self._flush_target: Optional[View] = None
        self._flush_counts: Dict[int, int] = {}
        self._cut_done: set = set()
        self._cut_sent = False
        # Member-side flush state:
        self._pending_cut: Optional[Dict[int, int]] = None
        self.stats = Counter()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        if self._initial_view is None:
            self._initial_view = View(0, self.ctx.group.members)
        # The view is logically installed (protocol state) immediately;
        # with announce="start" the announcement itself is deferred to
        # simulation time zero so observers attached after stack
        # construction still see it.
        self.view = self._initial_view
        if self.announce == "start":
            self.ctx.after(0.0, self._ensure_announced)

    def _ensure_announced(self) -> None:
        if self._announced or self.announce == "never":
            if not self._announced:
                self._announced = True  # "never": mark to skip re-checks
            return
        self._announce_view(self.view)

    def _announce_view(self, view: View) -> None:
        self._announced = True
        msg = Message(
            sender=view.coordinator,
            mid=view_message_mid(view, self.namespace),
            body=view,
            body_size=8 + 4 * len(view.members),
        )
        self.stats.incr("views_delivered")
        self.deliver_up(msg)

    def _install(self, view: View) -> None:
        self.view = view
        self._sent_in_view = 0
        self._delivered_in_view = {}
        self._flushing = False
        self._pending_cut = None
        self._announced = False
        if self.announce != "first_activity" or view is not self._initial_view:
            self._ensure_announced()
        # Release queued sends (only if we are still a member).
        if self.ctx.rank in view:
            queued, self._send_queue = self._send_queue, deque()
            for msg in queued:
                self.send(msg)
        # Replay data that raced ahead of the view installation.
        early, self._early = self._early, []
        for msg, vid in early:
            self._on_data(msg, vid)

    # ------------------------------------------------------------------
    # Downward
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        if self.view is None:
            raise ProtocolError("VS layer used before start")
        if self.ctx.rank not in self.view:
            raise ProtocolError(
                f"rank {self.ctx.rank} is not a member of view {self.view.view_id}"
            )
        if self._flushing:
            self.stats.incr("queued_during_flush")
            self._send_queue.append(msg)
            return
        self._ensure_announced()
        self._sent_in_view += 1
        self.send_down(
            msg.with_header(
                _HEADER, {"k": "d", "vid": self.view.view_id}, _HEADER_SIZE
            ).with_dest(self.view.members)
        )

    def can_send(self) -> bool:
        return not self._flushing

    # ------------------------------------------------------------------
    # Upward
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        header = msg.header(_HEADER)
        if header is None:
            self.deliver_up(msg)
            return
        kind = header["k"]
        body = msg.body
        if kind == "d":
            self._on_data(msg.without_header(_HEADER, _HEADER_SIZE), header["vid"])
        elif kind == "flush":
            self._on_flush(body)
        elif kind == "flush_ok":
            self._on_flush_ok(msg.sender, body)
        elif kind == "cut":
            self._on_cut(body)
        elif kind == "cut_done":
            self._on_cut_done(msg.sender)
        elif kind == "view":
            self._on_view(body)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown vs header kind {kind!r}")

    def _on_data(self, msg: Message, vid: int) -> None:
        assert self.view is not None
        if vid < self.view.view_id:
            self.stats.incr("late_dropped")
            return
        if vid > self.view.view_id:
            self.stats.incr("early_buffered")
            self._early.append((msg, vid))
            return
        self._ensure_announced()
        self._delivered_in_view[msg.sender] = (
            self._delivered_in_view.get(msg.sender, 0) + 1
        )
        self.stats.incr("delivered")
        self.deliver_up(msg)
        self._maybe_finish_cut()

    # ------------------------------------------------------------------
    # Flush protocol (view change)
    # ------------------------------------------------------------------
    def propose_view(self, members) -> None:
        """Start a view change (coordinator of the current view only)."""
        assert self.view is not None
        if self.ctx.rank != self.view.coordinator:
            raise ProtocolError("only the view coordinator may propose a view")
        if self._flush_target is not None:
            raise ProtocolError("a view change is already in progress")
        target = View(self.view.view_id + 1, tuple(members))
        self._flush_target = target
        self._flush_counts = {}
        self._cut_done = set()
        self._control("flush", target, self.view.members)

    def _on_flush(self, target: View) -> None:
        assert self.view is not None
        self._flushing = True
        self.stats.incr("flushes")
        self._control(
            "flush_ok", self._sent_in_view, (self.view.coordinator,)
        )

    def _on_flush_ok(self, member: int, sent_count: int) -> None:
        assert self.view is not None
        if self._flush_target is None or self._cut_sent:
            return
        self._flush_counts[member] = sent_count
        if set(self._flush_counts) >= set(self.view.members):
            self._cut_sent = True
            self._control("cut", dict(self._flush_counts), self.view.members)

    def _on_cut(self, vector: Dict[int, int]) -> None:
        self._pending_cut = vector
        self._maybe_finish_cut()

    def _maybe_finish_cut(self) -> None:
        if self._pending_cut is None:
            return
        assert self.view is not None
        for member, count in self._pending_cut.items():
            if self._delivered_in_view.get(member, 0) < count:
                return
        self._pending_cut = None
        self._control("cut_done", None, (self.view.coordinator,))

    def _on_cut_done(self, member: int) -> None:
        assert self.view is not None
        if self._flush_target is None:
            return
        self._cut_done.add(member)
        if self._cut_done >= set(self.view.members):
            target, self._flush_target = self._flush_target, None
            self._cut_sent = False
            self._control("view", target, self.view.members)

    def _on_view(self, view: View) -> None:
        self.stats.incr("views_installed")
        self._install(view)

    def _control(self, kind: str, body, dest) -> None:
        msg = self.ctx.make_message(body, 24, dest=tuple(dest))
        self.send_down(msg.with_header(_HEADER, {"k": kind}, _HEADER_SIZE))
