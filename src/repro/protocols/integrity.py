"""Integrity: messages cannot be forged (Table 1).

Every trusted process holds the shared :class:`GroupKey` and tags its
messages with a MAC over (message id, sender, body).  Receivers verify
the tag and silently drop anything that fails — so the layer above only
ever delivers messages genuinely sent by trusted key holders.

A process constructed *without* the key models an untrusted member: it
can still send (its messages carry no valid tag and are dropped by
trusted receivers) and still receives (verification requires the key, so
a key-less receiver drops everything tagged — which is conservative and
keeps the property's contrapositive clean in tests that use
``deliver_unverified=True`` to observe forgeries).
"""

from __future__ import annotations

from typing import Optional

from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message
from .crypto import GroupKey, compute_mac, verify_mac

__all__ = ["IntegrityLayer"]

_HEADER = "mac"
_HEADER_SIZE = 32


class IntegrityLayer(Layer):
    """MAC-based message authentication.

    Args:
        key: the group key; None models an untrusted process.
        deliver_unverified: if True, pass unverifiable messages up instead
            of dropping them (used by tests to *exhibit* forgeries and by
            untrusted receivers that still want traffic).
    """

    name = "mac"

    def __init__(
        self, key: Optional[GroupKey], deliver_unverified: bool = False
    ) -> None:
        super().__init__()
        self.key = key
        self.deliver_unverified = deliver_unverified
        self.stats = Counter()

    def send(self, msg: Message) -> None:
        if self.key is not None:
            tag = compute_mac(self.key, msg.mid, msg.sender, msg.body)
        else:
            tag = None  # untrusted sender cannot produce a valid tag
        self.stats.incr("tagged" if tag else "untagged")
        self.send_down(msg.with_header(_HEADER, tag, _HEADER_SIZE))

    def receive(self, msg: Message) -> None:
        if not msg.has_header(_HEADER):
            self.deliver_up(msg)
            return
        tag = msg.header(_HEADER)
        plain = msg.without_header(_HEADER, _HEADER_SIZE)
        if self.key is not None and verify_mac(
            self.key, tag, plain.mid, plain.sender, plain.body
        ):
            self.stats.incr("verified")
            self.deliver_up(plain)
        elif self.deliver_unverified:
            self.stats.incr("delivered_unverified")
            self.deliver_up(plain)
        else:
            self.stats.incr("rejected")
