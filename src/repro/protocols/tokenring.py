"""Token-ring total-order multicast.

The second total-order mechanism of §7, after Chang–Maxemchuk [4]: a
token carrying the next global sequence number rotates a logical ring of
the group members.  A process that wants to multicast must hold the
token; it stamps its queued messages with consecutive sequence numbers,
multicasts them, and forwards the token.

There is no bottleneck process, but a sender must wait for the token, so
latency under low load is roughly half a rotation — higher than the
sequencer's two network hops.  That flat-ish, initially-higher curve is
the right-hand series of Figure 2, and the crossover between the two is
what makes protocol switching profitable.

Token loss: composed above :class:`~repro.protocols.reliable.ReliableLayer`
the token is a sequenced unicast stream, so the reliable layer's
heartbeat/NAK machinery retransmits a lost token automatically.  For bare
stacks an optional epoch-stamped watchdog lets the coordinator regenerate
the token after prolonged silence; stale-epoch tokens are discarded on
receipt.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..errors import ProtocolError
from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message

__all__ = ["TokenRingLayer"]

_HEADER = "tring"
_HEADER_SIZE = 12

#: Declared wire size of the rotating token.
_TOKEN_SIZE = 64


class TokenRingLayer(Layer):
    """Total order via a rotating sequenced token.

    Args:
        max_burst: maximum messages multicast per token hold (None for
            all queued).
        hold_cost: CPU seconds of token-processing work per hold.
        watchdog_timeout: if positive, the coordinator regenerates the
            token after this much token silence (for loss experiments on
            bare stacks).
    """

    name = "tring"

    def __init__(
        self,
        max_burst: Optional[int] = None,
        hold_cost: float = 0.0,
        watchdog_timeout: float = 0.0,
    ) -> None:
        super().__init__()
        if max_burst is not None and max_burst <= 0:
            raise ProtocolError("max_burst must be positive")
        if hold_cost < 0 or watchdog_timeout < 0:
            raise ProtocolError("costs/timeouts must be non-negative")
        self.max_burst = max_burst
        self.hold_cost = hold_cost
        self.watchdog_timeout = watchdog_timeout
        self._pending: Deque[Message] = deque()
        self._expected = 0
        self._holdback: Dict[int, Message] = {}
        self._last_token_seen = 0.0
        self._epoch = 0  # highest token epoch seen
        self._next_unassigned = 0  # best knowledge of the next free gseq
        self.stats = Counter()

    # ------------------------------------------------------------------
    # Lifecycle: the coordinator injects the token
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        if self.ctx.rank == self.ctx.group.coordinator:
            self.ctx.after(0.0, lambda: self._hold_token(0, 0))
        if self.watchdog_timeout > 0:
            self.ctx.after(self.watchdog_timeout, self._watchdog)

    # ------------------------------------------------------------------
    # Downward: queue until we hold the token
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        if msg.dest is not None:
            # Control traffic of a layer above: no ordering, pass through.
            self.stats.incr("passthrough")
            self.send_down(msg)
            return
        self.stats.incr("casts")
        self._pending.append(msg)

    # ------------------------------------------------------------------
    # Upward
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        header = msg.header(_HEADER)
        if header is None:
            self.deliver_up(msg)
            return
        kind = header["k"]
        if kind == "tok":
            self._on_token(header["gseq"], header["ep"])
        elif kind == "dat":
            self._on_data(msg, header["gseq"])
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown token-ring header kind {kind!r}")

    # ------------------------------------------------------------------
    # Token handling
    # ------------------------------------------------------------------
    def _on_token(self, gseq: int, epoch: int) -> None:
        if not self._started:
            # Torn down: let the token die here instead of re-arming.
            return
        if epoch < self._epoch:
            # Leftover token from before a regeneration: retire it.
            self.stats.incr("stale_tokens")
            return
        self._epoch = epoch
        self._last_token_seen = self.ctx.now
        self.ctx.cpu_work(self.hold_cost, lambda: self._hold_token(gseq, epoch))

    def _hold_token(self, gseq: int, epoch: int) -> None:
        if not self._started:
            return
        self.stats.incr("holds")
        burst = len(self._pending)
        if self.max_burst is not None:
            burst = min(burst, self.max_burst)
        for __ in range(burst):
            msg = self._pending.popleft()
            self.stats.incr("multicasts")
            self.send_down(
                msg.with_header(
                    _HEADER, {"k": "dat", "gseq": gseq}, _HEADER_SIZE
                ).with_dest(None)
            )
            gseq += 1
        self._next_unassigned = max(self._next_unassigned, gseq)
        self._last_token_seen = self.ctx.now
        successor = self.ctx.group.ring_successor(self.ctx.rank)
        if successor == self.ctx.rank:
            # Singleton group: re-circulate via a timer to avoid an
            # unbounded synchronous loop.
            self.ctx.after(1e-4, lambda: self._on_token(gseq, epoch))
            return
        token = self.ctx.make_message(None, _TOKEN_SIZE, dest=(successor,))
        self.send_down(
            token.with_header(
                _HEADER, {"k": "tok", "gseq": gseq, "ep": epoch}, _HEADER_SIZE
            )
        )

    def _watchdog(self) -> None:
        if not self._started:
            return
        silent_for = self.ctx.now - self._last_token_seen
        if (
            silent_for >= self.watchdog_timeout
            and self.ctx.rank == self.ctx.group.coordinator
        ):
            self.stats.incr("regenerations")
            self._epoch += 1
            self._hold_token(self._next_unassigned, self._epoch)
        self.ctx.after(self.watchdog_timeout, self._watchdog)

    # ------------------------------------------------------------------
    # Delivery in global order
    # ------------------------------------------------------------------
    def _on_data(self, msg: Message, gseq: int) -> None:
        self._next_unassigned = max(self._next_unassigned, gseq + 1)
        if gseq < self._expected or gseq in self._holdback:
            self.stats.incr("duplicates")
            return
        self._holdback[gseq] = msg
        while self._expected in self._holdback:
            ready = self._holdback.pop(self._expected)
            self._expected += 1
            self.stats.incr("delivered")
            self.deliver_up(ready.without_header(_HEADER, _HEADER_SIZE))

    @property
    def queued(self) -> int:
        return len(self._pending)
