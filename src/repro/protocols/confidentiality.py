"""Confidentiality: untrusted processes cannot read trusted traffic
(Table 1).

Trusted senders encrypt bodies under the shared :class:`GroupKey`;
receivers holding the key decrypt and deliver the plaintext; receivers
without the key cannot decrypt and drop the message — so an untrusted
process never *delivers* (sees) a message from a trusted process, which
is exactly the trace property.

Key-less senders transmit in the clear, and cleartext is delivered by
everyone: the property restricts trusted→untrusted flow only.
"""

from __future__ import annotations

from typing import Optional

from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message
from .crypto import Ciphertext, GroupKey

__all__ = ["ConfidentialityLayer"]

_HEADER = "conf"
_HEADER_SIZE = 4
#: Cipher framing overhead added to the body, in bytes.
_CIPHER_OVERHEAD = 16


class ConfidentialityLayer(Layer):
    """Body encryption under a shared group key.

    Args:
        key: the group key; None models an untrusted process.
    """

    name = "conf"

    def __init__(self, key: Optional[GroupKey]) -> None:
        super().__init__()
        self.key = key
        self.stats = Counter()

    def send(self, msg: Message) -> None:
        if self.key is None:
            self.stats.incr("sent_clear")
            self.send_down(msg.with_header(_HEADER, "clear", _HEADER_SIZE))
            return
        self.stats.incr("sent_sealed")
        sealed = msg.with_body(
            Ciphertext(self.key, msg.body), msg.body_size + _CIPHER_OVERHEAD
        )
        self.send_down(sealed.with_header(_HEADER, "sealed", _HEADER_SIZE))

    def receive(self, msg: Message) -> None:
        mode = msg.header(_HEADER)
        if mode is None:
            self.deliver_up(msg)
            return
        plain = msg.without_header(_HEADER, _HEADER_SIZE)
        if mode == "clear":
            self.stats.incr("received_clear")
            self.deliver_up(plain)
            return
        body = plain.body
        if isinstance(body, Ciphertext) and body.can_decrypt(self.key):
            self.stats.incr("unsealed")
            self.deliver_up(
                plain.with_body(
                    body.decrypt(self.key),
                    max(0, plain.body_size - _CIPHER_OVERHEAD),
                )
            )
        else:
            # No key (untrusted process): the plaintext stays invisible.
            self.stats.incr("undecryptable")
