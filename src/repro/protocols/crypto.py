"""Toy cryptographic primitives for the security layers.

These are *simulation* primitives: they model the information-flow
consequences of cryptography (who can authenticate, who can read) without
being real cryptography.  The integrity layer needs "only key holders can
produce valid tags"; the confidentiality layer needs "only key holders can
read bodies".  Both reduce to possession of a shared :class:`GroupKey`.

Do not use any of this outside the simulator.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from ..errors import ProtocolError

__all__ = ["GroupKey", "Ciphertext", "compute_mac", "verify_mac"]


class GroupKey:
    """A shared symmetric key identified by name.

    Two :class:`GroupKey` objects authenticate/decrypt each other's output
    iff they were created with the same ``secret``.
    """

    def __init__(self, secret: str) -> None:
        self._secret = secret
        self.key_id = hashlib.sha256(f"kid:{secret}".encode()).hexdigest()[:16]

    def _material(self) -> str:
        return self._secret

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroupKey):
            return NotImplemented
        return self._secret == other._secret

    def __hash__(self) -> int:
        return hash(self.key_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GroupKey id={self.key_id}>"


def compute_mac(key: GroupKey, *fields: Any) -> str:
    """Keyed message-authentication tag over the given fields."""
    hasher = hashlib.sha256()
    hasher.update(key._material().encode("utf-8"))
    for field in fields:
        hasher.update(b"\x00")
        hasher.update(repr(field).encode("utf-8"))
    return hasher.hexdigest()


def verify_mac(key: GroupKey, tag: Optional[str], *fields: Any) -> bool:
    """Check a tag.  ``None`` (missing tag) never verifies."""
    if tag is None:
        return False
    return tag == compute_mac(key, *fields)


class Ciphertext:
    """An opaque encrypted body.

    The plaintext is stored privately and released only to holders of the
    matching key — the simulation equivalent of semantic security.  The
    ``__repr__`` deliberately reveals nothing.
    """

    __slots__ = ("key_id", "_plaintext")

    def __init__(self, key: GroupKey, plaintext: Any) -> None:
        self.key_id = key.key_id
        self._plaintext = plaintext

    def decrypt(self, key: GroupKey) -> Any:
        """Release the plaintext to a holder of the matching key."""
        if key.key_id != self.key_id:
            raise ProtocolError("wrong key for ciphertext")
        return self._plaintext

    def can_decrypt(self, key: Optional[GroupKey]) -> bool:
        """True if ``key`` matches this ciphertext."""
        return key is not None and key.key_id == self.key_id

    def __repr__(self) -> str:
        return f"<Ciphertext key={self.key_id}>"
