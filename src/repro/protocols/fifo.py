"""Per-sender FIFO ordering.

Delivers each sender's messages in the order they were sent, buffering
out-of-order arrivals in a hold-back queue.  Assumes at-most-once delivery
from below (it drops duplicates of already-delivered sequence numbers
defensively, but cannot recover *lost* messages — compose it above
:class:`~repro.protocols.reliable.ReliableLayer` on lossy networks).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message

__all__ = ["FifoLayer"]

_HEADER = "fifo"
_HEADER_SIZE = 4


class FifoLayer(Layer):
    """FIFO order per originating process."""

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._next_out = 0
        self._expected: Dict[int, int] = {}
        self._holdback: Dict[Tuple[int, int], Message] = {}
        self.stats = Counter()

    def send(self, msg: Message) -> None:
        seq = self._next_out
        self._next_out += 1
        self.send_down(msg.with_header(_HEADER, seq, _HEADER_SIZE))

    def receive(self, msg: Message) -> None:
        seq = msg.header(_HEADER)
        if seq is None:
            # Not ours (e.g. another layer's control traffic): pass through.
            self.deliver_up(msg)
            return
        sender = msg.sender
        expected = self._expected.get(sender, 0)
        if seq < expected:
            self.stats.incr("duplicates")
            return
        self._holdback[(sender, seq)] = msg
        self._drain(sender)

    def _drain(self, sender: int) -> None:
        expected = self._expected.get(sender, 0)
        while (sender, expected) in self._holdback:
            msg = self._holdback.pop((sender, expected))
            expected += 1
            self._expected[sender] = expected
            self.deliver_up(msg.without_header(_HEADER, _HEADER_SIZE))

    @property
    def holdback_size(self) -> int:
        return len(self._holdback)
