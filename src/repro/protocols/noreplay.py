"""No Replay: a message body is delivered at most once per process
(Table 1).

The layer remembers a digest of every body it has delivered and drops
repeats.  Note the property is about *bodies*, not message ids — the
paper's §6.2 composability counterexample relies on two distinct messages
carrying the same body, so identity-based dedup (which the reliable layer
already does) would miss the point.

The paper also observes (§6.1) that No Replay is *memoryless but not
stateless*: the property ignores erased history, yet any implementation
must remember delivered bodies — this ``_seen`` set is that state.  And
that is precisely why switching breaks it: the new protocol's instance
starts with an empty ``_seen``.
"""

from __future__ import annotations

from typing import Any, Set

from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message

__all__ = ["NoReplayLayer", "body_digest"]


def body_digest(body: Any) -> Any:
    """A hashable identity for a message body."""
    try:
        hash(body)
        return body
    except TypeError:
        return repr(body)


class NoReplayLayer(Layer):
    """Suppress repeated delivery of the same body."""

    name = "noreplay"

    def __init__(self) -> None:
        super().__init__()
        self._seen: Set[Any] = set()
        self.stats = Counter()

    def receive(self, msg: Message) -> None:
        digest = body_digest(msg.body)
        if digest in self._seen:
            self.stats.incr("replays_suppressed")
            return
        self._seen.add(digest)
        self.stats.incr("delivered")
        self.deliver_up(msg)

    @property
    def seen_count(self) -> int:
        return len(self._seen)
