"""Causal-order multicast (Birman–Schiper–Stephenson style).

Not in the paper's Table 1, but the natural "interesting property" to
audit with its machinery: messages are delivered respecting the
happens-before order of their sends.  Our meta-property analysis (see
``tests/traces/test_causal.py`` and EXPERIMENTS.md) finds Causal Order
satisfies **all six** meta-properties — so the paper's theorem predicts
the switching protocol preserves it, and the live test confirms it.

Mechanism: each message carries a vector timestamp; a receiver delivers
``m`` from ``s`` once it has delivered everything ``m`` causally depends
on — all of ``s``'s earlier messages and everything ``s`` had delivered
when it sent ``m``.  Assumes loss-free (or reliable-layer-backed) group
casts below.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ProtocolError
from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message

__all__ = ["CausalOrderLayer"]

_HEADER = "causal"


class CausalOrderLayer(Layer):
    """Causal delivery order via vector timestamps."""

    name = "causal"

    def __init__(self) -> None:
        super().__init__()
        self._delivered: Dict[int, int] = {}  # sender -> count delivered
        self._sent = 0
        self._pending: List[Tuple[Message, Dict[int, int]]] = []
        self.stats = Counter()

    def _vector_size(self) -> int:
        return 4 * self.ctx.group.size

    def send(self, msg: Message) -> None:
        if msg.dest is not None:
            # Control traffic of a layer above: not causally stamped.
            self.stats.incr("passthrough")
            self.send_down(msg)
            return
        self._sent += 1
        stamp = dict(self._delivered)
        stamp[self.ctx.rank] = self._sent
        self.stats.incr("casts")
        self.send_down(msg.with_header(_HEADER, stamp, self._vector_size()))

    def receive(self, msg: Message) -> None:
        stamp = msg.header(_HEADER)
        if stamp is None:
            self.deliver_up(msg)
            return
        self._pending.append((msg, stamp))
        self._drain()

    def _deliverable(self, sender: int, stamp: Dict[int, int]) -> bool:
        if stamp.get(sender, 0) != self._delivered.get(sender, 0) + 1:
            return False
        for rank, count in stamp.items():
            if rank == sender:
                continue
            if self._delivered.get(rank, 0) < count:
                return False
        return True

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for index, (msg, stamp) in enumerate(self._pending):
                if self._deliverable(msg.sender, stamp):
                    del self._pending[index]
                    self._delivered[msg.sender] = (
                        self._delivered.get(msg.sender, 0) + 1
                    )
                    self.stats.incr("delivered")
                    self.deliver_up(msg.without_header(_HEADER, self._vector_size()))
                    progressed = True
                    break

    @property
    def pending_count(self) -> int:
        return len(self._pending)
