"""The Amoeba send-blocking property (Table 1).

"A process is blocked from sending while it is awaiting its own
messages": after submitting a multicast, a process may not submit another
until its first has come back and been delivered locally.  (In Amoeba [8]
this back-pressure is how senders learn their message was sequenced.)

This layer implements the property by queueing application sends while
one of our own messages is outstanding, releasing the next send when the
outstanding one is delivered to us.

The paper uses Amoeba as the example of a property that is neither
Delayable nor Send Enabled (§5.3–§5.4) — and indeed not preserved by
switching: the switch lets the application keep sending on the new
protocol while an old-protocol message of ours is still in flight.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..sim.monitor import Counter
from ..stack.layer import Layer
from ..stack.message import Message, MessageId

__all__ = ["AmoebaLayer"]


class AmoebaLayer(Layer):
    """Block (queue) sends while awaiting our own previous message."""

    name = "amoeba"

    def __init__(self) -> None:
        super().__init__()
        self._outstanding: Optional[MessageId] = None
        self._queue: Deque[Message] = deque()
        self.stats = Counter()

    def send(self, msg: Message) -> None:
        if self._outstanding is not None:
            self.stats.incr("blocked")
            self._queue.append(msg)
            return
        self._outstanding = msg.mid
        self.stats.incr("sent")
        self.send_down(msg)

    def receive(self, msg: Message) -> None:
        self.deliver_up(msg)
        if msg.sender == self.ctx.rank and msg.mid == self._outstanding:
            self._outstanding = None
            if self._queue:
                nxt = self._queue.popleft()
                self._outstanding = nxt.mid
                self.stats.incr("sent")
                self.send_down(nxt)

    def can_send(self) -> bool:
        """False while one of our own messages is outstanding."""
        return self._outstanding is None

    @property
    def blocked_count(self) -> int:
        return len(self._queue)

    @property
    def awaiting_own(self) -> bool:
        return self._outstanding is not None
