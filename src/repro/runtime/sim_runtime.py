"""The simulated runtime: a :class:`Runtime` over the discrete-event engine.

:class:`SimRuntime` is a thin, zero-overhead-in-spirit adapter — every
call delegates straight to the wrapped :class:`~repro.sim.engine.Simulator`,
so a run through the runtime boundary is *bit-for-bit identical* to a run
against the bare engine (the parity tests in
``tests/integration/test_runtime_parity.py`` pin this down).

It also carries the engine-only extras that experiments legitimately
need — ``run`` with the runaway guard, ``step``, ``events_processed`` —
so callers holding a ``SimRuntime`` never need to import the engine.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..sim.engine import EventHandle, Simulator
from .api import Runtime, TimerHandle

__all__ = ["SimRuntime"]

# The engine's EventHandle is the simulated TimerHandle.
TimerHandle.register(EventHandle)


class SimRuntime(Runtime):
    """Deterministic virtual-time runtime over a :class:`Simulator`.

    Args:
        sim: an existing engine to wrap; a fresh one is created if
            omitted.  Wrapping is the common migration path: code that
            still owns a raw simulator can hand it to layers expecting
            the runtime interface without changing its own run loop.
    """

    name = "sim"

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock / Scheduler
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        return self.sim.schedule(delay, callback)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        return self.sim.schedule_at(time, callback)

    def rearm(
        self,
        handle: TimerHandle,
        delay: float,
        callback: Callable[[], None],
    ) -> EventHandle:
        """Fused cancel + reschedule on the engine's timer wheel.

        Falls back to the portable cancel + schedule when the handle
        already fired (or belongs to another engine) — the semantics
        are identical either way, only the fast path differs.
        """
        sim = self.sim
        if (
            type(handle) is EventHandle
            and not handle._cancelled
            and handle._sim is sim
        ):
            return sim.rearm(handle, delay, callback)
        handle.cancel()
        return sim.schedule(delay, callback)

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def spawn(self, task: Any) -> EventHandle:
        """Run a callable at the current instant (after queued events).

        Coroutines are rejected: simulated components are written as
        callbacks, and silently iterating a coroutine on virtual time
        would break determinism guarantees.
        """
        if not callable(task):
            raise SimulationError(
                f"SimRuntime.spawn needs a zero-argument callable, got "
                f"{type(task).__name__} (coroutines run only on "
                f"AsyncioRuntime)"
            )
        return self.sim.schedule(0.0, task)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> int:
        """Advance ``duration`` simulated seconds; returns events fired."""
        return self.sim.run_for(duration)

    def run_until(self, time: float) -> int:
        """Advance to simulated ``time``; returns events fired."""
        return self.sim.run_until(time)

    def run(
        self,
        max_events: Optional[int] = None,
        until: Optional[float] = None,
    ) -> int:
        """Drain the queue (with the engine's runaway guard available)."""
        return self.sim.run(max_events=max_events, until=until)

    def step(self) -> bool:
        """Fire the single next event (engine passthrough)."""
        return self.sim.step()

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self.sim.events_processed

    def pending(self) -> int:
        return self.sim.pending()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimRuntime {self.sim!r}>"
