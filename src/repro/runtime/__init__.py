"""Runtime boundary: pluggable time, timers, and task execution.

Every layer of the system — protocol stacks, the switching core, network
models, workloads, monitors — programs against :class:`Runtime` and never
against a concrete engine.  Two runtimes ship:

* :class:`SimRuntime` — discrete-event virtual time, deterministic;
* :class:`AsyncioRuntime` — asyncio wall-clock time, real UDP sockets
  (see :mod:`repro.net.udp`).

This package is also the sanctioned home of the engine re-exports
(:class:`Simulator`, :class:`Timeline`): modules outside
``repro/runtime/`` and ``repro/sim/`` must not import the engine
directly (enforced by ``tests/test_runtime_boundary.py``).
"""

from ..errors import SimulationError
from ..sim.engine import EventHandle, Simulator, Timeline
from .aio import AsyncioRuntime, AsyncioTimerHandle
from .api import Clock, Runtime, Scheduler, TimerHandle
from .sim_runtime import SimRuntime

__all__ = [
    "AsyncioRuntime",
    "AsyncioTimerHandle",
    "Clock",
    "EventHandle",
    "Runtime",
    "Scheduler",
    "SimRuntime",
    "Simulator",
    "Timeline",
    "TimerHandle",
    "make_runtime",
]

#: Registry used by the CLI's ``--runtime`` flag.
RUNTIME_NAMES = ("sim", "asyncio")


def make_runtime(name: str) -> Runtime:
    """Instantiate a runtime by its registry name ("sim" or "asyncio")."""
    if name == "sim":
        return SimRuntime()
    if name == "asyncio":
        return AsyncioRuntime()
    raise SimulationError(
        f"unknown runtime {name!r}; known: {', '.join(RUNTIME_NAMES)}"
    )
