"""The real-time runtime: a :class:`Runtime` over an asyncio event loop.

Where :class:`~repro.runtime.sim_runtime.SimRuntime` advances a virtual
clock event by event, :class:`AsyncioRuntime` reads the loop's monotonic
clock (re-based so a fresh runtime starts near ``t=0``, matching the
simulated convention) and arms timers with ``loop.call_later``.  The
entire layered system — stacks, switch protocol, workload generators —
is callback-shaped, so it runs on a real loop unmodified; only the
network underneath changes (:mod:`repro.net.udp` sends real datagrams).

Per-process stacks become tasks of one loop in one OS process.  That is
exactly the right fidelity for the localhost experiments this runtime
exists for: messages really traverse the kernel's UDP stack (serialized,
copied, queued, droppable), while the test harness keeps one-process
observability over every stack.

The runtime owns its loop.  Drive it with :meth:`run_for` /
:meth:`run_until` (synchronous, from outside the loop) or hand a
coroutine to :meth:`run_task`; :meth:`close` releases the loop and any
transports registered via :meth:`on_close`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, List, Optional

from ..errors import SimulationError
from .api import Runtime, TimerHandle

__all__ = ["AsyncioTimerHandle", "AsyncioRuntime"]


class AsyncioTimerHandle(TimerHandle):
    """Wraps an ``asyncio.TimerHandle`` behind the runtime interface."""

    __slots__ = ("_handle", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<AsyncioTimerHandle {state}>"


class AsyncioRuntime(Runtime):
    """Wall-clock runtime on a private asyncio event loop."""

    name = "asyncio"

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.new_event_loop()
        self._epoch = self._loop.time()
        self._stopped = False
        self._closed = False
        self._closers: List[Callable[[], None]] = []

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The underlying event loop (for transports and tasks)."""
        return self._loop

    # ------------------------------------------------------------------
    # Clock / Scheduler
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since this runtime was created (monotonic)."""
        return self._loop.time() - self._epoch

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> AsyncioTimerHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return AsyncioTimerHandle(self._loop.call_later(delay, callback))

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> AsyncioTimerHandle:
        # Unlike virtual time, the wall clock moved while the caller
        # computed `time`; clamp instead of raising so "at now" works.
        return AsyncioTimerHandle(
            self._loop.call_later(max(0.0, time - self.now), callback)
        )

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def spawn(self, task: Any) -> Any:
        """Schedule a callable soon, or a coroutine as an asyncio task."""
        if asyncio.iscoroutine(task):
            return self._loop.create_task(task)
        if callable(task):
            return self._loop.call_soon(task)
        raise SimulationError(
            f"AsyncioRuntime.spawn needs a callable or coroutine, got "
            f"{type(task).__name__}"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> None:
        """Run the loop for ``duration`` wall seconds (synchronous)."""
        self._check_open()
        self._stopped = False

        async def _sleep() -> None:
            try:
                await asyncio.sleep(duration)
            except asyncio.CancelledError:
                pass

        self._run(_sleep())

    def run_until(self, time: float) -> None:
        """Run the loop until the runtime clock reaches ``time``."""
        self.run_for(max(0.0, time - self.now))

    def run_task(self, coro: Awaitable[Any]) -> Any:
        """Run one coroutine to completion and return its result."""
        self._check_open()
        return self._run(coro)

    def _run(self, coro: Awaitable[Any]) -> Any:
        main = self._loop.create_task(
            coro if asyncio.iscoroutine(coro) else _wrap(coro)
        )
        # A stop() from inside a callback cancels the driver task.
        def watch() -> None:
            nonlocal stopper
            if self._stopped and not main.done():
                main.cancel()
            elif not main.done():
                stopper = self._loop.call_later(0.01, watch)

        stopper: Optional[asyncio.TimerHandle] = self._loop.call_later(
            0.01, watch
        )
        try:
            return self._loop.run_until_complete(main)
        except asyncio.CancelledError:
            return None
        finally:
            if stopper is not None:
                stopper.cancel()

    def stop(self) -> None:
        """Make the current ``run_*`` return shortly.  Idempotent."""
        self._stopped = True

    def on_close(self, closer: Callable[[], None]) -> None:
        """Register a resource to tear down in :meth:`close`."""
        self._closers.append(closer)

    def close(self) -> None:
        """Tear down registered resources and the loop.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for closer in reversed(self._closers):
            closer()
        # Let transports flush their close packets before the loop dies.
        pending = [
            t for t in asyncio.all_tasks(self._loop) if not t.done()
        ]
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SimulationError("runtime is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"t={self.now:.3f}"
        return f"<AsyncioRuntime {state}>"


async def _wrap(awaitable: Awaitable[Any]) -> Any:
    return await awaitable
