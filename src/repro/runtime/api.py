"""The runtime boundary: what every layer may assume about time.

The paper's model (§3) defines protocols over abstract Send/Deliver
events; nothing in a protocol layer, network model, workload generator or
monitor should care whether time is simulated or real.  This module pins
that contract down as an interface:

* :class:`Clock` — read the current time (``now``), a monotonic float
  number of seconds with an arbitrary epoch.
* :class:`Scheduler` — arm one-shot timers (``schedule`` /
  ``schedule_at``) returning cancellable :class:`TimerHandle`\\ s.
* :class:`Runtime` — the full runtime: clock + scheduler + task spawning
  (``spawn``) + lifecycle (``run_for`` / ``run_until`` / ``stop``).

Two implementations ship with the library:

* :class:`~repro.runtime.sim_runtime.SimRuntime` wraps the discrete-event
  :class:`~repro.sim.engine.Simulator`; time is virtual and runs are
  bit-for-bit deterministic.
* :class:`~repro.runtime.aio.AsyncioRuntime` wraps an asyncio event
  loop; time is wall-clock and networks send real UDP datagrams
  (:mod:`repro.net.udp`).

**The contract** (see docs/ARCHITECTURE.md for the long form):

1. Layers may read ``now`` and compare/subtract the values they read.
   They may **not** assume a particular epoch, nor that time only
   advances when an event fires.
2. Timers are *one-shot* and fire **at or after** their deadline — with
   equality and FIFO tie-breaking guaranteed only on :class:`SimRuntime`.
   Repeating behaviour is built by re-arming from the callback.
3. Callbacks must be non-blocking and must not recurse into ``run_*``.
4. Two timers armed for the same instant fire in arming order on the
   simulated runtime; real runtimes only promise "close together".
   Protocol correctness must never hinge on same-instant ordering.
5. Everything else — sockets, processes, determinism — belongs to the
   concrete runtime, not to the interface.

The interface is structural on purpose: a bare
:class:`~repro.sim.engine.Simulator` already satisfies ``Clock`` +
``Scheduler`` (same ``now`` / ``schedule`` / ``schedule_at`` surface), so
legacy call sites that still hold a simulator keep working unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

__all__ = ["TimerHandle", "Clock", "Scheduler", "Runtime"]


class TimerHandle(ABC):
    """A cancellable reference to a scheduled timer.

    Mirrors :class:`~repro.sim.engine.EventHandle` (which is the
    simulated implementation of this interface).
    """

    @abstractmethod
    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""

    @property
    @abstractmethod
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""


class Clock(ABC):
    """Read-only time source."""

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic, arbitrary epoch)."""


class Scheduler(Clock):
    """A clock that can also arm one-shot timers."""

    @abstractmethod
    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> TimerHandle:
        """Arm ``callback`` to fire ``delay`` seconds from now."""

    @abstractmethod
    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> TimerHandle:
        """Arm ``callback`` at absolute runtime time ``time``."""

    def rearm(
        self,
        handle: TimerHandle,
        delay: float,
        callback: Callable[[], None],
    ) -> TimerHandle:
        """Cancel ``handle`` and arm ``callback`` ``delay`` seconds from
        now, returning the replacement handle.

        Semantically identical to ``handle.cancel()`` followed by
        :meth:`schedule` — this portable default is exactly that — but
        runtimes with a fused engine path (the simulated runtime's
        timer wheel) override it with an O(1), allocation-free retiming
        of the live entry.  Callers must always rebind to the return
        value; the handle passed in may or may not be reused.
        """
        handle.cancel()
        return self.schedule(delay, callback)


class Runtime(Scheduler):
    """Clock + scheduler + task spawning + lifecycle.

    This is the only time/concurrency surface the layered system is
    allowed to touch; see the module docstring for the contract.
    """

    #: Short stable name ("sim", "asyncio") recorded in benchmark and
    #: experiment artifacts so result trajectories stay comparable.
    name = "abstract"

    @abstractmethod
    def spawn(self, task: Any) -> Any:
        """Run ``task`` concurrently.

        ``task`` is a zero-argument callable (any runtime) or a
        coroutine (asyncio runtime only; the simulated runtime rejects
        coroutines — simulated code is callback-shaped by construction).
        Returns a runtime-specific handle.
        """

    @abstractmethod
    def run_for(self, duration: float) -> None:
        """Drive the runtime ``duration`` seconds forward from now."""

    @abstractmethod
    def run_until(self, time: float) -> None:
        """Drive the runtime until ``now`` reaches absolute ``time``."""

    @abstractmethod
    def stop(self) -> None:
        """Stop driving events; idempotent.  ``run_*`` returns early."""
