"""Process sharding: the multiplexed fleet across CPU cores.

One fleet process multiplexes thousands of groups but saturates one
core.  This module partitions the fleet's group-id space across worker
processes by **consistent hashing** (FNV-1a over the group id, mod
shard count) and runs each slice through the unmodified
:func:`~repro.fleet.runner.run_fleet` engine — every worker owns a full
``Runtime`` + ``GroupManager`` + its slice of the global sequencer
plan, seeded from the *global* group index, so any partition reproduces
exactly the per-group outcomes of the unpartitioned run (see
``run_fleet(indices=...)``).

Workers report results to the supervisor over the fleet's own v2
group-addressed wire frames (:class:`~repro.net.codec.WireCodec`, the
varint-group-id layout every NodePort speaks): one frame per group
report, addressed to that group id, then a group-0 summary frame with
the shard's aggregates and telemetry snapshot.  The transport is a
``multiprocessing`` pipe, but the *framing* is the wire codec — the
same bytes could cross a socket.

The supervisor (:func:`run_fleet_sharded`) spawns workers via ``fork``,
collects frames with crash detection (a dead worker raises a structured
:class:`~repro.errors.ShardCrashed` instead of hanging the sweep),
joins in shard order, and merges the slices into one
:class:`~repro.fleet.runner.FleetResult` — per-shard telemetry planes
roll up through :func:`~repro.obs.telemetry.merge.merge_payloads`.

Scaling economics: each shard simulates its slice in its own process,
so the run's critical path is the *slowest shard's* CPU time instead of
the whole fleet's.  With enough cores, elapsed wall time follows that
critical path; on fewer cores the workers time-slice one another but
the per-shard ``cpu_s`` recorded in ``shard_stats`` still measures the
parallel critical path honestly.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ShardCrashed, ShardError
from ..net.codec import WireCodec
from .runner import FleetConfig, FleetResult, GroupReport, run_fleet

__all__ = [
    "fnv1a32",
    "plan_shards",
    "run_fleet_sharded",
    "shard_of",
]

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193

#: Seconds between liveness polls while waiting on a worker's pipe.
_POLL_S = 0.2


def fnv1a32(value: int) -> int:
    """FNV-1a over the value's 4 little-endian bytes (u32 output)."""
    digest = _FNV_OFFSET
    for byte in int(value).to_bytes(4, "little"):
        digest = ((digest ^ byte) * _FNV_PRIME) & 0xFFFFFFFF
    return digest


def shard_of(group_id: int, shards: int) -> int:
    """The shard hosting ``group_id`` under consistent hashing.

    Pure and layout-free: a group's home shard depends only on its id
    and the shard count, never on fleet size or creation order, so two
    processes (or a supervisor checking a frame's provenance) always
    agree on placement.
    """
    if shards < 1:
        raise ShardError(f"shard count must be >= 1, got {shards}")
    return fnv1a32(group_id) % shards


def plan_shards(config: FleetConfig) -> List[List[int]]:
    """Partition the fleet's group *indices* across the config's shards.

    Returns one sorted index list per shard; group ``index`` carries
    wire id ``index + 1`` (id 0 is the legacy single-group frame), and
    the id — not the index — is what gets hashed.
    """
    shards = config.shards if config.shards > 0 else 1
    plan: List[List[int]] = [[] for __ in range(shards)]
    for index in range(config.groups):
        plan[shard_of(index + 1, shards)].append(index)
    empty = [sid for sid, indices in enumerate(plan) if not indices]
    if empty:
        raise ShardError(
            f"shard plan leaves shards {empty} empty: {config.groups} "
            f"groups cannot feed {shards} shards under this hash"
        )
    return plan


def _shard_worker(
    conn, shard_id: int, config: FleetConfig, indices: List[int]
) -> None:
    """Worker body: run one slice, stream frames back, close, exit.

    Runs in a forked child.  All output rides v2 wire frames: one per
    group report (addressed to that group's id), then a group-0 summary
    carrying the shard's aggregates, resource usage, and telemetry
    payload.  A failure sends a group-0 ``shard_error`` frame before
    exiting nonzero, so the supervisor reports the worker's own
    traceback head instead of a bare exit code.
    """
    codec = WireCodec()
    try:
        cpu_start = time.process_time()
        wall_start = time.perf_counter()
        result = run_fleet(config, indices=indices)
        cpu_s = time.process_time() - cpu_start
        wall_s = time.perf_counter() - wall_start
        for report in result.per_group:
            conn.send_bytes(
                codec.encode(
                    shard_id, 0, report.as_dict(), group=report.group_id
                )
            )
        summary: Dict[str, Any] = {
            "kind": "shard_summary",
            "shard": shard_id,
            "groups": len(result.per_group),
            "casts": result.casts,
            "delivered": result.delivered,
            "hot_groups": result.hot_groups,
            "hot_switched": result.hot_switched,
            "cold_switched": result.cold_switched,
            "stray_by_node": result.stray_by_node,
            "pool_loads": result.pool_loads,
            "violations": result.violations,
            "cpu_s": cpu_s,
            "wall_s": wall_s,
            "telemetry": result.telemetry,
        }
        conn.send_bytes(codec.encode(shard_id, 0, summary))
    except BaseException as exc:  # noqa: BLE001 - forwarded, then fatal
        try:
            conn.send_bytes(
                codec.encode(
                    shard_id,
                    0,
                    {
                        "kind": "shard_error",
                        "shard": shard_id,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
            )
        except Exception:
            pass
        conn.close()
        raise SystemExit(1)
    conn.close()


def _collect_shard(
    conn,
    process,
    shard_id: int,
    expected: set,
    codec: WireCodec,
    deadline: float,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Drain one worker's pipe until its summary frame (or its death)."""
    reports: List[Dict[str, Any]] = []
    while True:
        while not conn.poll(_POLL_S):
            if time.monotonic() > deadline:
                process.terminate()
                raise ShardCrashed(
                    shard_id, None, "timed out waiting for results"
                )
            if not process.is_alive() and not conn.poll(0):
                raise ShardCrashed(
                    shard_id, process.exitcode, "worker died before reporting"
                )
        try:
            data = conn.recv_bytes()
        except EOFError:
            raise ShardCrashed(
                shard_id, process.exitcode, "pipe closed before summary"
            )
        group, src, __, payload = codec.decode_datagram(data)
        if src != shard_id:
            raise ShardError(
                f"frame from worker {src} on shard {shard_id}'s pipe"
            )
        if group == 0:
            if payload.get("kind") == "shard_error":
                raise ShardCrashed(shard_id, 1, payload.get("error", "?"))
            if payload.get("kind") != "shard_summary":
                raise ShardError(
                    f"shard {shard_id} sent unknown control frame "
                    f"{payload.get('kind')!r}"
                )
            missing = expected - {r["group_id"] for r in reports}
            if missing:
                raise ShardError(
                    f"shard {shard_id} summary arrived with "
                    f"{len(missing)} groups unreported "
                    f"(e.g. {min(missing)})"
                )
            return reports, payload
        if group not in expected:
            raise ShardError(
                f"group {group} landed on shard {shard_id}: outside its "
                f"hash slice"
            )
        reports.append(payload)


def run_fleet_sharded(
    config: FleetConfig, timeout: Optional[float] = None
) -> FleetResult:
    """Run the fleet partitioned across ``config.shards`` processes.

    ``timeout`` bounds the wait for any single shard's results (wall
    seconds); ``None`` derives a generous bound from the configured
    duration.  Group outcomes are identical to the in-process run —
    only ``shards``/``shard_stats`` and the wall economics differ.
    """
    if config.shards < 1:
        raise ShardError("run_fleet_sharded needs config.shards >= 1")
    if timeout is None:
        timeout = max(60.0, (config.duration + config.settle) * 20.0)
    plan = plan_shards(config)
    codec = WireCodec()
    ctx = multiprocessing.get_context("fork")

    workers = []
    for shard_id, indices in enumerate(plan):
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_shard_worker,
            args=(send, shard_id, config, indices),
            name=f"fleet-shard-{shard_id}",
        )
        process.start()
        send.close()  # child's end; keeping it open would mask EOF
        workers.append((process, recv, indices))

    wall_start = time.perf_counter()
    reports: List[Dict[str, Any]] = []
    summaries: List[Dict[str, Any]] = []
    try:
        deadline = time.monotonic() + timeout
        for shard_id, (process, recv, indices) in enumerate(workers):
            expected = {index + 1 for index in indices}
            shard_reports, summary = _collect_shard(
                recv, process, shard_id, expected, codec, deadline
            )
            reports.extend(shard_reports)
            summaries.append(summary)
    finally:
        # Ordered shutdown, shard order: join the reported, terminate
        # the stuck, close every pipe.
        for process, recv, __ in workers:
            if process.is_alive():
                process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            recv.close()
    wall_s = time.perf_counter() - wall_start

    return _merge(config, reports, summaries, wall_s)


def _merge(
    config: FleetConfig,
    reports: List[Dict[str, Any]],
    summaries: List[Dict[str, Any]],
    wall_s: float,
) -> FleetResult:
    """Fold per-shard slices into the one-process result shape."""
    per_group = [
        GroupReport(**report)
        for report in sorted(reports, key=lambda r: r["group_id"])
    ]
    violations: List[str] = []
    stray_by_node: Dict[int, int] = {}
    pool_loads: Dict[int, int] = {}
    shard_stats: List[Dict[str, Any]] = []
    for summary in summaries:
        sid = summary["shard"]
        violations.extend(
            f"shard {sid}: {violation}"
            for violation in summary.get("violations", [])
        )
        for node, count in (summary.get("stray_by_node") or {}).items():
            node = int(node)
            stray_by_node[node] = stray_by_node.get(node, 0) + count
        for rank, load in (summary.get("pool_loads") or {}).items():
            rank = int(rank)
            pool_loads[rank] = pool_loads.get(rank, 0) + load
        shard_stats.append(
            {
                "shard": sid,
                "groups": summary["groups"],
                "casts": summary["casts"],
                "delivered": summary["delivered"],
                "cpu_s": summary["cpu_s"],
                "wall_s": summary["wall_s"],
            }
        )

    telemetry: Optional[Dict[str, Any]] = None
    if config.telemetry:
        from ..obs.telemetry.merge import merge_payloads

        payloads = [
            summary["telemetry"]
            for summary in summaries
            if summary.get("telemetry") is not None
        ]
        if payloads:
            telemetry = merge_payloads(
                payloads,
                sources=[f"shard{summary['shard']}" for summary in summaries],
            )

    delivered = sum(summary["delivered"] for summary in summaries)
    return FleetResult(
        runtime="sim",
        groups=config.groups,
        clients=config.clients,
        duration=config.duration,
        casts=sum(summary["casts"] for summary in summaries),
        delivered=delivered,
        msgs_per_s=delivered / config.duration,
        hot_groups=sum(summary["hot_groups"] for summary in summaries),
        hot_switched=sum(summary["hot_switched"] for summary in summaries),
        cold_switched=sum(summary["cold_switched"] for summary in summaries),
        stray_packets=sum(stray_by_node.values()),
        per_group=per_group,
        violations=violations,
        stray_by_node=dict(sorted(stray_by_node.items())),
        pool_loads=dict(sorted(pool_loads.items())),
        telemetry=telemetry,
        shards=config.shards,
        shard_stats=shard_stats,
    )
