"""SequencerPool: spread sequencer duty across the fleet's nodes.

With one group, the sequencer defaults to the coordinator and that is
that.  With a thousand groups laid out over a few dozen nodes, letting
every group default the same way pins the ordering work of every group
sharing a coordinator onto one rank.  The pool balances it: each group
asks for a sequencer from among its members, and the pool picks the
member currently carrying the fewest assignments (ties broken by lowest
rank, so the choice is deterministic).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..errors import StackError

__all__ = ["SequencerPool"]


class SequencerPool:
    """Tracks sequencer assignments per node; hands out the least-loaded."""

    def __init__(self) -> None:
        self._load: Dict[int, int] = {}

    def assign(self, members: Sequence[int]) -> int:
        """Pick (and record) the least-loaded member as sequencer."""
        if not members:
            raise StackError("cannot assign a sequencer for an empty group")
        chosen = min(members, key=lambda rank: (self._load.get(rank, 0), rank))
        self._load[chosen] = self._load.get(chosen, 0) + 1
        return chosen

    def occupy(self, rank: int) -> int:
        """Record one assignment on a pre-planned ``rank``.

        A sharded fleet plans sequencer placement globally (the same
        pool walk every shard replays — see
        :func:`repro.fleet.sharding.plan_sequencers`) and each shard
        then records only its own groups' assignments, so merged
        per-shard loads sum to the global plan.
        """
        self._load[rank] = self._load.get(rank, 0) + 1
        return rank

    def release(self, rank: int) -> None:
        """Return one assignment held by ``rank`` (group teardown)."""
        current = self._load.get(rank, 0)
        if current <= 0:
            raise StackError(f"rank {rank} holds no sequencer assignments")
        self._load[rank] = current - 1

    def load_of(self, rank: int) -> int:
        """Assignments currently held by ``rank``."""
        return self._load.get(rank, 0)

    @property
    def loads(self) -> Dict[int, int]:
        """Snapshot of non-zero per-node assignment counts."""
        return {rank: n for rank, n in self._load.items() if n > 0}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SequencerPool assignments={sum(self._load.values())}>"
