"""The fleet runtime: thousands of switching groups in one process.

A single-group run owns one transport, one multiplexer, and one stack
per member.  The fleet runtime multiplexes *groups*: every node runs one
:class:`~repro.fleet.port.NodePort` (one network attach, one
group-keyed multiplexer), and a :class:`~repro.fleet.manager.GroupManager`
builds/starts/tears down :class:`~repro.core.switchable.GroupHandle`\\ s
over those shared ports.  Wire frames carry a varint group id (see
``net/codec.py``), so thousands of groups share one set of sockets.

The :class:`~repro.core.oracle.FleetOracle` closes the loop: it reads
per-group delivery rates off the shared obs bus (group-labelled
``fleet.delivered[g<id>]`` counters) and escalates hot groups —
sequencer to token ring — without touching cold ones.

One process still caps out at one core; ``repro.fleet.sharding``
partitions the group-id space across worker processes by consistent
hashing and merges their slices back into one
:class:`~repro.fleet.runner.FleetResult`.
"""

from .manager import GroupManager
from .pool import SequencerPool
from .port import NodePort
from .runner import (
    FleetConfig,
    FleetResult,
    GroupReport,
    plan_sequencers,
    run_fleet,
)
from .sharding import plan_shards, run_fleet_sharded, shard_of

__all__ = [
    "FleetConfig",
    "FleetResult",
    "GroupManager",
    "GroupReport",
    "NodePort",
    "SequencerPool",
    "plan_sequencers",
    "plan_shards",
    "run_fleet",
    "run_fleet_sharded",
    "shard_of",
]
