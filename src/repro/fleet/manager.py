"""GroupManager: the fleet's control plane.

One manager per process.  It owns the per-node :class:`NodePort`\\ s
(creating each lazily on a group's first use of that node), allocates
group ids, builds :class:`~repro.core.switchable.GroupHandle`\\ s over
the shared ports, and walks groups through their lifecycle.  Wired with
a :class:`~repro.core.oracle.FleetOracle` it also runs the adaptive
loop: a repeating poll asks the oracle for per-group decisions and
forwards each one to the group's coordinator as a switch request.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..core.oracle import FleetOracle
from ..core.switchable import GroupHandle, ProtocolSpec, build_group_handle
from ..errors import SwitchError
from ..net.base import Network
from ..obs.bus import Bus
from ..runtime.api import Runtime
from ..sim.monitor import Counter
from ..sim.rng import RandomStreams
from ..stack.layer import Layer
from ..stack.membership import Group
from .pool import SequencerPool
from .port import NodePort

__all__ = ["GroupManager"]


class GroupManager:
    """Creates, drives, and tears down switching groups over shared ports.

    Args:
        runtime: the shared clock/timer runtime.
        network: the shared network model (every group's traffic rides it).
        bus: instrumentation bus handed to every stack (optional).
        oracle: a :class:`FleetOracle` polled for per-group decisions
            (optional; groups are watched on creation, unwatched on
            teardown).
    """

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        bus: Optional[Bus] = None,
        oracle: Optional[FleetOracle] = None,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.bus = bus
        self.oracle = oracle
        self.ports: Dict[int, NodePort] = {}
        self.handles: Dict[int, GroupHandle] = {}
        self.pool = SequencerPool()
        self.stats = Counter()
        self._next_group_id = 1
        self._sequencers: Dict[int, int] = {}  # group id -> assigned rank
        self._polling = False
        self._poll_timer = None
        self._torn_down: set = set()
        self._teardown_callbacks: list = []

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def port(self, node: int) -> NodePort:
        """The shared port for ``node``, attached on first use."""
        port = self.ports.get(node)
        if port is None:
            port = NodePort(self.network, node)
            self.ports[node] = port
        return port

    # ------------------------------------------------------------------
    # Group lifecycle
    # ------------------------------------------------------------------
    def create_group(
        self,
        members: Sequence[int],
        protocols: Sequence[ProtocolSpec],
        initial: str,
        variant: str = "token",
        token_interval: float = 0.010,
        control_factory: Optional[Callable[[int], Sequence[Layer]]] = None,
        streams: Optional[RandomStreams] = None,
        auto_start: bool = True,
        group_id: Optional[int] = None,
    ) -> GroupHandle:
        """Build (and by default start) one switching group.

        Allocates the next group id (or takes an explicit ``group_id`` —
        a shard owns a slice of the fleet's global id space and must
        keep the ids the single-process layout would have used),
        registers the membership on every member node's port, and builds
        the handle over those ports.  The oracle, if any, begins
        watching the group immediately.
        """
        if group_id is None:
            group_id = self._next_group_id
        elif group_id < 1:
            raise SwitchError(f"explicit group id {group_id} must be >= 1")
        elif group_id in self.handles:
            raise SwitchError(f"group id {group_id} is already in use")
        self._next_group_id = max(self._next_group_id, group_id + 1)
        group = Group(members)
        ports = {rank: self.port(rank) for rank in group}
        for port in ports.values():
            port.register(group_id, group)
        handle = build_group_handle(
            self.runtime,
            self.network,
            group,
            protocols,
            initial,
            variant=variant,
            token_interval=token_interval,
            control_factory=control_factory,
            streams=streams or RandomStreams(group_id),
            bus=self.bus,
            group_id=group_id,
            ports=ports,
            auto_start=auto_start,
        )
        self.handles[group_id] = handle
        if self.oracle is not None:
            self.oracle.watch(group_id)
        self.stats.incr("groups_created")
        return handle

    def assign_sequencer(
        self,
        members: Sequence[int],
        rank: Optional[int] = None,
        group_id: Optional[int] = None,
    ) -> int:
        """Pool-balanced sequencer choice for a group about to be built.

        Call before :meth:`create_group` so the chosen rank can be baked
        into the group's sequencer :class:`ProtocolSpec`; the assignment
        is released automatically when the group (created next) is torn
        down.  A pre-planned ``rank`` (a shard replaying the global
        placement plan) is recorded as-is; ``group_id`` must match the
        explicit id the group will be created with, when one is used.
        """
        if rank is None:
            chosen = self.pool.assign(members)
        else:
            if rank not in members:
                raise SwitchError(
                    f"planned sequencer {rank} is not among members "
                    f"{sorted(members)}"
                )
            chosen = self.pool.occupy(rank)
        key = self._next_group_id if group_id is None else group_id
        self._sequencers[key] = chosen
        return chosen

    def on_teardown(self, callback: Callable[[int, bool], None]) -> None:
        """``callback(group_id, dirty)`` fires after every teardown.

        ``dirty`` is True when the group was still STARTED — it never
        drained, so in-flight traffic died with it.  The telemetry
        plane's flight recorder freezes a black box on dirty teardowns.
        """
        self._teardown_callbacks.append(callback)

    def teardown_group(self, group_id: int) -> bool:
        """Unregister, stop, and release one group.

        Idempotent: tearing down an already-torn-down group is a no-op
        returning ``False`` (shard restarts sweep their whole slice
        without tracking which groups a previous pass already released);
        a group id this manager never created still raises.  Returns
        ``True`` when this call performed the teardown.
        """
        handle = self.handles.pop(group_id, None)
        if handle is None:
            if group_id in self._torn_down:
                return False
            raise SwitchError(f"no group {group_id} to tear down")
        self._torn_down.add(group_id)
        dirty = handle.state == "started"
        # Unregister first: packets in flight during the teardown then
        # drop as strays at the port instead of hitting dead channels.
        for rank in handle.group:
            self.ports[rank].unregister(group_id)
        handle.teardown()
        if self.oracle is not None:
            self.oracle.unwatch(group_id)
        sequencer = self._sequencers.pop(group_id, None)
        if sequencer is not None:
            self.pool.release(sequencer)
        self.stats.incr("groups_torn_down")
        for callback in self._teardown_callbacks:
            callback(group_id, dirty)
        return True

    # ------------------------------------------------------------------
    # The adaptive loop
    # ------------------------------------------------------------------
    def poll_oracle(self) -> Dict[int, str]:
        """One oracle pass: ask for decisions, forward each as a switch
        request at the group's coordinator.  Returns the decisions."""
        if self.oracle is None:
            raise SwitchError("no fleet oracle wired into this manager")
        currents = {
            group_id: handle.stacks[handle.group.coordinator].current_protocol
            for group_id, handle in self.handles.items()
            if handle.state == "started"
        }
        decisions = self.oracle.decide_all(self.runtime.now, currents)
        for group_id, target in decisions.items():
            self.handles[group_id].request_switch(target)
            self.stats.incr("oracle_switches")
        return decisions

    def start_oracle_polling(self, interval: float) -> None:
        """Poll the oracle every ``interval`` seconds until stopped.

        Restart-safe: calling again (a shard restart re-arming its
        control loop) cancels the previous chain's pending timer first,
        so exactly one poll chain is ever live — repeated start/stop
        cycles leave no orphaned timers behind.
        """
        if interval <= 0:
            raise SwitchError("poll interval must be positive")
        self.stop_oracle_polling()
        self._polling = True

        def tick() -> None:
            self._poll_timer = None
            if not self._polling:
                return
            self.poll_oracle()
            self._poll_timer = self.runtime.schedule(interval, tick)

        self._poll_timer = self.runtime.schedule(interval, tick)

    def stop_oracle_polling(self) -> None:
        """Stop the poll chain (idempotent) and cancel its armed timer."""
        self._polling = False
        if self._poll_timer is not None:
            self._poll_timer.cancel()
            self._poll_timer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GroupManager groups={len(self.handles)} "
            f"nodes={len(self.ports)}>"
        )
