"""NodePort: one node's shared doorway onto the network.

A pre-fleet stack owns its transport — one ``network.attach`` per stack.
That caps a process at one group per node.  The fleet runtime instead
attaches each node once: a :class:`NodePort` owns the node's endpoint
and a single group-keyed :class:`~repro.stack.multiplex.Multiplexer`,
and every group with a member on this node mounts its private channels
on that shared mux.

Downward, the port resolves a message's destination set against the
*sending group's* membership (group memberships differ — the whole
point) and stamps the group id onto the endpoint call, so the wire
frame carries it.  Upward, it routes each packet by its group id to the
mux, dropping packets for unregistered groups (`stray_group`) — the
benign race of a teardown with in-flight traffic.
"""

from __future__ import annotations

from typing import Dict

from ..errors import StackError
from ..net.base import Network
from ..net.packet import Packet
from ..sim.monitor import Counter
from ..stack.membership import Group
from ..stack.message import Message
from ..stack.multiplex import Multiplexer

__all__ = ["NodePort"]


class NodePort:
    """One network attach shared by every group with a member on a node."""

    def __init__(self, network: Network, node: int) -> None:
        self.network = network
        self.node = node
        self.stats = Counter()
        self._groups: Dict[int, Group] = {}
        self.endpoint = network.attach(node, self._on_packet)
        self.mux = Multiplexer(self._bottom_send)

    # ------------------------------------------------------------------
    # Group registry
    # ------------------------------------------------------------------
    def register(self, group_id: int, group: Group) -> None:
        """Route traffic for ``group_id`` through this port."""
        if group_id in self._groups:
            raise StackError(f"group {group_id} already registered on node {self.node}")
        if self.node not in group:
            raise StackError(
                f"node {self.node} is not a member of group {group_id} "
                f"({group!r})"
            )
        self._groups[group_id] = group

    def unregister(self, group_id: int) -> None:
        """Stop routing for ``group_id``; later packets become strays."""
        if self._groups.pop(group_id, None) is None:
            raise StackError(f"group {group_id} is not registered on node {self.node}")

    @property
    def groups(self) -> Dict[int, Group]:
        return dict(self._groups)

    # ------------------------------------------------------------------
    # Downward: mux bottom -> endpoint, group membership resolved here
    # ------------------------------------------------------------------
    def _bottom_send(self, msg: Message, group: int = 0) -> None:
        membership = self._groups.get(group)
        if membership is None:
            raise StackError(
                f"node {self.node} sending for unregistered group {group}"
            )
        size = msg.size_bytes
        if msg.dest is None:
            self.stats.incr("multicast")
            self.endpoint.multicast(membership.members, msg, size, group=group)
        elif len(msg.dest) == 1:
            self.stats.incr("unicast")
            self.endpoint.unicast(msg.dest[0], msg, size, group=group)
        elif msg.dest:
            self.stats.incr("multicast")
            self.endpoint.multicast(msg.dest, msg, size, group=group)
        else:
            self.stats.incr("empty_dest")

    # ------------------------------------------------------------------
    # Upward: packet -> mux, routed by the wire group id
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if packet.group not in self._groups:
            # Teardown race: the group left this port while the packet
            # was in flight.  Dropping is the correct behaviour.
            self.stats.incr("stray_group")
            return
        payload = packet.payload
        if not isinstance(payload, Message):
            raise StackError(f"non-message payload on the wire: {payload!r}")
        self.stats.incr("received")
        self.mux.receive(payload, group=packet.group)

    def detach(self) -> None:
        """Release the network node (only once every group is gone)."""
        if self._groups:
            raise StackError(
                f"node {self.node} still hosts groups {sorted(self._groups)}"
            )
        self.network.detach(self.node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NodePort node={self.node} groups={len(self._groups)}>"
