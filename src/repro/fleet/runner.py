"""The fleet sweep: thousands of groups, one process, one artifact.

``run_fleet`` drives a whole fleet through one run: it lays groups out
over a fixed set of nodes (members chosen round-robin), pool-balances
each group's sequencer, aggregates each group's simulated clients into
compound-rate Poisson senders (superposition: N clients at rate r are
one stream at rate N·r), and wires a
:class:`~repro.core.oracle.FleetOracle` that reads per-group delivery
rates off a metrics bus and escalates *hot* groups — and only hot
groups — from sequencer to token ring mid-run.

The same engine serves both runtimes:

* ``runtime="sim"`` — deterministic virtual time over the point-to-point
  model; the full 1000-group / 100k-client sweep runs here.
* ``runtime="asyncio"`` — wall clock over real localhost UDP; a smoke
  size proves the group-id wire format and the shared ports against the
  kernel's network stack.

``benchmarks/bench_fleet.py`` and ``repro fleet`` are thin shells over
:func:`run_fleet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.oracle import FleetOracle, RateMeter
from ..core.switchable import GroupHandle, ProtocolSpec
from ..errors import ReproError, SwitchError
from ..net.ptp import LatencyMatrix, PointToPointNetwork
from ..obs.bus import Bus
from ..protocols.reliable import ReliableLayer
from ..protocols.sequencer import SequencerLayer
from ..protocols.tokenring import TokenRingLayer
from ..runtime import AsyncioRuntime, make_runtime
from ..sim.rng import RandomStreams
from ..sim.seeding import fleet_group_streams, fleet_sender_stream
from ..stack.layer import Layer
from ..stack.membership import Group
from ..workloads.generator import PoissonSender
from ..workloads.latency import LatencyProbe
from .manager import GroupManager

__all__ = [
    "FleetConfig",
    "FleetResult",
    "GroupReport",
    "group_members",
    "plan_sequencers",
    "run_fleet",
]

SLOT_NAMES = ("sequencer", "tokenring")


def group_members(index: int, members: int, nodes: int) -> List[int]:
    """Round-robin layout: group ``index`` gets ``members`` distinct
    consecutive nodes starting at ``(index * members) % nodes``."""
    start = (index * members) % nodes
    return sorted((start + offset) % nodes for offset in range(members))


def plan_sequencers(config: "FleetConfig") -> List[int]:
    """The fleet's global sequencer placement, as a pure function.

    Replays the pool walk the single-process runner performs — one
    least-loaded :meth:`SequencerPool.assign` per group, in group-index
    order — without touching any live manager.  Every shard replays the
    same plan and records only its own slice, so a group's sequencer
    rank never depends on which process hosts it and per-shard pool
    loads merge back to the global layout.
    """
    from .pool import SequencerPool

    pool = SequencerPool()
    return [
        pool.assign(group_members(index, config.members, config.nodes))
        for index in range(config.groups)
    ]


@dataclass
class FleetConfig:
    """Parameters of one fleet sweep.

    Attributes:
        runtime: "sim" (virtual time) or "asyncio" (wall clock + UDP).
        groups: number of switching groups.
        members: members per group.
        nodes: nodes (network ranks) the fleet is laid out over.
        clients: total simulated clients, split evenly across groups;
            each group's client population is folded into compound-rate
            Poisson senders (one per member) by superposition.
        client_rate: casts/second of one (cold) client.
        hot_fraction: fraction of groups that run hot.
        hot_multiplier: hot groups' clients send this many times faster.
        duration: seconds of workload (simulated or wall, per runtime).
        warmup: latency samples before this horizon are discarded.
        seed: master seed (workload + stack RNG forks).
        body_size: application payload bytes.
        token_interval: SP NORMAL-token pacing.
        hold_cost: token-ring per-hold CPU cost — paces idle rings so a
            thousand of them fit one event loop.
        high_threshold: per-group delivered-rate (member-deliveries/s)
            above which the oracle escalates to the token ring.
        oracle_poll: seconds between fleet oracle polls.
        settle: seconds after the workload stops for switches to finish.
        base_port: first UDP port (asyncio runtime only).
        latency: one-way latency of the simulated mesh (sim only).
        telemetry: grow a live :class:`TelemetryPlane` over the run
            (off by default: an unasked run is byte-identical to the
            pre-telemetry runner).
        telemetry_window: aggregation window seconds.
        telemetry_history: rolled windows retained per group.
        expo_port: serve ``/metrics`` + ``/snapshot`` over localhost
            HTTP on this port (asyncio runtime only; 0 = kernel-picked).
        slo_p99_ms / slo_switch_s / slo_ratio: optional SLO budgets
            (delivery-latency p99 ceiling in ms, time-to-switch ceiling
            in seconds, delivery-ratio floor).
        shards: worker processes the fleet is partitioned across by
            consistent group-id hashing (``repro.fleet.sharding``).
            0 = classic in-process run; N >= 1 routes through the shard
            supervisor (sim runtime only).
    """

    runtime: str = "sim"
    groups: int = 1000
    members: int = 3
    nodes: int = 48
    clients: int = 100_000
    client_rate: float = 0.02
    hot_fraction: float = 0.05
    hot_multiplier: float = 50.0
    duration: float = 10.0
    warmup: float = 0.5
    seed: int = 42
    body_size: int = 64
    token_interval: float = 0.25
    hold_cost: float = 0.05
    high_threshold: float = 50.0
    oracle_poll: float = 0.5
    settle: float = 2.0
    base_port: int = 47310
    latency: float = 1e-3
    telemetry: bool = False
    telemetry_window: float = 1.0
    telemetry_history: int = 60
    expo_port: Optional[int] = None
    slo_p99_ms: Optional[float] = None
    slo_switch_s: Optional[float] = None
    slo_ratio: Optional[float] = None
    shards: int = 0

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise ReproError("shards must be >= 0 (0 = in-process)")
        if self.shards > 0 and self.runtime != "sim":
            raise ReproError(
                "process sharding needs the sim runtime; the asyncio "
                "smoke proves the wire format in one process"
            )
        if self.shards > self.groups:
            raise ReproError(
                f"cannot split {self.groups} groups across "
                f"{self.shards} shards"
            )
        if self.groups < 1:
            raise ReproError("fleet needs at least one group")
        if self.members < 2:
            raise ReproError("groups need at least two members")
        if self.members > self.nodes:
            raise ReproError(
                f"cannot place {self.members} distinct members on "
                f"{self.nodes} nodes"
            )
        if self.clients < self.groups:
            raise ReproError("need at least one client per group")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ReproError("hot_fraction must be in [0, 1]")
        if self.hot_multiplier < 1.0:
            raise ReproError("hot_multiplier must be >= 1")
        if self.warmup >= self.duration:
            raise ReproError("warmup must end before the run does")
        if self.telemetry_window <= 0:
            raise ReproError("telemetry_window must be positive")
        if self.telemetry_history < 1:
            raise ReproError("telemetry_history must be >= 1")
        if self.expo_port is not None:
            if not self.telemetry:
                raise ReproError("expo_port needs telemetry=True")
            if self.runtime != "asyncio":
                raise ReproError(
                    "the exposition endpoint needs the asyncio runtime; "
                    "under sim use the poll API (snapshot/--telemetry-json)"
                )

    # ------------------------------------------------------------------
    # Derived layout
    # ------------------------------------------------------------------
    @property
    def clients_per_group(self) -> int:
        return self.clients // self.groups

    @property
    def hot_count(self) -> int:
        return min(self.groups, max(1, round(self.groups * self.hot_fraction)))

    def is_hot(self, index: int) -> bool:
        """Hot groups are evenly spaced over the id range (deterministic)."""
        if self.hot_fraction <= 0.0:
            return False
        stride = max(1, self.groups // self.hot_count)
        return index % stride == 0 and index // stride < self.hot_count

    def group_rate(self, index: int) -> float:
        """One group's aggregate cast rate (msgs/s across its members)."""
        rate = self.clients_per_group * self.client_rate
        if self.is_hot(index):
            rate *= self.hot_multiplier
        return rate


@dataclass
class GroupReport:
    """Per-group outcome of a fleet sweep."""

    group_id: int
    hot: bool
    members: List[int]
    sequencer: int
    casts: int
    delivered: int
    p99_ms: Optional[float]
    final_protocol: str
    switched: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "group_id": self.group_id,
            "hot": self.hot,
            "members": self.members,
            "sequencer": self.sequencer,
            "casts": self.casts,
            "delivered": self.delivered,
            "p99_ms": self.p99_ms,
            "final_protocol": self.final_protocol,
            "switched": self.switched,
        }


@dataclass
class FleetResult:
    """Outcome of one fleet sweep, with per-group and aggregate views."""

    runtime: str
    groups: int
    clients: int
    duration: float
    casts: int
    delivered: int
    msgs_per_s: float
    hot_groups: int
    hot_switched: int
    cold_switched: int
    stray_packets: int
    per_group: List[GroupReport] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    stray_by_node: Dict[int, int] = field(default_factory=dict)
    pool_loads: Dict[int, int] = field(default_factory=dict)
    telemetry: Optional[Dict[str, object]] = None
    shards: int = 0
    shard_stats: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "runtime": self.runtime,
            "groups": self.groups,
            "clients": self.clients,
            "duration": self.duration,
            "casts": self.casts,
            "delivered": self.delivered,
            "msgs_per_s": self.msgs_per_s,
            "hot_groups": self.hot_groups,
            "hot_switched": self.hot_switched,
            "cold_switched": self.cold_switched,
            "stray_packets": self.stray_packets,
            "stray_by_node": {
                str(node): count
                for node, count in sorted(self.stray_by_node.items())
            },
            "pool_loads": {
                str(node): load
                for node, load in sorted(self.pool_loads.items())
            },
            "violations": list(self.violations),
            "per_group": [report.as_dict() for report in self.per_group],
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        if self.shards > 0:
            payload["shards"] = self.shards
            payload["shard_stats"] = [dict(s) for s in self.shard_stats]
        return payload

    def summary(self) -> str:
        lines = [
            f"fleet: runtime={self.runtime} groups={self.groups} "
            f"clients={self.clients} duration={self.duration}s",
            f"  traffic: casts={self.casts} delivered={self.delivered} "
            f"aggregate={self.msgs_per_s:.0f} msgs/s",
            f"  oracle:  {self.hot_switched}/{self.hot_groups} hot groups "
            f"switched to token ring; {self.cold_switched} cold groups "
            f"switched (want 0)",
        ]
        noisy = {n: c for n, c in sorted(self.stray_by_node.items()) if c}
        ports_line = (
            f"  ports:   {len(self.stray_by_node)} node ports, "
            f"stray-group drops={self.stray_packets}"
        )
        if noisy:
            detail = " ".join(f"n{n}={c}" for n, c in noisy.items())
            ports_line += f" ({detail})"
        lines.append(ports_line)
        if self.pool_loads:
            loads = list(self.pool_loads.values())
            lines.append(
                f"  pool:    sequencers on {len(self.pool_loads)} nodes "
                f"(load min={min(loads)} max={max(loads)} per node)"
            )
        if self.telemetry is not None:
            fleet = self.telemetry.get("snapshot", {}).get("fleet", {})
            slo = fleet.get("slo", {})
            lines.append(
                f"  telem:   windows={fleet.get('windows_rolled', 0)} "
                f"escalations={fleet.get('escalations', 0)} "
                f"captures={fleet.get('captures', 0)} "
                f"slo-burn={slo.get('burn_minutes', 0.0):.2f}min"
            )
        if self.shards > 0:
            cpu = max(
                (s.get("cpu_s", 0.0) for s in self.shard_stats), default=0.0
            )
            lines.append(
                f"  shards:  {self.shards} worker processes, "
                f"critical-path cpu={cpu:.2f}s"
            )
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  oracle verdicts hold: hot switched, cold stayed")
        return "\n".join(lines)


def _specs(
    sequencer_rank: int, config: FleetConfig, reliable: bool
) -> List[ProtocolSpec]:
    """Both slots of one group; ``reliable`` adds NAK/retransmit under
    each order layer (needed on real UDP, pure timer load on the
    loss-free simulated mesh)."""

    def with_reliable(order_layer: Layer) -> List[Layer]:
        layers: List[Layer] = [order_layer]
        if reliable:
            layers.append(ReliableLayer())
        return layers

    return [
        ProtocolSpec(
            "sequencer",
            lambda r: with_reliable(SequencerLayer(sequencer=sequencer_rank)),
        ),
        ProtocolSpec(
            "tokenring",
            lambda r: with_reliable(TokenRingLayer(hold_cost=config.hold_cost)),
        ),
    ]


def run_fleet(
    config: Optional[FleetConfig] = None,
    bus: Optional[Bus] = None,
    indices: Optional[Sequence[int]] = None,
) -> FleetResult:
    """Drive one fleet sweep; see the module docstring for the shape.

    ``indices`` restricts the run to a slice of the fleet's global
    group-index space (a shard worker owns such a slice; see
    ``repro.fleet.sharding``).  Group ids, sequencer placement, and all
    per-group RNG streams are derived from the *global* index, so any
    partition of the index space reproduces exactly the per-group
    outcomes of the unpartitioned run.
    """
    config = config or FleetConfig()
    runtime = make_runtime(config.runtime)
    streams = RandomStreams(config.seed)

    if isinstance(runtime, AsyncioRuntime):
        from ..net.udp import UdpNetwork

        network = UdpNetwork(runtime, config.nodes, base_port=config.base_port)
        runtime.run_task(network.open())
        reliable = True
    else:
        network = PointToPointNetwork(
            runtime,
            config.nodes,
            latency=LatencyMatrix(config.nodes, config.latency),
            rng=streams,
        )
        reliable = False

    # The fleet bus carries the per-group delivery counters the oracle
    # reads.  Metrics only: max_events=0 keeps the event list empty even
    # if a caller-supplied bus arrives enabled.
    fleet_bus = bus if bus is not None else Bus(clock=runtime, max_events=0)
    fleet_bus.clock = runtime

    oracle = FleetOracle(
        metric_factory=lambda gid: RateMeter(
            lambda: runtime.now,
            lambda: fleet_bus.metrics.counter(f"fleet.delivered[g{gid}]"),
        ),
        high_threshold=config.high_threshold,
        low_protocol=SLOT_NAMES[0],
        high_protocol=SLOT_NAMES[1],
    )
    manager = GroupManager(runtime, network, oracle=oracle)

    plane = None
    server = None
    if config.telemetry:
        from ..obs.telemetry import SLOTarget, TelemetryConfig, TelemetryPlane

        slos = []
        if config.slo_p99_ms is not None:
            slos.append(
                SLOTarget("delivery-p99", "delivery_p99_ms", config.slo_p99_ms)
            )
        if config.slo_switch_s is not None:
            slos.append(
                SLOTarget(
                    "time-to-switch", "switch_duration_s", config.slo_switch_s
                )
            )
        if config.slo_ratio is not None:
            slos.append(
                SLOTarget("delivery-ratio", "delivery_ratio", config.slo_ratio)
            )
        plane = TelemetryPlane(
            runtime,
            fleet_bus,
            TelemetryConfig(
                window=config.telemetry_window,
                history=config.telemetry_history,
                slos=slos,
            ),
        )
        plane.attach_oracle(oracle)
        plane.attach_manager(manager)
        if config.expo_port is not None:
            from ..obs.telemetry.expo import TelemetryServer

            server = TelemetryServer(plane, port=config.expo_port)
            runtime.run_task(server.open())

    try:
        return _drive(
            runtime, manager, fleet_bus, config, streams, plane, server,
            indices=indices,
        )
    finally:
        if isinstance(runtime, AsyncioRuntime):
            if server is not None:
                runtime.run_task(server.aclose())
            runtime.close()


def _drive(
    runtime,
    manager: GroupManager,
    fleet_bus: Bus,
    config: FleetConfig,
    streams: RandomStreams,
    plane=None,
    server=None,
    indices: Optional[Sequence[int]] = None,
) -> FleetResult:
    reliable = config.runtime != "sim"
    full_fleet = indices is None
    indices = range(config.groups) if full_fleet else sorted(indices)
    plan = plan_sequencers(config)
    handles: Dict[int, GroupHandle] = {}
    probes: Dict[int, LatencyProbe] = {}
    counters: Dict[int, object] = {}
    casts: Dict[int, int] = {}
    hot: Dict[int, bool] = {}
    sequencers: Dict[int, int] = {}
    senders: List[PoissonSender] = []

    for index in indices:
        members = group_members(index, config.members, config.nodes)
        sequencer_rank = manager.assign_sequencer(
            members, rank=plan[index], group_id=index + 1
        )
        handle = manager.create_group(
            members,
            _specs(sequencer_rank, config, reliable),
            initial=SLOT_NAMES[0],
            token_interval=config.token_interval,
            control_factory=None if reliable else (lambda __: []),
            streams=fleet_group_streams(streams, index),
            group_id=index + 1,
        )
        gid = handle.group_id
        handles[gid] = handle
        hot[gid] = config.is_hot(index)
        sequencers[gid] = sequencer_rank
        casts[gid] = 0

        # Delivery counting: one group-labelled scope per group feeds
        # both the oracle's rate meter and the final per-group report.
        scope = fleet_bus.scoped(None, gid)
        counters[gid] = scope
        if plane is not None:
            coordinator = handle.stacks[handle.group.coordinator]
            plane.watch_group(
                gid,
                members=config.members,
                hot=hot[gid],
                protocol=lambda c=coordinator: c.current_protocol,
                sequencer=sequencer_rank,
            )
            coordinator.core.on_switch_complete(
                lambda old, new, gid=gid: plane.note_switch(gid, old, new)
            )
            try:
                # Aborts exist only on fault-tolerant SP variants; the
                # fleet's plain token choreography cannot abort, so the
                # hook is best-effort.
                coordinator.on_switch_aborted(
                    lambda outcome, gid=gid: plane.note_abort(
                        gid, reason=outcome.reason, phase=outcome.phase
                    )
                )
            except SwitchError:
                pass
        # The probe computes each delivery's latency exactly once; with
        # telemetry on, the plane rides that computation as the probe's
        # sink instead of re-deriving it from the payload timestamp.
        probe = LatencyProbe(
            runtime,
            warmup=config.warmup,
            sink=None if plane is None else plane.delivery_hook(gid),
        )
        probes[gid] = probe
        for rank, stack in handle.stacks.items():
            # One fused hook per direction: the scope count and the
            # probe observation share a single dispatch per delivery.
            def deliver(
                msg, rank=rank, observe=probe.observe, count=scope.count
            ):
                count("fleet.delivered")
                observe(rank, msg)

            stack.on_deliver(deliver)
            if plane is None:

                def send(msg, gid=gid):
                    casts[gid] += 1

            else:

                def send(msg, gid=gid, note=plane.cast_hook(gid)):
                    casts[gid] += 1
                    note()

            stack.on_send(send)
            # Poisson superposition: this member's share of the group's
            # client population, folded into one compound-rate stream.
            sender = PoissonSender(
                runtime,
                stack,
                rate=config.group_rate(index) / config.members,
                rng=fleet_sender_stream(streams, index, rank),
                body_size=config.body_size,
                stop=config.duration,
            )
            sender.start()
            senders.append(sender)

    manager.start_oracle_polling(config.oracle_poll)
    if plane is not None:
        plane.start()

    runtime.run_until(config.duration)
    for sender in senders:
        sender.stop()
    runtime.run_for(config.settle)
    manager.stop_oracle_polling()
    if plane is not None:
        plane.stop()
        plane.roll()  # flush the partial window into the history

    # ------------------------------------------------------------------
    # Report + verdicts
    # ------------------------------------------------------------------
    violations: List[str] = []
    per_group: List[GroupReport] = []
    total_casts = 0
    total_delivered = 0
    hot_switched = 0
    cold_switched = 0
    for gid, handle in handles.items():
        finals = handle.current_protocols
        if len(set(finals.values())) != 1:
            violations.append(f"group {gid} members disagree: {finals}")
        final = finals[handle.group.coordinator]
        switched = final == SLOT_NAMES[1]
        if switched:
            if hot[gid]:
                hot_switched += 1
            else:
                cold_switched += 1
        delivered = fleet_bus.metrics.counter(f"fleet.delivered[g{gid}]")
        probe = probes[gid]
        per_group.append(
            GroupReport(
                group_id=gid,
                hot=hot[gid],
                members=list(handle.group.members),
                sequencer=sequencers[gid],
                casts=casts[gid],
                delivered=delivered,
                p99_ms=(
                    probe.quantile_ms(0.99) if probe.latency.count else None
                ),
                final_protocol=final,
                switched=switched,
            )
        )
        total_casts += casts[gid]
        total_delivered += delivered

    hot_total = sum(1 for is_hot in hot.values() if is_hot)
    if hot_switched < hot_total:
        violations.append(
            f"only {hot_switched}/{hot_total} hot groups escalated to "
            f"{SLOT_NAMES[1]}"
        )
    if cold_switched:
        violations.append(f"{cold_switched} cold groups switched (want 0)")
    stray_by_node = {
        node: port.stats.get("stray_group")
        for node, port in sorted(manager.ports.items())
    }
    stray = sum(stray_by_node.values())

    telemetry: Optional[Dict[str, object]] = None
    if plane is not None:
        scrape_payload = None
        if server is not None:
            from ..obs.telemetry.expo import scrape

            # Self-scrape the live endpoint over a real HTTP round trip
            # while the loop is still up: CI validates exposition
            # without a second process.
            scrape_payload = runtime.run_task(
                scrape(server.host, server.port)
            )
        telemetry = {
            "schema_version": 1,
            "kind": "telemetry",
            "source": "poll",
            "snapshot": plane.snapshot(),
            "prometheus": plane.prometheus(),
            "escalations": list(plane.escalations),
        }
        if scrape_payload is not None:
            telemetry["scrape"] = scrape_payload

    return FleetResult(
        runtime=runtime.name,
        groups=config.groups if full_fleet else len(handles),
        clients=(
            config.clients
            if full_fleet
            else config.clients_per_group * len(handles)
        ),
        duration=config.duration,
        casts=total_casts,
        delivered=total_delivered,
        msgs_per_s=total_delivered / config.duration,
        hot_groups=hot_total,
        hot_switched=hot_switched,
        cold_switched=cold_switched,
        stray_packets=stray,
        per_group=per_group,
        violations=violations,
        stray_by_node=stray_by_node,
        pool_loads=dict(manager.pool.loads),
        telemetry=telemetry,
    )
