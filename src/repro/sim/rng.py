"""Deterministic named random-number streams.

Every source of randomness in an experiment (network jitter, packet loss,
workload inter-arrival times, trace generators, ...) draws from its own
named stream derived from a single master seed.  This gives two properties
that matter for reproducing a paper:

* **Bit-for-bit reproducibility** — rerunning an experiment with the same
  seed replays the identical execution.
* **Variance isolation** — changing one component (say, adding a jitter
  source) does not perturb the random draws seen by unrelated components,
  because streams are independent, not interleaved.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, named :class:`random.Random` streams.

    Each stream's seed is derived by hashing ``(master_seed, name)``, so the
    mapping from name to stream is stable across runs and across stream
    creation order.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so consumers share draw position within a run but never
        across differently-named streams.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive_seed(name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are all distinct from ours.

        Useful when an experiment spawns sub-experiments that each need a
        full namespace of streams.
        """
        return RandomStreams(self._derive_seed(f"fork:{name}"))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.master_seed}/{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RandomStreams master_seed={self.master_seed} "
            f"streams={sorted(self._streams)}>"
        )
