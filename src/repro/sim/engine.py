"""Discrete-event simulation engine.

The engine is a classic event-wheel built on a binary heap.  Everything in
the library — network transmission, protocol timers, workload generators —
runs as callbacks scheduled on a single :class:`Simulator`.  Simulated time
is a ``float`` number of seconds; it only advances when the engine pops the
next event, so a run is fully deterministic given deterministic callbacks.

Usage::

    sim = Simulator()
    sim.schedule(0.5, lambda: print("half a second in"))
    sim.run()

Handles returned by :meth:`Simulator.schedule` can be cancelled, which is
how protocol retransmission timers are implemented.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventHandle", "Simulator", "Timeline"]


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays in place but is skipped when
    popped.  This keeps both ``schedule`` and ``cancel`` O(log n) / O(1).
    The owning simulator counts cancellations so ``pending()`` stays O(1)
    and the heap can be compacted when cancelled entries pile up (the
    armed-then-cancelled retransmit-timer pattern of long chaos runs).
    """

    __slots__ = ("time", "_seq", "_callback", "_cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self._seq = seq
        self._callback = callback
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._callback = _NOOP
        # Only a not-yet-fired event still counts against the live total;
        # the simulator detaches itself when the event fires.
        sim, self._sim = self._sim, None
        if sim is not None:
            sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {state}>"


def _noop() -> None:
    return None


_NOOP = _noop


class Simulator:
    """A deterministic discrete-event simulator.

    Events scheduled for the same instant fire in scheduling order (FIFO),
    which the tie-breaking sequence number guarantees.  Callbacks take no
    arguments; bind state with closures or ``functools.partial``.
    """

    #: Compaction triggers once at least this many cancelled entries sit
    #: in the heap AND they outnumber the live ones.  Small enough to keep
    #: long timer-churn runs lean, large enough that compaction cost is
    #: amortized over many cancellations.
    COMPACT_MIN_DEAD = 256

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._live = 0  # scheduled, not yet fired, not cancelled
        self._dead = 0  # cancelled entries still sitting in the heap

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events.  O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # Cancellation accounting (called by EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._live -= 1
        self._dead += 1
        if self._dead >= self.COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Safe at any point: entry ordering keys ``(time, seq)`` are
        untouched, so firing order after compaction is identical to the
        lazy path — only the heap's footprint changes.
        """
        self._queue = [e for e in self._queue if not e[2]._cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        A zero delay is allowed and fires after all currently-queued events
        for the present instant.  Negative delays raise
        :class:`SimulationError`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        handle = EventHandle(time, next(self._seq), callback, sim=self)
        heapq.heappush(self._queue, (time, handle._seq, handle))
        self._live += 1
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._queue:
            time, __, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                self._dead -= 1
                continue
            self._now = time
            self._events_processed += 1
            self._live -= 1
            handle._sim = None  # fired: a late cancel() must not re-count
            callback = handle._callback
            handle._callback = _NOOP  # break reference cycles early
            callback()
            return True
        return False

    def run(
        self,
        max_events: Optional[int] = None,
        until: Optional[float] = None,
    ) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events fired by this call.

        ``until`` is a **runaway guard**, not a horizon: if the queue
        still holds events once simulated time passes ``until``, the run
        raises :class:`SimulationError` instead of spinning forever — a
        buggy self-rearming timer can otherwise hang a test run
        indefinitely.  Use :meth:`run_until` for a normal bounded run.
        (``max_events`` keeps its historical soft semantics: it breaks
        out and returns rather than raising, so incremental drivers can
        use it to run in slices.)
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until:.6f}) is before now={self._now:.6f}"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        fired = 0
        try:
            while True:
                if until is not None:
                    next_time = self._peek_time()
                    if next_time is not None and next_time > until:
                        raise SimulationError(
                            f"runaway simulation: {self.pending()} event(s) "
                            f"still queued past the t={until:.6f} deadline "
                            f"after {fired} fired (next at t={next_time:.6f})"
                        )
                if not self.step():
                    break
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return fired

    def run_until(self, time: float) -> int:
        """Run all events up to and including simulated ``time``.

        The clock is advanced to exactly ``time`` afterwards even if the
        queue drained earlier, so back-to-back ``run_until`` calls compose.
        """
        if time < self._now:
            raise SimulationError(
                f"run_until({time:.6f}) is before now={self._now:.6f}"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                next_time = self._peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
                fired += 1
            self._now = max(self._now, time)
        finally:
            self._running = False
        return fired

    def run_for(self, duration: float) -> int:
        """Run for ``duration`` simulated seconds from the current instant."""
        return self.run_until(self._now + duration)

    def _peek_time(self) -> Optional[float]:
        while self._queue:
            time, __, handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                self._dead -= 1
                continue
            return time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6f} pending={self.pending()} "
            f"fired={self._events_processed}>"
        )


class Timeline:
    """A deterministic, labelled script of events.

    Chaos and fault-injection runs need their perturbations — crashes,
    recoveries, switch requests, bursts of traffic — expressed as *data*
    so a run is reproducible from its plan alone.  A :class:`Timeline`
    collects ``(time, label, callback)`` entries, installs them onto a
    :class:`Simulator` in one shot, and records which entries actually
    fired (an entry scheduled past the horizon of ``run_until`` simply
    never fires).

    Entries may be added in any order; installation sorts by time, with
    insertion order breaking ties.  ``install`` may be called once.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, str, Callable[[], None]]] = []
        self._installed = False
        #: (time, label) of every entry that has fired, in firing order.
        self.fired: List[Tuple[float, str]] = []

    def at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> "Timeline":
        """Add an event at absolute simulated ``time``; returns self."""
        if time < 0:
            raise SimulationError(f"timeline entry at negative time {time}")
        if self._installed:
            raise SimulationError("timeline is already installed")
        self._entries.append((time, len(self._entries), label, callback))
        return self

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[Tuple[float, str]]:
        """The scripted (time, label) pairs in execution order."""
        return [(t, label) for t, __, label, __cb in sorted(self._entries)]

    def install(self, sim: Simulator) -> List[EventHandle]:
        """Schedule every entry onto ``sim``; returns the event handles."""
        if self._installed:
            raise SimulationError("timeline is already installed")
        self._installed = True
        handles = []
        for time, __, label, callback in sorted(self._entries):

            def fire(time=time, label=label, callback=callback) -> None:
                self.fired.append((time, label))
                callback()

            handles.append(sim.schedule_at(time, fire))
        return handles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeline entries={len(self._entries)} fired={len(self.fired)}>"
