"""Discrete-event simulation engine.

The engine is a **hashed timer wheel** (a calendar queue): scheduled
events hash into time-width buckets, the bucket currently being drained
keeps an exact ``(time, seq)``-ordered due-heap, and the wheel advances
bucket by bucket, jumping directly to the next occupied one when the
queue goes sparse.  Everything in the library — network transmission,
protocol timers, workload generators — runs as callbacks scheduled on a
single :class:`Simulator`.  Simulated time is a ``float`` number of
seconds; it only advances when the engine pops the next event, so a run
is fully deterministic given deterministic callbacks.

Why a wheel and not a heap: cancellation-heavy traffic (the armed-then-
cancelled retransmit-timer pattern of the reliable layer and the SP
watchdogs) makes cancel/reschedule the common case.  On the old binary
heap every timer paid an O(log n) push even when it was cancelled a
microsecond later, and every cancelled entry eventually paid an
O(log n) pop to leave.  On the wheel ``schedule``, ``cancel`` and the
fused :meth:`Simulator.rearm` are all O(1): scheduling inserts into a
bucket dict, cancelling a not-yet-due entry deletes it on the spot, and
only entries that already reached the due-heap fall back to lazy
flagging (dropped on pop, or at compaction) — never sorted.

Firing order is **exactly** ``(time, seq)`` — identical to the heap
engine, as the differential tests in ``tests/sim/`` replay:

* bucket index is ``int(time * inv_width)``, a monotonic map from time,
  so every event in bucket *b* precedes every event in bucket *b + k*;
* within the draining bucket, events live in a small binary heap keyed
  by ``(time, seq)``, so ties fire in scheduling order (FIFO).

Usage::

    sim = Simulator()
    sim.schedule(0.5, lambda: print("half a second in"))
    sim.run()

Handles returned by :meth:`Simulator.schedule` can be cancelled, which is
how protocol retransmission timers are implemented.  Fired and dropped
handles are recycled through a free list when (and only when) the
engine holds the last reference — ``sys.getrefcount`` proves
exclusivity — so steady-state timer churn allocates nothing.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventHandle", "Simulator", "Timeline"]


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is O(1) either way the wheel resolves it: a handle
    still sitting in a future bucket is unlinked on the spot (a dict
    delete), one that already reached the due-heap is flagged and
    skipped (and reclaimed) when it pops.  The owning simulator counts
    lazy cancellations so ``pending()`` stays O(1) and the due-heap is
    compacted when dead entries pile up (the armed-then-cancelled
    retransmit-timer pattern of long chaos runs).
    """

    __slots__ = ("time", "_seq", "_callback", "_cancelled", "_sim", "_bucket")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self._seq = seq
        self._callback = callback
        self._cancelled = False
        self._sim = sim
        self._bucket = 0

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._callback = _NOOP
        # Only a not-yet-fired event still counts against the live total;
        # the simulator detaches itself when the event fires.
        sim, self._sim = self._sim, None
        if sim is not None:
            sim._note_cancel(self)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {state}>"


def _noop() -> None:
    return None


_NOOP = _noop

#: Smallest (and initial) bucket count; always a power of two.
_MIN_BUCKETS = 256

#: Handles kept on the per-simulator free list, at most.
_FREE_CAP = 1024

#: Bucket index for times whose product with ``inv_width`` overflows a
#: float (``inf`` horizons).  Larger than any finite index: a finite
#: ``time * inv_width`` is < 1e309, far below 10**400.
_FAR_BUCKET = 10 ** 400

#: Adaptive width aims for this many events per bucket, so one bucket
#: drain (a Python-level scan) feeds this many C-level heappop fires.
#: One-per-bucket minimizes due-heap size but pays an ``_advance`` call
#: per event; a small batch amortizes it without letting slots (or the
#: due-heap) grow enough to matter.
_TARGET_PER_BUCKET = 16


def _pow2(n: int) -> int:
    """The smallest power of two >= max(n, 1)."""
    return 1 << max(n - 1, 0).bit_length()


def _exclusive_refs() -> int:
    """The refcount a handle shows when only a local + this call see it.

    Measured (not hard-coded) because calling conventions differ across
    CPython versions.  The recycle sites compare against exactly this
    shape, so a handle still referenced by caller code can never be
    recycled out from under it.
    """
    probe = object()
    return getrefcount(probe)


_EXCLUSIVE_REFS = _exclusive_refs()

#: Bare allocation for the schedule fast path (attributes are stored by
#: the caller, so running ``__init__`` would just repeat the work).
_NEW_HANDLE = object.__new__


class Simulator:
    """A deterministic discrete-event simulator on a hashed timer wheel.

    Events scheduled for the same instant fire in scheduling order (FIFO),
    which the tie-breaking sequence number guarantees.  Callbacks take no
    arguments; bind state with closures or ``functools.partial``.

    Internals (see the module docstring for the invariants):

    * ``_buckets[i]`` is an insertion-ordered dict (handle -> None) of
      live entries whose absolute bucket index hashes to slot ``i``
      (``index & mask``) — a dict so cancel and rearm unlink in O(1)
      by identity regardless of how crowded the slot is;
    * ``_due`` is a small ``(time, seq, handle)`` heap holding every
      pending event with absolute bucket index <= ``_cur``;
    * ``_width`` adapts on resize so the live population spreads to
      roughly one event per bucket.
    """

    #: Compaction triggers once at least this many cancelled entries sit
    #: in the wheel AND they outnumber the live ones.  Small enough to
    #: keep long timer-churn runs lean, large enough that compaction
    #: cost is amortized over many cancellations.
    COMPACT_MIN_DEAD = 256

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._live = 0  # scheduled, not yet fired, not cancelled
        self._dead = 0  # cancelled entries still sitting in the wheel
        self._width = 1e-3  # ms-scale: the substrate's native tick
        self._inv_width = 1e3
        self._nbuckets = _MIN_BUCKETS
        self._mask = _MIN_BUCKETS - 1
        self._buckets: List[Dict[EventHandle, None]] = [
            {} for __ in range(_MIN_BUCKETS)
        ]
        self._cur = -1  # all buckets <= _cur have drained into _due
        self._due: List[Tuple[float, int, EventHandle]] = []
        self._free: List[EventHandle] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events.  O(1)."""
        return self._live

    def footprint(self) -> int:
        """Entries (live + dead) currently stored in the wheel.

        Diagnostics only: the compaction tests and benchmarks assert the
        wheel's memory stays bounded under cancellation churn.
        """
        return sum(len(slot) for slot in self._buckets) + len(self._due)

    # ------------------------------------------------------------------
    # Cancellation accounting (called by EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancel(self, handle: EventHandle) -> None:
        self._live -= 1
        bucket = handle._bucket
        if bucket > self._cur:
            # Still in a future slot (never in the due-heap): unlink it
            # on the spot — an O(1) dict delete however crowded the slot
            # is, so steady-state timer churn leaves no debris behind.
            try:
                del self._buckets[bucket & self._mask][handle]
                return
            except KeyError:  # pragma: no cover - invariant guard
                pass
        self._dead += 1
        if self._dead >= self.COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the wheel in place.

        Safe at any point: entry ordering keys ``(time, seq)`` are
        untouched, so firing order after compaction is identical to the
        lazy path — only the wheel's footprint (and its adaptive bucket
        width) changes.
        """
        self._rebuild(self._nbuckets)

    # ------------------------------------------------------------------
    # Wheel maintenance
    # ------------------------------------------------------------------
    def _rebuild(self, nbuckets: int) -> None:
        """Re-bin every live entry into ``nbuckets`` buckets.

        Recomputes the adaptive bucket width from the live population's
        span (aiming at ~1 event per bucket), purges cancelled entries,
        and resets the drain cursor just below the present instant.
        Determinism: bucket assignment is a pure function of event times
        and the (deterministically chosen) width, and relative firing
        order never depends on bucket boundaries.
        """
        entries: List[EventHandle] = []
        for slot in self._buckets:
            for handle in slot:
                if not handle._cancelled:
                    entries.append(handle)
        for __, __s, handle in self._due:
            if not handle._cancelled:
                entries.append(handle)
        self._dead = 0
        live = len(entries)
        if live >= 2:
            lo = min(h.time for h in entries)
            hi = max(h.time for h in entries)
            span = hi - lo
            if span > 0.0:
                width = span * _TARGET_PER_BUCKET / live
                self._width = min(max(width, 1e-9), 60.0)
                self._inv_width = 1.0 / self._width
        self._nbuckets = nbuckets
        self._mask = mask = nbuckets - 1
        self._buckets = buckets = [{} for __ in range(nbuckets)]
        inv = self._inv_width
        self._cur = int(self._now * inv) - 1
        self._due = []
        for handle in entries:
            try:
                bucket = int(handle.time * inv)
            except (OverflowError, ValueError):
                bucket = _FAR_BUCKET
            handle._bucket = bucket
            buckets[bucket & mask][handle] = None

    def _advance(self) -> bool:
        """Drain the next occupied bucket into the due-heap.

        Scans forward from the cursor; after a fruitless full
        revolution (a sparse wheel) it computes the minimum occupied
        bucket in one pass over the slots and jumps straight there.
        Returns False when no live events remain.
        """
        live = self._live
        if live == 0:
            return False
        if self._nbuckets > _MIN_BUCKETS and live < (self._nbuckets >> 2):
            self._rebuild(max(_MIN_BUCKETS, _pow2(live << 1)))
        # The due-heap is empty here (that is the only reason to advance),
        # so no drained bucket has outstanding events: snap the cursor
        # back to the present.  Without this, draining a far-future
        # bucket would leave ``_cur`` ahead of ``now`` and every nearer
        # schedule/rearm would degrade into the due-heap's lazy path.
        self._cur = int(self._now * self._inv_width) - 1
        due = self._due
        buckets = self._buckets
        mask = self._mask
        nbuckets = self._nbuckets
        bucket = self._cur + 1
        scanned = 0
        while True:
            index = bucket & mask
            slot = buckets[index]
            if slot:
                found = False
                keep: Dict[EventHandle, None] = {}
                for handle in slot:
                    if handle._bucket == bucket:
                        heappush(due, (handle.time, handle._seq, handle))
                        found = True
                    else:
                        # A later revolution's entry sharing this slot.
                        keep[handle] = None
                buckets[index] = keep
                if found:
                    self._cur = bucket
                    return True
            bucket += 1
            scanned += 1
            if scanned > nbuckets:
                bucket = self._min_bucket()
                scanned = 0

    def _min_bucket(self) -> int:
        """The smallest occupied absolute bucket index."""
        best: Optional[int] = None
        for slot in self._buckets:
            for handle in slot:
                if best is None or handle._bucket < best:
                    best = handle._bucket
        if best is None:  # pragma: no cover - guarded by _live > 0
            raise SimulationError("internal: live count and wheel disagree")
        return best

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        A zero delay is allowed and fires after all currently-queued events
        for the present instant.  Negative delays raise
        :class:`SimulationError`.

        This is the hottest call in the engine (every packet hop is one),
        so it inlines :meth:`schedule_at` rather than delegating.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        handle = free.pop() if free else _NEW_HANDLE(EventHandle)
        handle.time = time
        handle._seq = seq
        handle._callback = callback
        handle._cancelled = False
        handle._sim = self
        try:
            bucket = int(time * self._inv_width)
        except (OverflowError, ValueError):
            bucket = _FAR_BUCKET
        handle._bucket = bucket
        if bucket <= self._cur:
            heappush(self._due, (time, seq, handle))
        else:
            self._buckets[bucket & self._mask][handle] = None
        self._live += 1
        if self._live > (self._nbuckets << 1):
            self._rebuild(_pow2(self._live))
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time.  O(1)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        # Bypass EventHandle.__init__: on this path the attribute stores
        # happen either way, and a recycled handle skips allocation too.
        handle = free.pop() if free else _NEW_HANDLE(EventHandle)
        handle.time = time
        handle._seq = seq
        handle._callback = callback
        handle._cancelled = False
        handle._sim = self
        try:
            bucket = int(time * self._inv_width)
        except (OverflowError, ValueError):
            bucket = _FAR_BUCKET
        handle._bucket = bucket
        if bucket <= self._cur:
            heappush(self._due, (time, seq, handle))
        else:
            self._buckets[bucket & self._mask][handle] = None
        self._live += 1
        if self._live > (self._nbuckets << 1):
            self._rebuild(_pow2(self._live))
        return handle

    def rearm(
        self,
        handle: EventHandle,
        delay: float,
        callback: Optional[Callable[[], None]] = None,
    ) -> EventHandle:
        """Fused cancel + reschedule of a live timer.  O(1).

        Moves ``handle``'s deadline to ``delay`` seconds from now,
        keeping its callback (or swapping in ``callback`` when given).
        On the fast path the handle is unlinked
        from its slot (an O(1) dict delete) and relinked in place — no
        allocation, no heap traffic, no dead entry left behind; this is
        the wheel operation a binary heap cannot offer, and what the
        retransmit/linger armed-then-rearmed pattern should use.
        Always rebind to the return value (``t = sim.rearm(t, d)``):
        when the old entry already reached the due-heap a fresh handle
        is issued instead and the old one is cancelled.

        Firing order stays exactly ``(time, seq)``: a rearm takes a new
        sequence number, as cancel + ``schedule`` would.
        """
        if handle._cancelled or handle._sim is not self:
            raise SimulationError(
                "rearm() needs a live handle owned by this simulator"
            )
        if delay < 0:
            raise SimulationError(f"cannot rearm {delay:.6f}s into the past")
        if callback is not None:
            handle._callback = callback
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        try:
            bucket = int(time * self._inv_width)
        except (OverflowError, ValueError):
            bucket = _FAR_BUCKET
        cur = self._cur
        old_bucket = handle._bucket
        if old_bucket > cur:
            if bucket == old_bucket:
                # Same bucket: the entry does not even move — retiming
                # it is two attribute stores.  Ordering is untouched
                # because the due-heap re-keys on (time, seq) when the
                # bucket drains.
                handle.time = time
                handle._seq = seq
                return handle
            buckets = self._buckets
            mask = self._mask
            try:
                del buckets[old_bucket & mask][handle]
            except KeyError:  # pragma: no cover - invariant guard
                pass
            else:
                handle.time = time
                handle._seq = seq
                handle._bucket = bucket
                if bucket <= cur:
                    heappush(self._due, (time, seq, handle))
                else:
                    buckets[bucket & mask][handle] = None
                return handle
        # Slow path: retire the old entry lazily and issue a new handle.
        callback = handle._callback
        handle._cancelled = True
        handle._callback = _NOOP
        handle._sim = None
        self._live -= 1
        self._dead += 1
        if self._dead >= self.COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()
        return self.schedule_at(time, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while True:
            due = self._due
            if not due:
                if not self._advance():
                    return False
                continue
            time, __, handle = heappop(due)
            if handle._cancelled:
                self._dead -= 1
                if (
                    len(self._free) < _FREE_CAP
                    and getrefcount(handle) == _EXCLUSIVE_REFS
                ):
                    self._free.append(handle)
                continue
            self._now = time
            self._events_processed += 1
            self._live -= 1
            handle._sim = None  # fired: a late cancel() must not re-count
            callback = handle._callback
            handle._callback = _NOOP  # break reference cycles early
            callback()
            # Steady-state pooling: recycle the handle only when the
            # caller kept no reference (getrefcount proves exclusivity),
            # so a retained handle can never be scribbled on.
            if (
                len(self._free) < _FREE_CAP
                and getrefcount(handle) == _EXCLUSIVE_REFS
            ):
                self._free.append(handle)
            return True

    def run(
        self,
        max_events: Optional[int] = None,
        until: Optional[float] = None,
    ) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events fired by this call.

        ``until`` is a **runaway guard**, not a horizon: if the queue
        still holds events once simulated time passes ``until``, the run
        raises :class:`SimulationError` instead of spinning forever — a
        buggy self-rearming timer can otherwise hang a test run
        indefinitely.  Use :meth:`run_until` for a normal bounded run.
        (``max_events`` keeps its historical soft semantics: it breaks
        out and returns rather than raising, so incremental drivers can
        use it to run in slices.)
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until:.6f}) is before now={self._now:.6f}"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        fired = 0
        try:
            while True:
                if until is not None:
                    next_time = self._peek_time()
                    if next_time is not None and next_time > until:
                        raise SimulationError(
                            f"runaway simulation: {self.pending()} event(s) "
                            f"still queued past the t={until:.6f} deadline "
                            f"after {fired} fired (next at t={next_time:.6f})"
                        )
                if not self.step():
                    break
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return fired

    def run_until(self, time: float) -> int:
        """Run all events up to and including simulated ``time``.

        The clock is advanced to exactly ``time`` afterwards even if the
        queue drained earlier, so back-to-back ``run_until`` calls compose.
        """
        if time < self._now:
            raise SimulationError(
                f"run_until({time:.6f}) is before now={self._now:.6f}"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        fired = 0
        try:
            while True:
                next_time = self._peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
                fired += 1
            self._now = max(self._now, time)
        finally:
            self._running = False
        return fired

    def run_for(self, duration: float) -> int:
        """Run for ``duration`` simulated seconds from the current instant."""
        return self.run_until(self._now + duration)

    def _peek_time(self) -> Optional[float]:
        """The next live event's time without firing it (or None)."""
        due = self._due
        while due:
            time, __, handle = due[0]
            if handle._cancelled:
                heappop(due)
                self._dead -= 1
                continue
            return time
        if self._advance():
            return self._due[0][0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6f} pending={self.pending()} "
            f"fired={self._events_processed}>"
        )


class Timeline:
    """A deterministic, labelled script of events.

    Chaos and fault-injection runs need their perturbations — crashes,
    recoveries, switch requests, bursts of traffic — expressed as *data*
    so a run is reproducible from its plan alone.  A :class:`Timeline`
    collects ``(time, label, callback)`` entries, installs them onto a
    :class:`Simulator` in one shot, and records which entries actually
    fired (an entry scheduled past the horizon of ``run_until`` simply
    never fires).

    Entries may be added in any order; installation sorts by time, with
    insertion order breaking ties.  ``install`` may be called once.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, str, Callable[[], None]]] = []
        self._installed = False
        #: (time, label) of every entry that has fired, in firing order.
        self.fired: List[Tuple[float, str]] = []

    def at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> "Timeline":
        """Add an event at absolute simulated ``time``; returns self."""
        if time < 0:
            raise SimulationError(f"timeline entry at negative time {time}")
        if self._installed:
            raise SimulationError("timeline is already installed")
        self._entries.append((time, len(self._entries), label, callback))
        return self

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[Tuple[float, str]]:
        """The scripted (time, label) pairs in execution order."""
        return [(t, label) for t, __, label, __cb in sorted(self._entries)]

    def install(self, sim: Simulator) -> List[EventHandle]:
        """Schedule every entry onto ``sim``; returns the event handles."""
        if self._installed:
            raise SimulationError("timeline is already installed")
        self._installed = True
        handles = []
        for time, __, label, callback in sorted(self._entries):

            def fire(time=time, label=label, callback=callback) -> None:
                self.fired.append((time, label))
                callback()

            handles.append(sim.schedule_at(time, fire))
        return handles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeline entries={len(self._entries)} fired={len(self.fired)}>"
