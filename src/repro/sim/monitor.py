"""Measurement primitives for simulated experiments.

These are deliberately simple, allocation-light accumulators: experiments
in this library run hundreds of thousands of simulated events and probes
are on the hot path.

* :class:`Counter` — named monotonic counters.
* :class:`Ewma` — exponentially weighted moving average (used by the
  switching oracle to smooth latency/load signals, mirroring the
  hysteresis discussion in §7 of the paper).
* :class:`Summary` — streaming min/max/mean/stddev plus full sample
  retention for exact quantiles (experiments are small enough to afford
  keeping samples; this keeps percentile math exact and honest).
* :class:`TimeSeries` — (time, value) pairs for plotting figure-style
  output.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Ewma", "Summary", "TimeSeries"]


class Counter:
    """A bag of named monotonic counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters (a copy)."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts!r})"


class Ewma:
    """Exponentially weighted moving average.

    ``alpha`` is the weight of each new observation; the first observation
    initializes the average directly.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None
        self._count = 0

    def observe(self, sample: float) -> float:
        """Fold ``sample`` in and return the updated average."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (sample - self._value)
        self._count += 1
        return self._value

    def decay(self, steps: int, toward: float = 0.0) -> Optional[float]:
        """Fold ``steps`` observations of ``toward`` in, in closed form.

        Equivalent to calling :meth:`observe`\\ ``(toward)`` ``steps``
        times — each step multiplies the distance to ``toward`` by
        ``1 - alpha`` — but O(1), so idle-time decay stays cheap no
        matter how long the idle stretch was.  A no-op before the first
        real observation (there is no average to decay yet).
        """
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        if steps == 0 or self._value is None:
            return self._value
        factor = (1.0 - self.alpha) ** steps
        self._value = toward + (self._value - toward) * factor
        self._count += steps
        return self._value

    @property
    def value(self) -> Optional[float]:
        """Current average, or None before any observation."""
        return self._value

    @property
    def count(self) -> int:
        return self._count

    def reset(self) -> None:
        """Forget all observations."""
        self._value = None
        self._count = 0


class Summary:
    """Streaming summary statistics with exact quantiles.

    Keeps all samples (sorted lazily) so quantiles are exact rather than
    sketch-approximate; experiment sample counts in this library are in the
    tens of thousands at most.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True
        self._sum = 0.0
        # Welford running moments for the variance: the naive
        # sum-of-squares formula catastrophically cancels for
        # large-magnitude samples (e.g. wall-clock timestamps),
        # collapsing the variance to 0.  The plain sum stays the source
        # of truth for ``mean`` (bit-identical to the seed fixtures).
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, sample: float) -> None:
        """Record one sample."""
        sample = float(sample)
        self._samples.append(sample)
        self._sorted = False
        self._sum += sample
        delta = sample - self._mean
        self._mean += delta / len(self._samples)
        self._m2 += delta * (sample - self._mean)

    def extend(self, samples: Sequence[float]) -> None:
        """Record a batch of samples."""
        for sample in samples:
            self.observe(sample)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return self._sum / len(self._samples)

    @property
    def stddev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        return math.sqrt(max(0.0, self._m2 / n))

    @property
    def minimum(self) -> float:
        self._ensure_sorted()
        return self._samples[0]

    @property
    def maximum(self) -> float:
        self._ensure_sorted()
        return self._samples[-1]

    def quantile(self, q: float) -> float:
        """Exact quantile by linear interpolation, q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            raise ValueError("no samples")
        self._ensure_sorted()
        pos = q * (len(self._samples) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return self._samples[lo]
        frac = pos - lo
        return self._samples[lo] * (1 - frac) + self._samples[hi] * frac

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def _ensure_sorted(self) -> None:
        if not self._samples:
            raise ValueError("no samples")
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._samples:
            return "Summary(empty)"
        return (
            f"Summary(n={self.count} mean={self.mean:.6g} "
            f"min={self.minimum:.6g} max={self.maximum:.6g})"
        )


class TimeSeries:
    """An append-only series of (time, value) observations."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append a (time, value) observation."""
        self._points.append((time, value))

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def values(self) -> List[float]:
        """The observed values, in order."""
        return [v for __, v in self._points]

    def times(self) -> List[float]:
        """The observation times, in order."""
        return [t for t, __ in self._points]

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Points with start <= time < end."""
        return [(t, v) for t, v in self._points if start <= t < end]

    def __len__(self) -> int:
        return len(self._points)
