"""Frozen binary-heap event engine, kept as a differential reference.

This is the pre-wheel :class:`~repro.sim.engine.Simulator` (binary heap
with counted lazy cancellation and compaction), preserved verbatim so
that

* the differential timer-stress tests can replay identical random
  schedule/cancel/reschedule workloads on both engines and assert
  bit-identical firing order and ``pending()`` counts, and
* the speed benchmarks (``bench_hotpath``'s timer-churn kernel,
  ``bench_scale``'s engine-uplift section) can measure the hashed
  timer wheel against exactly the implementation it replaced.

Nothing on a production path may import this module; the boundary test
in ``tests/test_runtime_boundary.py`` pins production code to
``repro.sim.engine``.  Do not "fix" or optimize this file — its value
is that it does not move.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["HeapEventHandle", "HeapSimulator"]


class HeapEventHandle:
    """A cancellable reference to an event scheduled on the heap engine."""

    __slots__ = ("time", "_seq", "_callback", "_cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: "Optional[HeapSimulator]" = None,
    ):
        self.time = time
        self._seq = seq
        self._callback = callback
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._callback = _NOOP
        sim, self._sim = self._sim, None
        if sim is not None:
            sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<HeapEventHandle t={self.time:.6f} {state}>"


def _noop() -> None:
    return None


_NOOP = _noop


class HeapSimulator:
    """The heap-based deterministic discrete-event simulator (frozen)."""

    COMPACT_MIN_DEAD = 256

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, HeapEventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._live = 0
        self._dead = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def pending(self) -> int:
        return self._live

    def _note_cancel(self) -> None:
        self._live -= 1
        self._dead += 1
        if self._dead >= self.COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        self._queue = [e for e in self._queue if not e[2]._cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> HeapEventHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> HeapEventHandle:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        handle = HeapEventHandle(time, next(self._seq), callback, sim=self)
        heapq.heappush(self._queue, (time, handle._seq, handle))
        self._live += 1
        return handle

    def step(self) -> bool:
        while self._queue:
            time, __, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                self._dead -= 1
                continue
            self._now = time
            self._events_processed += 1
            self._live -= 1
            handle._sim = None
            callback = handle._callback
            handle._callback = _NOOP
            callback()
            return True
        return False

    def run(
        self,
        max_events: Optional[int] = None,
        until: Optional[float] = None,
    ) -> int:
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until:.6f}) is before now={self._now:.6f}"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        fired = 0
        try:
            while True:
                if until is not None:
                    next_time = self._peek_time()
                    if next_time is not None and next_time > until:
                        raise SimulationError(
                            f"runaway simulation: {self.pending()} event(s) "
                            f"still queued past the t={until:.6f} deadline "
                            f"after {fired} fired (next at t={next_time:.6f})"
                        )
                if not self.step():
                    break
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return fired

    def run_until(self, time: float) -> int:
        if time < self._now:
            raise SimulationError(
                f"run_until({time:.6f}) is before now={self._now:.6f}"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                next_time = self._peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
                fired += 1
            self._now = max(self._now, time)
        finally:
            self._running = False
        return fired

    def run_for(self, duration: float) -> int:
        return self.run_until(self._now + duration)

    def _peek_time(self) -> Optional[float]:
        while self._queue:
            time, __, handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                self._dead -= 1
                continue
            return time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HeapSimulator now={self._now:.6f} pending={self.pending()} "
            f"fired={self._events_processed}>"
        )
