"""Per-cell seed derivation: one recipe book for every partitioned run.

Everything this repo fans out — sweep cells across a worker pool
(``benchmarks/sweeprunner.py`` / ``repro.workloads.parallel``), fleet
groups across shard processes (``repro.fleet.sharding``) — leans on the
same invariant: a unit of work derives **all** of its randomness from
its own parameters, never from which process runs it or in what order.
Partition the work any way you like and every unit reproduces the same
outcome, so merged artifacts are byte-identical for any ``--workers``
or ``--shards`` value.

The arithmetic below is a **pinned contract**, not a style choice: the
checked-in artifacts (``figure2.json``, ``sweep.json``, ``fleet.json``)
were produced with exactly these derivations, and the parity gates in
CI diff against them.  Changing a formula silently reseeds every cell
and drifts every fixture — hence one module, one set of constants, and
pinned-value tests (``tests/sim/test_seeding.py``) instead of the same
expressions re-typed at each call site.

Two styles coexist, both layout-invariant:

* **integer offsets** — sweep cells build a fresh
  :class:`~repro.sim.rng.RandomStreams` from ``master + f(cell)``;
  the offset mixes the cell's coordinates (with spacing constants
  keeping distinct grids from colliding on one master seed).
* **named streams** — the fleet derives per-group/per-sender streams
  from one master ``RandomStreams`` by *name* (sha256 of the label, so
  independent of creation order); the names carry the global group
  index, which is what lets a shard reproduce its slice.
"""

from __future__ import annotations

from .rng import RandomStreams

__all__ = [
    "FIGURE2_REPEAT_STRIDE",
    "SCALE_SIZE_STRIDE",
    "SCALE_SWITCH_BASE",
    "figure2_cell_seed",
    "figure2_repeat_seed",
    "fleet_group_streams",
    "fleet_sender_stream",
    "scale_point_seed",
    "scale_switch_seed",
]

#: Spacing between repeated-run seeds of one Figure 2 point — wide
#: enough that a repeat grid never collides with a sender-count grid.
FIGURE2_REPEAT_STRIDE = 1000
#: Spacing between group sizes in the scale grid (> any max_batch).
SCALE_SIZE_STRIDE = 31
#: Offset lifting switch cells clear of every throughput cell.
SCALE_SWITCH_BASE = 977


def figure2_cell_seed(seed: int, active_senders: int) -> int:
    """Seed of one Figure 2 cell (``protocol`` draws no randomness)."""
    return seed + active_senders


def figure2_repeat_seed(seed: int, repeat: int) -> int:
    """Seed of the ``repeat``-th independent rerun of one cell."""
    return seed + FIGURE2_REPEAT_STRIDE * repeat


def scale_point_seed(seed: int, group_size: int, max_batch: int) -> int:
    """Seed of one scale-sweep throughput cell."""
    return seed + SCALE_SIZE_STRIDE * group_size + max_batch


def scale_switch_seed(seed: int, max_batch: int) -> int:
    """Seed of one scale-sweep mid-run-switch cell."""
    return seed + SCALE_SWITCH_BASE + max_batch


def fleet_group_streams(streams: RandomStreams, index: int) -> RandomStreams:
    """The stack-side stream family of fleet group ``index`` (global)."""
    return streams.fork(f"group{index}")


def fleet_sender_stream(streams: RandomStreams, index: int, rank: int):
    """The Poisson workload stream of member ``rank`` of group ``index``."""
    return streams.stream(f"fleet{index}.{rank}")
