"""Discrete-event simulation substrate.

This package replaces the paper's physical testbed (SparcStation-20s on a
10 Mbit Ethernet) with a deterministic simulator:

* :mod:`repro.sim.engine` — the event loop and simulated clock.
* :mod:`repro.sim.rng` — named, seeded random streams.
* :mod:`repro.sim.seeding` — the pinned per-cell seed recipes every
  partitioned run (sweep workers, fleet shards) derives from.
* :mod:`repro.sim.monitor` — counters, EWMAs, summaries, time series.
"""

from .engine import EventHandle, Simulator, Timeline
from .monitor import Counter, Ewma, Summary, TimeSeries
from .rng import RandomStreams

__all__ = [
    "EventHandle",
    "Simulator",
    "Timeline",
    "Counter",
    "Ewma",
    "Summary",
    "TimeSeries",
    "RandomStreams",
]
