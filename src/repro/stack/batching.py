"""Message batching: many application casts, one wire frame.

Per-packet costs dominate the total-order protocols at scale — every
frame pays host CPU time at the sender, a slot on the shared medium, CPU
time at each receiver, and (for the sequencer) per-message ordering work.
:class:`BatchingLayer` amortizes all of them: casts submitted while a
batch is open are coalesced into a single wrapper message that travels
the stack (and the wire) as one frame, and is unpacked back into its
constituent messages on the way up, in order.

Placement matters.  The layer composes at the *top* of a protocol slot,
underneath the switching core: the SP counts application sends before
they reach the batcher and counts deliveries after the batcher has
unpacked them, so a batch counts as its constituent messages and the
PREPARE/OK send counts and SWITCH-vector drain check stay exact.  A
batch left queued when a switch begins still drains: the linger timer
flushes it through the (old) slot it was submitted to.

Knobs:

* ``max_batch`` — flush as soon as this many casts are queued.
* ``linger`` — flush an incomplete batch this many seconds after its
  first message was queued.  ``0`` flushes at the end of the current
  event cascade: same-instant bursts still coalesce, and no latency is
  added in virtual time.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import StackError
from ..sim.monitor import Counter
from .layer import Layer
from .message import BASE_WIRE_OVERHEAD, Message

__all__ = ["BatchingLayer"]

_HEADER = "batch"
_HEADER_SIZE = 8

#: Per-constituent framing (length prefix) inside a batch frame.  Each
#: constituent drops its own BASE_WIRE_OVERHEAD — the batch pays it once.
_PER_MESSAGE_FRAMING = 8

#: Batch-size histogram buckets (messages per batch, not seconds).
_SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


class BatchingLayer(Layer):
    """Coalesce group casts into one wire frame per batch.

    Args:
        max_batch: maximum constituent messages per batch (>= 1).
        linger: seconds an incomplete batch may wait for company.
    """

    name = "batch"

    def __init__(self, max_batch: int = 8, linger: float = 0.0) -> None:
        super().__init__()
        if max_batch < 1:
            raise StackError(f"max_batch must be >= 1, got {max_batch}")
        if linger < 0:
            raise StackError(f"linger must be non-negative, got {linger}")
        self.max_batch = max_batch
        self.linger = linger
        self._queue: List[Message] = []
        self._timer = None
        self.stats = Counter()

    # ------------------------------------------------------------------
    # Downward: queue, flush on size or linger
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        if msg.dest is not None:
            # Control traffic of a layer above: never delayed, never mixed
            # into a group-cast batch.
            self.stats.incr("passthrough")
            self.send_down(msg)
            return
        self.stats.incr("queued")
        self._queue.append(msg)
        if len(self._queue) >= self.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = self.ctx.after(self.linger, self.flush)

    def stop(self) -> None:
        super().stop()
        self.flush()

    def flush(self) -> None:
        """Send the open batch now (no-op when nothing is queued)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        self.stats.incr("batches")
        self.stats.incr("batched_msgs", len(batch))
        obs = self.ctx.obs
        if obs.enabled:
            obs.count("batch.batches")
            obs.count("batch.messages", len(batch))
            obs.bus.metrics.observe(
                "batch.size_msgs", len(batch), bounds=_SIZE_BUCKETS
            )
        if len(batch) == 1:
            # A lone message goes out bare — identical to the unbatched
            # path, and nothing downstream needs to know we exist.
            self.send_down(batch[0])
            return
        payload = sum(
            m.size_bytes - BASE_WIRE_OVERHEAD + _PER_MESSAGE_FRAMING
            for m in batch
        )
        frame = self.ctx.make_message(tuple(batch), payload, dest=None)
        self.send_down(frame.with_header(_HEADER, {"n": len(batch)}, _HEADER_SIZE))

    # ------------------------------------------------------------------
    # Upward: unpack in order
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        header = msg.header(_HEADER)
        if header is None:
            self.deliver_up(msg)
            return
        batch = msg.body
        if len(batch) != header["n"]:  # pragma: no cover - defensive
            raise StackError(
                f"batch frame claims {header['n']} messages, carries {len(batch)}"
            )
        self.stats.incr("unbatched", len(batch))
        for part in batch:
            self.deliver_up(part)

    @property
    def queued(self) -> int:
        """Messages waiting in the open batch."""
        return len(self._queue)
