"""Layered protocol-stack framework (the paper's §3 model, executable).

* :mod:`repro.stack.message` — immutable messages with per-layer headers.
* :mod:`repro.stack.layer` — the Layer abstraction and composition.
* :mod:`repro.stack.batching` — cast coalescing: one wire frame per batch.
* :mod:`repro.stack.multiplex` — logical channels over one endpoint
  (the MULTIPLEX component of Figure 1).
* :mod:`repro.stack.transport` — binding to a simulated network.
* :mod:`repro.stack.stack` — per-process assembly and group builders.
* :mod:`repro.stack.membership` — groups, rings, and views.
"""

from .batching import BatchingLayer
from .layer import Layer, LayerContext, compose, start_layers
from .membership import Group, View
from .message import BASE_WIRE_OVERHEAD, Message, MessageId
from .multiplex import Multiplexer, MuxChannel
from .stack import DEFAULT_BODY_SIZE, ProcessStack, build_group
from .transport import Transport

__all__ = [
    "BatchingLayer",
    "Layer",
    "LayerContext",
    "compose",
    "start_layers",
    "Group",
    "View",
    "BASE_WIRE_OVERHEAD",
    "Message",
    "MessageId",
    "Multiplexer",
    "MuxChannel",
    "DEFAULT_BODY_SIZE",
    "ProcessStack",
    "build_group",
    "Transport",
]
