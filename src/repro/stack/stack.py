"""Process stacks: application + layers + transport, per process.

:class:`ProcessStack` assembles one process's protocol stack over a
network model and exposes the application-facing API the paper's model
assumes: ``cast`` submits a Send event at the top; registered deliver
callbacks observe Deliver events at the top.

:func:`build_group` instantiates the *same* stack at every member ("every
process is required to have the same stack of layers", §3).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import StackError
from ..net.base import Network
from ..obs.bus import Bus
from ..runtime.api import Runtime
from ..sim.rng import RandomStreams
from .layer import Layer, LayerContext, compose, start_layers
from .membership import Group
from .message import Message, MessageId
from .transport import Transport

__all__ = ["ProcessStack", "build_group"]

DeliverCallback = Callable[[Message], None]
SendCallback = Callable[[Message], None]

#: Default application payload size: 1 KB, matching the Figure 2 workload.
DEFAULT_BODY_SIZE = 1024


class ProcessStack:
    """One process's protocol stack.

    Args:
        runtime: the clock/timer runtime (simulated or real).
        network: network model shared by the group.
        group: the process group.
        rank: this process's rank.
        layers: top-to-bottom layer list (may be empty).
        streams: RNG streams for this process (derived from rank if None).
        bus: instrumentation bus shared by the run; defaults to the
            process-wide default (disabled unless the harness enabled it).
    """

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        group: Group,
        rank: int,
        layers: Sequence[Layer],
        streams: Optional[RandomStreams] = None,
        bus: Optional[Bus] = None,
    ) -> None:
        self.runtime = runtime
        self.group = group
        self.rank = rank
        self.layers = list(layers)
        self._deliver_callbacks: List[DeliverCallback] = []
        self._send_callbacks: List[SendCallback] = []

        cpu_work = getattr(network, "cpu_work", None)
        bound_cpu = None
        if cpu_work is not None:
            bound_cpu = lambda dur, then: cpu_work(rank, dur, then)  # noqa: E731
        self.ctx = LayerContext(
            runtime, group, rank, streams, cpu_work=bound_cpu, bus=bus
        )

        self.transport = Transport(network, group, rank)
        self._top_send, bottom_receive = compose(
            self.layers, self.ctx, self.transport.send, self._app_deliver
        )
        self.transport.on_receive(bottom_receive)
        start_layers(self.layers)

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def cast(self, body: Any, body_size: int = DEFAULT_BODY_SIZE) -> MessageId:
        """Multicast ``body`` to the whole group (a Send event).

        Returns the new message's id so callers can correlate deliveries.
        """
        msg = self.ctx.make_message(body, body_size)
        for callback in self._send_callbacks:
            callback(msg)
        self._top_send(msg)
        return msg.mid

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register an application deliver callback (may register many)."""
        self._deliver_callbacks.append(callback)

    def on_send(self, callback: SendCallback) -> None:
        """Register a hook observing Send events (used by trace recorders)."""
        self._send_callbacks.append(callback)

    def _app_deliver(self, msg: Message) -> None:
        for callback in self._deliver_callbacks:
            callback(msg)

    def can_send(self) -> bool:
        """True when every layer is willing to accept a send right now."""
        return all(layer.can_send() for layer in self.layers)

    @property
    def sim(self) -> Runtime:
        """Back-compat alias for :attr:`runtime` (pre-boundary name)."""
        return self.runtime

    def find_layer(self, layer_type: type) -> Any:
        """Fetch the first layer of the given type (testing/telemetry)."""
        for layer in self.layers:
            if isinstance(layer, layer_type):
                return layer
        raise StackError(f"no {layer_type.__name__} in stack of rank {self.rank}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = " | ".join(layer.name for layer in self.layers) or "direct"
        return f"<ProcessStack rank={self.rank} [{names}]>"


def build_group(
    runtime: Runtime,
    network: Network,
    group: Group,
    layer_factory: Callable[[int], Sequence[Layer]],
    streams: Optional[RandomStreams] = None,
    bus: Optional[Bus] = None,
) -> Dict[int, ProcessStack]:
    """Build one :class:`ProcessStack` per group member.

    ``layer_factory(rank)`` must return a *fresh* top-to-bottom layer list
    for each member — layers hold per-process state and cannot be shared.
    """
    master = streams or RandomStreams(0)
    stacks: Dict[int, ProcessStack] = {}
    for rank in group:
        stacks[rank] = ProcessStack(
            runtime,
            network,
            group,
            rank,
            layer_factory(rank),
            streams=master.fork(f"rank{rank}"),
            bus=bus,
        )
    return stacks
