"""The MULTIPLEX layer (Figure 1 of the paper).

The switching composition needs *private* logical channels: one for the
switching protocol's own control traffic and one per subordinate protocol
("Notice that SWITCH requires a private communication channel for itself,
while each underlying protocol also needs a private channel").

:class:`Multiplexer` simulates multiple connections over one underlying
channel: each :class:`MuxChannel` tags downward messages with its channel
id; upward traffic is dispatched to the owning channel by that tag.

Channels are keyed ``(group_id, channel_id)``: one multiplexer can host
the private channels of *many* switching groups over a single transport
(the fleet runtime's sharing point).  Group 0 is the default single-group
world — its channels tag and dispatch exactly as before the fleet
refactor, so single-group wire traffic is unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..errors import StackError
from ..sim.monitor import Counter
from .layer import DeliverFn, SendFn
from .message import Message

__all__ = ["Multiplexer", "MuxChannel"]

_HEADER = "mux"
_HEADER_SIZE = 2


class MuxChannel:
    """One logical channel over a :class:`Multiplexer`.

    Acts as the "bottom of the world" for the sub-stack mounted on it:
    the sub-stack sends via :meth:`send` and receives via the ``deliver``
    callback installed with :meth:`on_deliver`.
    """

    def __init__(
        self, mux: "Multiplexer", channel_id: int, group: int = 0
    ) -> None:
        self._mux = mux
        self.channel_id = channel_id
        self.group = group
        self._deliver: Optional[DeliverFn] = None

    def send(self, msg: Message) -> None:
        """Tag and forward a downward message."""
        self._mux._send_tagged(self.channel_id, msg, self.group)

    def on_deliver(self, deliver: DeliverFn) -> None:
        """Install the upward callback for this channel (once)."""
        if self._deliver is not None:
            raise StackError(
                f"channel {self.channel_id} already has a deliver callback"
            )
        self._deliver = deliver

    def detach(self) -> None:
        """Remove the upward callback so the channel can be rewired.

        Teardown primitive: a :class:`GroupHandle` tearing a sub-stack
        down detaches its channels, after which a rebuilt stack may call
        :meth:`on_deliver` again.
        """
        self._deliver = None

    @property
    def wired(self) -> bool:
        """True while a deliver callback is installed."""
        return self._deliver is not None

    def _receive(self, msg: Message) -> None:
        if self._deliver is None:
            raise StackError(
                f"channel {self.channel_id} received traffic before wiring"
            )
        self._deliver(msg)


class Multiplexer:
    """Simulates multiple connections over a single communication channel.

    ``bottom_send`` is called as ``bottom_send(msg)`` for group-0 traffic
    (the pre-fleet signature, so existing transports plug in unchanged)
    and ``bottom_send(msg, group)`` for fleet groups.
    """

    def __init__(self, bottom_send: SendFn) -> None:
        self._bottom_send = bottom_send
        self._channels: Dict[Tuple[int, int], MuxChannel] = {}
        self.stats = Counter()

    def channel(self, channel_id: int, group: int = 0) -> MuxChannel:
        """Create (or fetch) the logical channel with this id."""
        if channel_id < 0:
            raise StackError(f"channel id must be non-negative, got {channel_id}")
        if group < 0:
            raise StackError(f"group id must be non-negative, got {group}")
        key = (group, channel_id)
        chan = self._channels.get(key)
        if chan is None:
            chan = MuxChannel(self, channel_id, group)
            self._channels[key] = chan
        return chan

    def remove_channel(self, channel_id: int, group: int = 0) -> None:
        """Drop a channel entirely (teardown); unknown ids raise."""
        chan = self._channels.pop((group, channel_id), None)
        if chan is None:
            raise StackError(
                f"no mux channel {channel_id} in group {group} to remove"
            )
        chan.detach()

    def group_channels(self, group: int) -> Tuple[MuxChannel, ...]:
        """All live channels belonging to ``group``."""
        return tuple(
            chan for (gid, __), chan in self._channels.items() if gid == group
        )

    def _send_tagged(self, channel_id: int, msg: Message, group: int = 0) -> None:
        tagged = msg.with_header(_HEADER, channel_id, _HEADER_SIZE)
        if group == 0:
            self.stats.incr(f"tx[{channel_id}]")
            self._bottom_send(tagged)
        else:
            self.stats.incr(f"tx[g{group}:{channel_id}]")
            self._bottom_send(tagged, group)

    def receive(self, msg: Message, group: int = 0) -> None:
        """Upward dispatch: route by (group, channel tag)."""
        channel_id = msg.header(_HEADER)
        if channel_id is None:
            raise StackError(f"untagged message reached multiplexer: {msg!r}")
        chan = self._channels.get((group, channel_id))
        if chan is None:
            raise StackError(
                f"message for unknown mux channel {channel_id} "
                f"(group {group}): {msg!r}"
            )
        if group == 0:
            self.stats.incr(f"rx[{channel_id}]")
        else:
            self.stats.incr(f"rx[g{group}:{channel_id}]")
        chan._receive(msg.without_header(_HEADER, _HEADER_SIZE))
