"""The MULTIPLEX layer (Figure 1 of the paper).

The switching composition needs *private* logical channels: one for the
switching protocol's own control traffic and one per subordinate protocol
("Notice that SWITCH requires a private communication channel for itself,
while each underlying protocol also needs a private channel").

:class:`Multiplexer` simulates multiple connections over one underlying
channel: each :class:`MuxChannel` tags downward messages with its channel
id; upward traffic is dispatched to the owning channel by that tag.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import StackError
from ..sim.monitor import Counter
from .layer import DeliverFn, SendFn
from .message import Message

__all__ = ["Multiplexer", "MuxChannel"]

_HEADER = "mux"
_HEADER_SIZE = 2


class MuxChannel:
    """One logical channel over a :class:`Multiplexer`.

    Acts as the "bottom of the world" for the sub-stack mounted on it:
    the sub-stack sends via :meth:`send` and receives via the ``deliver``
    callback installed with :meth:`on_deliver`.
    """

    def __init__(self, mux: "Multiplexer", channel_id: int) -> None:
        self._mux = mux
        self.channel_id = channel_id
        self._deliver: Optional[DeliverFn] = None

    def send(self, msg: Message) -> None:
        """Tag and forward a downward message."""
        self._mux._send_tagged(self.channel_id, msg)

    def on_deliver(self, deliver: DeliverFn) -> None:
        """Install the upward callback for this channel (once)."""
        if self._deliver is not None:
            raise StackError(
                f"channel {self.channel_id} already has a deliver callback"
            )
        self._deliver = deliver

    def _receive(self, msg: Message) -> None:
        if self._deliver is None:
            raise StackError(
                f"channel {self.channel_id} received traffic before wiring"
            )
        self._deliver(msg)


class Multiplexer:
    """Simulates multiple connections over a single communication channel."""

    def __init__(self, bottom_send: SendFn) -> None:
        self._bottom_send = bottom_send
        self._channels: Dict[int, MuxChannel] = {}
        self.stats = Counter()

    def channel(self, channel_id: int) -> MuxChannel:
        """Create (or fetch) the logical channel with this id."""
        if channel_id < 0:
            raise StackError(f"channel id must be non-negative, got {channel_id}")
        chan = self._channels.get(channel_id)
        if chan is None:
            chan = MuxChannel(self, channel_id)
            self._channels[channel_id] = chan
        return chan

    def _send_tagged(self, channel_id: int, msg: Message) -> None:
        self.stats.incr(f"tx[{channel_id}]")
        self._bottom_send(msg.with_header(_HEADER, channel_id, _HEADER_SIZE))

    def receive(self, msg: Message) -> None:
        """Upward dispatch: route by channel tag."""
        channel_id = msg.header(_HEADER)
        if channel_id is None:
            raise StackError(f"untagged message reached multiplexer: {msg!r}")
        chan = self._channels.get(channel_id)
        if chan is None:
            raise StackError(
                f"message for unknown mux channel {channel_id}: {msg!r}"
            )
        self.stats.incr(f"rx[{channel_id}]")
        chan._receive(msg.without_header(_HEADER, _HEADER_SIZE))
