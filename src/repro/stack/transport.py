"""Transport: the boundary between a stack and a network model.

The transport resolves a message's destination (``None`` means the whole
group, including a loopback copy to the sender) and hands it to the
network endpoint; arriving packets flow back up as messages.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import StackError
from ..net.base import Endpoint, Network
from ..net.packet import Packet
from ..sim.monitor import Counter
from .layer import DeliverFn
from .membership import Group
from .message import Message

__all__ = ["Transport"]


class Transport:
    """Binds one process's stack bottom to a network endpoint."""

    def __init__(self, network: Network, group: Group, rank: int) -> None:
        if rank not in group:
            raise StackError(f"rank {rank} not in group {group!r}")
        self.group = group
        self.rank = rank
        self._receive_up: Optional[DeliverFn] = None
        self.stats = Counter()
        self.endpoint: Endpoint = network.attach(rank, self._on_packet)

    def on_receive(self, deliver: DeliverFn) -> None:
        """Install the stack-bottom receive callback (once)."""
        if self._receive_up is not None:
            raise StackError("transport already has a receive callback")
        self._receive_up = deliver

    def detach(self) -> None:
        """Release the network node so a rebuilt stack can re-attach."""
        self.endpoint.network.detach(self.rank)
        self._receive_up = None

    # ------------------------------------------------------------------
    # Downward: message -> network
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Resolve the destination set and transmit on the network."""
        size = msg.size_bytes
        if msg.dest is None:
            self.stats.incr("multicast")
            self.endpoint.multicast(self.group.members, msg, size)
        elif len(msg.dest) == 1:
            self.stats.incr("unicast")
            self.endpoint.unicast(msg.dest[0], msg, size)
        elif msg.dest:
            self.stats.incr("multicast")
            self.endpoint.multicast(msg.dest, msg, size)
        else:
            # Empty destination set: legal no-op (e.g. group of one with
            # the sender excluded).
            self.stats.incr("empty_dest")

    # ------------------------------------------------------------------
    # Upward: packet -> message
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if self._receive_up is None:
            raise StackError(f"rank {self.rank}: packet before wiring complete")
        payload = packet.payload
        if not isinstance(payload, Message):
            raise StackError(f"non-message payload on the wire: {payload!r}")
        self.stats.incr("received")
        self._receive_up(payload)
