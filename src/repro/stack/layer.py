"""The layer abstraction and stack composition.

The paper's §3 model: a protocol is a module with a top side and a bottom
side; applications submit Send events at the top; the network submits
Deliver events at the bottom; and protocols compose by layering "much like
Lego blocks" — a stack of protocols is another protocol.

Concretely a :class:`Layer` receives:

* :meth:`Layer.send` — a message travelling *down* from the layer above;
* :meth:`Layer.receive` — a message travelling *up* from the layer below;

and emits through :meth:`Layer.send_down` / :meth:`Layer.deliver_up`.
Layers that originate their own control traffic (NAKs, tokens, sequencer
forwards) mark it with a private header and consume it in ``receive``.

Composition is functional: :func:`compose` wires a list of layers between
a bottom send function and a top deliver callback and hands back the
resulting (top send, bottom receive) pair.  This shape lets sub-stacks be
embedded anywhere — which is exactly how the switching protocol hosts its
subordinate protocols (§4, Figure 1).
"""

from __future__ import annotations

import itertools
import time as _time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import StackError
from ..obs.bus import Bus, BusScope, default_bus
from ..runtime.api import Runtime, TimerHandle
from ..sim.rng import RandomStreams
from .membership import Group
from .message import Message, MessageId

__all__ = [
    "LayerContext",
    "Layer",
    "compose",
    "start_layers",
    "stop_layers",
    "SendFn",
    "DeliverFn",
]

SendFn = Callable[[Message], None]
DeliverFn = Callable[[Message], None]


class LayerContext:
    """Per-process runtime services shared by every layer in one stack.

    Attributes:
        runtime: the clock/timer runtime (simulated or real; layers must
            not care which — see :mod:`repro.runtime.api`).
        group: the process group this stack belongs to.
        rank: this process's rank within the group.
        streams: named RNG streams scoped to this process.
        bus: instrumentation bus; defaults to the process-wide default
            (disabled unless the harness enabled it).  Exposed to layers
            as :attr:`obs`, a rank-stamped :class:`~repro.obs.bus.BusScope`.
        group_id: fleet group id; labels the obs scope (``[g<id>]``
            metric suffix) so per-group rates stay separable on a shared
            bus.  ``None`` (the single-group default) leaves the scope —
            and every metric name — exactly as before the fleet refactor.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: Group,
        rank: int,
        streams: Optional[RandomStreams] = None,
        cpu_work: Optional[Callable[[float, Callable[[], None]], None]] = None,
        bus: Optional[Bus] = None,
        group_id: Optional[int] = None,
    ) -> None:
        if rank not in group:
            raise StackError(f"rank {rank} not in group {group!r}")
        self.runtime = runtime
        self.group = group
        self.rank = rank
        self.group_id = 0 if group_id is None else group_id
        self.streams = streams or RandomStreams(rank)
        self.bus = bus if bus is not None else default_bus()
        self.obs: BusScope = self.bus.scoped(rank, group_id)
        self._cpu_work = cpu_work
        self._mid_counter = itertools.count()

    # ------------------------------------------------------------------
    # Message identity
    # ------------------------------------------------------------------
    def next_mid(self) -> MessageId:
        """A process-unique message id (shared counter across all layers)."""
        return (self.rank, next(self._mid_counter))

    def make_message(
        self,
        body: Any,
        body_size: int,
        dest: Optional[Sequence[int]] = None,
    ) -> Message:
        """Mint a fresh message originated by this process."""
        return Message(
            sender=self.rank,
            mid=self.next_mid(),
            body=body,
            body_size=body_size,
            dest=None if dest is None else tuple(dest),
        )

    # ------------------------------------------------------------------
    # Time and CPU
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Runtime:
        """Back-compat alias for :attr:`runtime` (pre-boundary name)."""
        return self.runtime

    @property
    def now(self) -> float:
        return self.runtime.now

    def after(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule a layer timer."""
        return self.runtime.schedule(delay, callback)

    def cpu_work(self, duration: float, then: Callable[[], None]) -> None:
        """Model protocol processing time.

        On the Ethernet model this queues on the host's CPU (contending
        with packet handling); elsewhere it degrades to a plain delay.
        Zero duration invokes ``then`` synchronously.
        """
        if duration <= 0:
            then()
        elif self._cpu_work is not None:
            self._cpu_work(duration, then)
        else:
            self.runtime.schedule(duration, then)


class Layer:
    """Base class for protocol layers.

    Subclasses override :meth:`send` (traffic from above, headed down)
    and/or :meth:`receive` (traffic from below, headed up), and may use
    timers via ``self.ctx.after``.  The defaults pass traffic straight
    through, so a ``Layer()`` is the identity protocol.
    """

    #: Short stable key used for this layer's headers; subclasses override.
    name = "identity"

    def __init__(self) -> None:
        self.ctx: Optional[LayerContext] = None
        self._down: Optional[SendFn] = None
        self._up: Optional[DeliverFn] = None
        self._started = False

    # ------------------------------------------------------------------
    # Wiring (called by compose)
    # ------------------------------------------------------------------
    def bind(self, ctx: LayerContext) -> None:
        """Attach runtime services.  Called once, before start()."""
        if self.ctx is not None:
            raise StackError(f"layer {self.name} is already bound")
        self.ctx = ctx

    def start(self) -> None:
        """Hook for timers/initial control traffic.  Idempotent guard."""
        if self.ctx is None or self._down is None:
            raise StackError(f"layer {self.name} used before wiring completed")
        self._started = True

    def stop(self) -> None:
        """Teardown hook: stop originating traffic, cancel timers.

        The base implementation clears the started flag; layers that arm
        repeating timers override this (and guard their timer callbacks
        on ``self._started``) so a torn-down group goes quiet instead of
        ticking forever.  Idempotent.
        """
        self._started = False

    # ------------------------------------------------------------------
    # Vertical traffic — subclasses override these two
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Handle a message travelling down from the layer above."""
        self.send_down(msg)

    def receive(self, msg: Message) -> None:
        """Handle a message travelling up from the layer below."""
        self.deliver_up(msg)

    def can_send(self) -> bool:
        """Back-pressure query: may the layer above submit a send now?

        Layers implementing send-restricting properties (e.g. Amoeba)
        override this; a property-respecting application consults
        :meth:`ProcessStack.can_send` before casting.  Sending anyway is
        tolerated (the layer queues) but shows up as a property violation
        in recorded traces — which is sometimes exactly what an experiment
        wants to exhibit.
        """
        return True

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def send_down(self, msg: Message) -> None:
        """Emit a message to the layer (or transport) below."""
        if self._down is None:
            raise StackError(f"layer {self.name} has no downward connection")
        self._down(msg)

    def deliver_up(self, msg: Message) -> None:
        """Emit a message to the layer (or application) above."""
        if self._up is None:
            raise StackError(f"layer {self.name} has no upward connection")
        self._up(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rank = self.ctx.rank if self.ctx else "?"
        return f"<{type(self).__name__} name={self.name} rank={rank}>"


def compose(
    layers: Sequence[Layer],
    ctx: LayerContext,
    bottom_send: SendFn,
    top_deliver: DeliverFn,
) -> Tuple[SendFn, DeliverFn]:
    """Wire ``layers`` (top first) into a vertical pipeline.

    Returns ``(top_send, bottom_receive)``: feed application sends into
    ``top_send``; feed network arrivals into ``bottom_receive``.  With an
    empty layer list the two ends are connected directly.

    The caller is responsible for invoking :meth:`Layer.start` afterwards
    (see :func:`start_layers`), after *all* wiring in the process exists.

    When the context's instrumentation bus is enabled at composition
    time, each layer's upward ``receive`` is wrapped to profile per-layer
    deliver latency (CPU time spent inside the layer, recorded into the
    ``layer.<name>.deliver_cpu_s`` histogram) — with a disabled bus the
    raw bound methods are wired, so the instrumented and bare pipelines
    are literally the same callables.
    """
    layer_list: List[Layer] = list(layers)
    for layer in layer_list:
        layer.bind(ctx)

    # Wire from the bottom up: each layer's downward fn is the layer
    # below's send(); its upward fn is the layer above's receive().
    down: SendFn = bottom_send
    for layer in reversed(layer_list):
        layer_down = down
        down = layer.send
        # placeholder; the upward fn is fixed in the next pass
        layer._down = layer_down

    up: DeliverFn = top_deliver
    for layer in layer_list:
        layer._up = up
        up = _instrumented_receive(layer, ctx)

    top_send: SendFn = layer_list[0].send if layer_list else bottom_send
    bottom_receive: DeliverFn = up if layer_list else top_deliver
    return top_send, bottom_receive


def _instrumented_receive(layer: Layer, ctx: LayerContext) -> DeliverFn:
    """``layer.receive``, profiled when the bus is enabled at wiring time.

    Durations are measured with ``time.perf_counter`` — honest CPU cost
    on both runtimes (virtual time never advances inside a callback, so
    the runtime clock cannot see a layer's processing time).
    """
    if not ctx.obs.enabled:
        return layer.receive
    obs = ctx.obs
    receive = layer.receive
    cpu_metric = f"layer.{layer.name}.deliver_cpu_s"
    count_metric = f"layer.{layer.name}.delivers"

    def profiled(msg: Message) -> None:
        started = _time.perf_counter()
        receive(msg)
        obs.observe(cpu_metric, _time.perf_counter() - started)
        obs.count(count_metric)

    return profiled


def start_layers(layers: Sequence[Layer]) -> None:
    """Start layers top-to-bottom once all wiring exists."""
    for layer in layers:
        layer.start()


def stop_layers(layers: Sequence[Layer]) -> None:
    """Stop layers top-to-bottom (teardown)."""
    for layer in layers:
        layer.stop()
