"""Group membership: static groups, logical rings, and views.

The paper assumes a fixed process group whose members all run the same
stack (§3).  :class:`Group` captures that, plus the ring structure the
token-based protocols (token total order, token switching) need.

:class:`View` is the virtual-synchrony notion of an installed membership
epoch; the VS layer delivers views to the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from ..errors import StackError

__all__ = ["Group", "View"]


class Group:
    """A static process group identified by member ranks.

    Ranks need not be contiguous, but they must be unique.  The lowest
    rank is the *coordinator* (used as default sequencer / manager).
    """

    def __init__(self, members: Sequence[int]) -> None:
        member_tuple = tuple(members)
        if not member_tuple:
            raise StackError("a group needs at least one member")
        if len(set(member_tuple)) != len(member_tuple):
            raise StackError(f"duplicate ranks in group: {member_tuple}")
        self.members: Tuple[int, ...] = tuple(sorted(member_tuple))

    @staticmethod
    def of_size(n: int) -> "Group":
        """The group {0, 1, ..., n-1}."""
        return Group(range(n))

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def coordinator(self) -> int:
        return self.members[0]

    def __contains__(self, rank: int) -> bool:
        return rank in self.members

    def __iter__(self) -> Iterator[int]:
        return iter(self.members)

    def others(self, rank: int) -> Tuple[int, ...]:
        """All members except ``rank``."""
        self._check_member(rank)
        return tuple(m for m in self.members if m != rank)

    def ring_successor(self, rank: int) -> int:
        """The next member on the logical ring (sorted rank order)."""
        self._check_member(rank)
        idx = self.members.index(rank)
        return self.members[(idx + 1) % len(self.members)]

    def ring_distance(self, src: int, dst: int) -> int:
        """Hops from src to dst travelling in ring order."""
        self._check_member(src)
        self._check_member(dst)
        return (self.members.index(dst) - self.members.index(src)) % self.size

    def _check_member(self, rank: int) -> None:
        if rank not in self.members:
            raise StackError(f"rank {rank} is not a member of {self.members}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Group):
            return NotImplemented
        return self.members == other.members

    def __hash__(self) -> int:
        return hash(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Group{self.members}"


@dataclass(frozen=True)
class View:
    """An installed virtual-synchrony view.

    Attributes:
        view_id: monotonically increasing view number.
        members: ranks belonging to this view.
    """

    view_id: int
    members: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.view_id < 0:
            raise StackError(f"negative view id {self.view_id}")
        if len(set(self.members)) != len(self.members):
            raise StackError(f"duplicate members in view: {self.members}")

    def __contains__(self, rank: int) -> bool:
        return rank in self.members

    @property
    def coordinator(self) -> int:
        return min(self.members)
