"""Messages and per-layer headers.

A :class:`Message` is what flows vertically through a protocol stack and
horizontally through the network.  It mirrors the paper's model (§3): a
message has a *body* and a *sender*; layers annotate it with headers on
the way down and read them on the way up.

Messages are **immutable**.  A layer that wants to add a header gets a new
message via :meth:`Message.with_header`.  Immutability matters because a
multicast delivers the *same* payload object to many receivers; nobody
may scribble on it.

Headers are stored in a small **persistent chain** rather than a dict
that is copied on every push/pop.  Each :meth:`with_header` allocates one
chain node (O(1)) that points at the previous chain; :meth:`without_header`
either unlinks the top node (the common LIFO case — layers pop exactly
what the peer layer pushed, in reverse order) or shadows a deeper key
with a tombstone node.  Every message therefore shares header storage
with its ancestors, and a hop through a 14-layer stack allocates 14
nodes instead of 14 full dict copies.  Lookups walk the chain, which is
at most a few nodes deep; pathological push/pop churn is bounded by
compaction back into a plain-dict base node.

Identity: ``mid`` (message id) is a ``(origin, seq)`` pair unique per
originating process.  Note that identity is distinct from the *body* — the
No Replay property (Table 1) is about bodies, and its Composable failure
(§6.2) hinges on two distinct messages carrying the same body.
"""

from __future__ import annotations

from sys import getrefcount
from types import MappingProxyType
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..errors import StackError

__all__ = ["Message", "MessageId", "BASE_WIRE_OVERHEAD"]

MessageId = Tuple[int, int]

#: Fixed per-packet overhead (addresses, lengths, checksums) in bytes.
BASE_WIRE_OVERHEAD = 28

#: Tombstone marker for a header popped out of LIFO order.
_REMOVED = object()

#: Sentinel distinguishing "header absent" from "header value is None".
_MISSING = object()

#: Compact a chain into a dict base once a tombstone push finds it this
#: deep with a third or more of its links dead; normal stacks never get
#: close (their depth equals their header count).
_COMPACT_DEPTH = 16

#: A header chain is ``None`` (empty) or a tuple:
#:
#: * link — ``(mask, parent_chain, key, value)``, 4-tuple; ``value is
#:   _REMOVED`` marks a tombstone shadowing a deeper push;
#: * base — ``(mask, mapping)``, 2-tuple wrapping a plain dict (from the
#:   constructor or compaction; never mutated after construction).
#:
#: ``mask`` is a 64-bit bloom of every key at or below the node: a clear
#: bit proves a key absent, making the duplicate-push check and the
#: header-absent fast path O(1) with no walk.  Bare tuples instead of
#: node objects: allocating one is the entire per-push cost.
_Chain = Union[None, tuple]


def _key_bit(key: str) -> int:
    return 1 << (hash(key) & 63)


def _base(mapping: Dict[str, Any]) -> tuple:
    mask = 0
    for key in mapping:
        mask |= 1 << (hash(key) & 63)
    return (mask, mapping)


def _chain_get(chain: _Chain, key: str) -> Any:
    """The value of ``key`` in ``chain``, or ``_MISSING``."""
    node = chain
    while node is not None:
        if len(node) == 4:
            if node[2] == key:
                value = node[3]
                return _MISSING if value is _REMOVED else value
            node = node[1]
        else:  # dict base
            return node[1].get(key, _MISSING)
    return _MISSING


def _materialize(chain: _Chain) -> Dict[str, Any]:
    """Collapse a chain into a plain dict, oldest push first."""
    links = []
    node = chain
    while node is not None and len(node) == 4:
        links.append(node)
        node = node[1]
    mapping: Dict[str, Any] = dict(node[1]) if node is not None else {}
    for __, __, key, value in reversed(links):
        if value is _REMOVED:
            mapping.pop(key, None)
        else:
            mapping[key] = value
    return mapping


def _shadow(chain: _Chain, key: str) -> _Chain:
    """Push a tombstone for ``key``, compacting a degenerate chain."""
    depth = dead = 0
    node = chain
    while node is not None and len(node) == 4:
        depth += 1
        dead += node[3] is _REMOVED
        node = node[1]
    if depth >= _COMPACT_DEPTH and 3 * (dead + 1) >= depth:
        mapping = _materialize(chain)
        del mapping[key]
        return _base(mapping)
    # A bloom mask cannot shed bits, so the tombstone keeps its parent's.
    return (chain[0], chain, key, _REMOVED)


def _rebuild(sender, mid, body, body_size, dest, headers, header_size):
    """Pickle constructor: rebuild from a plain header dict."""
    return Message(sender, mid, body, body_size, dest, headers, header_size)


# ----------------------------------------------------------------------
# Message pooling for the steady-state deliver path
# ----------------------------------------------------------------------
#: Recycled :class:`Message` shells for the wire-decode path.  The
#: transport decodes thousands of messages per second whose lifetime is
#: exactly one synchronous trip up the stack; pooling the shell turns
#: that churn into two list ops instead of an allocation per datagram.
_POOL: List["Message"] = []

#: Never hold more shells than a burst plausibly needs.
_POOL_CAP = 1024

# Pool telemetry.  Module globals on purpose: a class-attribute
# increment would bump Message's type version tag on every decode,
# flushing CPython's per-type method cache and taxing every subsequent
# attribute lookup on the class — measurably slower than the pool wins.
_POOL_NEW = 0       # shells allocated fresh
_POOL_REUSED = 0    # shells served from the pool
_POOL_RECYCLED = 0  # shells returned to the pool
_POOL_REJECTED = 0  # recycle refused (still referenced, or pool full)


def _measure_exclusive_refs() -> int:
    """Refcount of an object reachable only through the recycle call
    shape — one caller local, one parameter, and ``getrefcount``'s own
    argument.  Measured at import so the exclusivity guard tracks the
    interpreter's calling convention rather than hard-coding it."""

    def recycle_shape(msg: object) -> int:
        return getrefcount(msg)

    probe = object()
    return recycle_shape(probe)


_EXCLUSIVE_REFS = _measure_exclusive_refs()


class Message:
    """An immutable stack message.

    Attributes:
        sender: rank of the process whose application sent the message
            (for protocol-originated control messages, the originating
            protocol instance's rank).
        mid: globally unique id ``(origin_rank, per-process sequence)``.
        body: application payload (opaque to every layer).
        body_size: declared payload size in bytes.
        dest: ``None`` for a full-group multicast (including the sender),
            or a tuple of ranks for a narrower destination set.
        headers: read-only mapping from layer key to header value.
    """

    __slots__ = ("sender", "mid", "body", "body_size", "dest", "_chain",
                 "_header_size", "_hmap", "_pop")

    def __init__(
        self,
        sender: int,
        mid: MessageId,
        body: Any,
        body_size: int,
        dest: Optional[Tuple[int, ...]] = None,
        headers: Optional[Dict[str, Any]] = None,
        header_size: int = 0,
    ) -> None:
        if body_size < 0:
            raise StackError(f"negative body size: {body_size}")
        self.sender = sender
        self.mid = mid
        self.body = body
        self.body_size = body_size
        self.dest = dest
        self._chain: _Chain = _base(dict(headers)) if headers else None
        self._header_size = header_size
        # _hmap (materialized-dict cache) and _pop (LIFO-pop memo) are
        # lazy slots: left unset until first use so the hot derive paths
        # skip two stores per message.

    @classmethod
    def _from_wire(cls, sender, mid, body, body_size, dest, header_size,
                   chain) -> "Message":
        """Rebuild a decoded message around a prebuilt header chain.

        Trusted input (our own wire codec): skips validation.  The
        codec builds ``chain`` link by link in push order using the
        same ``(mask | key_bit, parent, key, value)`` shape as
        :meth:`with_header`.  Shells come from the recycle pool when
        one is free; a recycled shell is indistinguishable from a
        fresh ``__new__`` because :meth:`_recycle` strips every slot
        (including the lazy ``_hmap``/``_pop`` caches)."""
        global _POOL_NEW, _POOL_REUSED
        if _POOL:
            msg = _POOL.pop()
            _POOL_REUSED += 1
        else:
            msg = cls.__new__(cls)
            _POOL_NEW += 1
        msg.sender = sender
        msg.mid = mid
        msg.body = body
        msg.body_size = body_size
        msg.dest = dest
        msg._chain = chain
        msg._header_size = header_size
        return msg

    @classmethod
    def _recycle(cls, msg: "Message") -> bool:
        """Return a delivered message's shell to the pool, if safe.

        Called by the transport at delivery completion, when the
        decoded message's one-way trip up the stack has finished.  The
        refcount guard makes this sound rather than merely plausible:
        if *anything* — a retransmit buffer, an ordering queue, an
        application callback — retained the message, the shell is left
        alone and the guard reports a rejection instead of corrupting
        a live object.  Returns True when the shell was pooled.
        """
        global _POOL_RECYCLED, _POOL_REJECTED
        if getrefcount(msg) != _EXCLUSIVE_REFS or len(_POOL) >= _POOL_CAP:
            _POOL_REJECTED += 1
            return False
        # Strip exactly the slots that can pin unbounded object graphs
        # — the body, the header chain, and the two lazy caches.  The
        # rest (ints, the mid pair, a rank tuple) is bounded stale data
        # that the next ``_from_wire`` overwrites anyway; not touching
        # those slots keeps recycling competitive with the allocator.
        # The caches are overwritten with None rather than deleted — a
        # plain store is an order of magnitude cheaper than raising
        # AttributeError when the slot was never filled (the common
        # case), and both cache readers already treat None as "empty".
        msg.body = None
        msg._chain = None
        msg._hmap = None
        msg._pop = None
        _POOL.append(msg)
        _POOL_RECYCLED += 1
        return True

    @classmethod
    def pool_stats(cls) -> Dict[str, int]:
        """Lifetime pool counters plus the current free-shell count.

        The leak-check invariant asserted by the tests: every shell
        ever acquired (``new + reused``) is either free in the pool,
        was refused recycling while still referenced (``rejected``),
        or is still owned by a caller — so ``recycled <= new + reused``
        and ``free <= recycled`` always hold.
        """
        return {
            "new": _POOL_NEW,
            "reused": _POOL_REUSED,
            "recycled": _POOL_RECYCLED,
            "rejected": _POOL_REJECTED,
            "free": len(_POOL),
        }

    @classmethod
    def pool_clear(cls) -> None:
        """Empty the pool and zero the counters (test isolation)."""
        global _POOL_NEW, _POOL_REUSED, _POOL_RECYCLED, _POOL_REJECTED
        _POOL.clear()
        _POOL_NEW = _POOL_REUSED = _POOL_RECYCLED = _POOL_REJECTED = 0

    def _derive(self, body, body_size, dest, chain, header_size) -> "Message":
        """Allocate a sibling sharing this message's identity."""
        clone = Message.__new__(Message)
        clone.sender = self.sender
        clone.mid = self.mid
        clone.body = body
        clone.body_size = body_size
        clone.dest = dest
        clone._chain = chain
        clone._header_size = header_size
        return clone

    # ------------------------------------------------------------------
    # Header manipulation (persistent, structure-sharing)
    # ------------------------------------------------------------------
    def with_header(self, key: str, value: Any, size: int = 16) -> "Message":
        """Return a copy of this message carrying header ``key``.

        ``size`` is the header's on-wire footprint in bytes.  Pushing a
        header a layer already pushed is a composition bug and raises.
        """
        chain = self._chain
        bit = 1 << (hash(key) & 63)
        if chain is None:
            mask = bit
        else:
            mask = chain[0]
            if mask & bit and _chain_get(chain, key) is not _MISSING:
                raise StackError(f"header {key!r} already present on {self!r}")
            mask |= bit
        clone = Message.__new__(Message)
        clone.sender = self.sender
        clone.mid = self.mid
        clone.body = self.body
        clone.body_size = self.body_size
        clone.dest = self.dest
        clone._chain = (mask, chain, key, value)
        clone._header_size = self._header_size + size
        return clone

    def without_header(self, key: str, size: int = 16) -> "Message":
        """Return a copy with header ``key`` removed (popped on the way up)."""
        chain = self._chain
        shrunk = self._header_size - size
        if shrunk < 0:
            shrunk = 0
        if chain is not None and len(chain) == 4 and chain[2] == key:
            if chain[3] is _REMOVED:
                raise StackError(f"header {key!r} missing on {self!r}")
            # LIFO pop — the overwhelmingly common case: the peer layer
            # pushed last, so popping is just unlinking the top link.
            # Memoized: a multicast hands the *same* message object to
            # every receiver, so all pops after the first are one load.
            try:
                # Raises AttributeError for an unset slot *and* for the
                # None left by Message._recycle (None has no
                # _header_size) — both mean "no memo".
                memo = self._pop
                if memo._header_size == shrunk:
                    return memo
            except AttributeError:
                pass
            popped: _Chain = chain[1]
        elif _chain_get(chain, key) is _MISSING:
            raise StackError(f"header {key!r} missing on {self!r}")
        elif len(chain) == 2:
            # Popping from a dict base: one dict copy, as the original
            # copy-on-write implementation did.
            mapping = dict(chain[1])
            del mapping[key]
            return self._derive(
                self.body, self.body_size, self.dest, _base(mapping), shrunk
            )
        else:
            # Out-of-order pop: shadow the deeper key with a tombstone.
            return self._derive(
                self.body, self.body_size, self.dest,
                _shadow(chain, key), shrunk,
            )
        clone = Message.__new__(Message)
        clone.sender = self.sender
        clone.mid = self.mid
        clone.body = self.body
        clone.body_size = self.body_size
        clone.dest = self.dest
        clone._chain = popped
        clone._header_size = shrunk
        self._pop = clone
        return clone

    def header(self, key: str, default: Any = None) -> Any:
        """This message's header value for ``key`` (or ``default``)."""
        chain = self._chain
        if chain is None or not chain[0] & (1 << (hash(key) & 63)):
            return default
        value = _chain_get(chain, key)
        return default if value is _MISSING else value

    def has_header(self, key: str) -> bool:
        """True if a header with ``key`` is present."""
        chain = self._chain
        if chain is None or not chain[0] & (1 << (hash(key) & 63)):
            return False
        return _chain_get(chain, key) is not _MISSING

    def _materialized(self) -> Dict[str, Any]:
        # The cache slot has three states: filled, never set (fresh
        # shell), or None (stripped by ``_recycle``).
        try:
            mapping = self._hmap
            if mapping is not None:
                return mapping
        except AttributeError:
            pass
        mapping = self._hmap = _materialize(self._chain)
        return mapping

    @property
    def headers(self) -> Mapping[str, Any]:
        """A read-only view of the headers (materialized once, cached)."""
        return MappingProxyType(self._materialized())

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def with_dest(self, dest: Optional[Iterable[int]]) -> "Message":
        """Return a copy routed to ``dest`` (None = whole group)."""
        dest_tuple = None if dest is None else tuple(dest)
        return self._derive(
            self.body, self.body_size, dest_tuple, self._chain,
            self._header_size,
        )

    def with_body(self, body: Any, body_size: Optional[int] = None) -> "Message":
        """Return a copy with a transformed body (e.g. encrypted)."""
        return self._derive(
            body,
            self.body_size if body_size is None else body_size,
            self.dest,
            self._chain,
            self._header_size,
        )

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """On-wire size: body + headers + fixed overhead."""
        return self.body_size + self._header_size + BASE_WIRE_OVERHEAD

    # ------------------------------------------------------------------
    # Pickling: the chain is an implementation detail; the wire (and any
    # stored fixture) sees a plain header dict.
    # ------------------------------------------------------------------
    def __reduce__(self):
        return (
            _rebuild,
            (self.sender, self.mid, self.body, self.body_size, self.dest,
             self._materialized(), self._header_size),
        )

    # ------------------------------------------------------------------
    # Equality / hashing: by identity (mid), not content
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self.mid == other.mid

    def __hash__(self) -> int:
        return hash(self.mid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keys = ",".join(sorted(_materialize(self._chain)))
        return (
            f"<Message mid={self.mid} sender={self.sender} "
            f"dest={self.dest} headers=[{keys}]>"
        )
