"""Messages and per-layer headers.

A :class:`Message` is what flows vertically through a protocol stack and
horizontally through the network.  It mirrors the paper's model (§3): a
message has a *body* and a *sender*; layers annotate it with headers on
the way down and read them on the way up.

Messages are **immutable**.  A layer that wants to add a header gets a new
shallow copy via :meth:`Message.with_header`.  Immutability matters
because a multicast delivers the *same* payload object to many receivers;
nobody may scribble on it.

Identity: ``mid`` (message id) is a ``(origin, seq)`` pair unique per
originating process.  Note that identity is distinct from the *body* — the
No Replay property (Table 1) is about bodies, and its Composable failure
(§6.2) hinges on two distinct messages carrying the same body.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import StackError

__all__ = ["Message", "MessageId", "BASE_WIRE_OVERHEAD"]

MessageId = Tuple[int, int]

#: Fixed per-packet overhead (addresses, lengths, checksums) in bytes.
BASE_WIRE_OVERHEAD = 28


class Message:
    """An immutable stack message.

    Attributes:
        sender: rank of the process whose application sent the message
            (for protocol-originated control messages, the originating
            protocol instance's rank).
        mid: globally unique id ``(origin_rank, per-process sequence)``.
        body: application payload (opaque to every layer).
        body_size: declared payload size in bytes.
        dest: ``None`` for a full-group multicast (including the sender),
            or a tuple of ranks for a narrower destination set.
        headers: mapping from layer key to header value.
    """

    __slots__ = ("sender", "mid", "body", "body_size", "dest", "_headers", "_header_size")

    def __init__(
        self,
        sender: int,
        mid: MessageId,
        body: Any,
        body_size: int,
        dest: Optional[Tuple[int, ...]] = None,
        headers: Optional[Dict[str, Any]] = None,
        header_size: int = 0,
    ) -> None:
        if body_size < 0:
            raise StackError(f"negative body size: {body_size}")
        self.sender = sender
        self.mid = mid
        self.body = body
        self.body_size = body_size
        self.dest = dest
        self._headers: Dict[str, Any] = headers if headers is not None else {}
        self._header_size = header_size

    # ------------------------------------------------------------------
    # Header manipulation (copy-on-write)
    # ------------------------------------------------------------------
    def with_header(self, key: str, value: Any, size: int = 16) -> "Message":
        """Return a copy of this message carrying header ``key``.

        ``size`` is the header's on-wire footprint in bytes.  Pushing a
        header a layer already pushed is a composition bug and raises.
        """
        if key in self._headers:
            raise StackError(f"header {key!r} already present on {self!r}")
        headers = dict(self._headers)
        headers[key] = value
        return Message(
            self.sender,
            self.mid,
            self.body,
            self.body_size,
            self.dest,
            headers,
            self._header_size + size,
        )

    def without_header(self, key: str, size: int = 16) -> "Message":
        """Return a copy with header ``key`` removed (popped on the way up)."""
        if key not in self._headers:
            raise StackError(f"header {key!r} missing on {self!r}")
        headers = dict(self._headers)
        del headers[key]
        return Message(
            self.sender,
            self.mid,
            self.body,
            self.body_size,
            self.dest,
            headers,
            max(0, self._header_size - size),
        )

    def header(self, key: str, default: Any = None) -> Any:
        """This message's header value for ``key`` (or ``default``)."""
        return self._headers.get(key, default)

    def has_header(self, key: str) -> bool:
        """True if a header with ``key`` is present."""
        return key in self._headers

    @property
    def headers(self) -> Mapping[str, Any]:
        return dict(self._headers)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def with_dest(self, dest: Optional[Iterable[int]]) -> "Message":
        """Return a copy routed to ``dest`` (None = whole group)."""
        dest_tuple = None if dest is None else tuple(dest)
        return Message(
            self.sender,
            self.mid,
            self.body,
            self.body_size,
            dest_tuple,
            dict(self._headers),
            self._header_size,
        )

    def with_body(self, body: Any, body_size: Optional[int] = None) -> "Message":
        """Return a copy with a transformed body (e.g. encrypted)."""
        return Message(
            self.sender,
            self.mid,
            body,
            self.body_size if body_size is None else body_size,
            self.dest,
            dict(self._headers),
            self._header_size,
        )

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """On-wire size: body + headers + fixed overhead."""
        return self.body_size + self._header_size + BASE_WIRE_OVERHEAD

    # ------------------------------------------------------------------
    # Equality / hashing: by identity (mid), not content
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self.mid == other.mid

    def __hash__(self) -> int:
        return hash(self.mid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keys = ",".join(sorted(self._headers))
        return (
            f"<Message mid={self.mid} sender={self.sender} "
            f"dest={self.dest} headers=[{keys}]>"
        )
