"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Unlike :class:`repro.sim.monitor.Summary` (which keeps every sample for
exact quantiles in bounded experiments), the histogram here is a
fixed-bucket accumulator: observation is O(log buckets), memory is
constant, and percentiles are estimated by linear interpolation inside
the covering bucket — the right trade for an always-on instrumentation
layer that may see millions of observations.

Everything in the registry snapshots to plain JSON-able dicts
(:meth:`MetricsRegistry.snapshot`), which is the schema the CLI's
``repro metrics`` pretty-printer and the CI checker script consume.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DEFAULT_BUCKETS", "Histogram", "MetricsRegistry"]


def _default_buckets() -> Tuple[float, ...]:
    # 1-2-5 per decade from 1 microsecond to 10,000 seconds: wide enough
    # for sub-millisecond token hops and multi-second settle times alike.
    bounds: List[float] = []
    for exp in range(-6, 5):
        for mantissa in (1.0, 2.0, 5.0):
            bounds.append(mantissa * (10.0 ** exp))
    return tuple(bounds)


#: Default histogram bucket upper bounds (seconds-flavoured, but unitless).
DEFAULT_BUCKETS = _default_buckets()


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``bounds`` are the inclusive upper edges of the buckets; one implicit
    overflow bucket catches everything above the last edge.  Exact min and
    max are tracked so interpolation never reports a value outside the
    observed range.
    """

    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty list")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        if not self.count:
            raise ValueError("no observations")
        return self.total / self.count

    def quantile(self, q: float) -> Optional[float]:
        """Estimated quantile by linear interpolation within the bucket.

        Returns None for empty and single-observation histograms: one
        sample carries no distribution, and reporting a bucket edge (or
        the sample itself) as "p99" misleads every downstream consumer.
        Callers that want the raw sample have ``min``/``max``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count < 2:
            return None
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count >= target and bucket_count:
                lo = self.bounds[index - 1] if index > 0 else 0.0
                hi = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.maximum
                )
                lo = max(lo, self.minimum)
                hi = min(hi, self.maximum)
                if hi < lo:
                    hi = lo
                frac = (target - cumulative) / bucket_count
                return lo + (hi - lo) * frac
            cumulative += bucket_count
        return self.maximum

    def snapshot(self) -> Dict[str, object]:
        """JSON-able summary (percentiles included when count >= 2)."""
        if not self.count:
            return {"count": 0}
        occupied = [
            [self.bounds[i] if i < len(self.bounds) else None, c]
            for i, c in enumerate(self.counts)
            if c
        ]
        summary: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        if self.count >= 2:
            summary["p50"] = self.quantile(0.50)
            summary["p90"] = self.quantile(0.90)
            summary["p99"] = self.quantile(0.99)
        summary["buckets"] = occupied
        return summary


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Tuple[float, float]] = {}  # name -> (value, t)
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float, time: float = 0.0) -> None:
        """Record the latest value (and observation time) of gauge ``name``."""
        self._gauges[name] = (float(value), time)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        """Fold ``value`` into histogram ``name`` (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(bounds if bounds is not None else DEFAULT_BUCKETS)
            self._histograms[name] = histogram
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        """Latest value of gauge ``name``, or None."""
        entry = self._gauges.get(name)
        return entry[0] if entry is not None else None

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or None if nothing was observed."""
        return self._histograms.get(name)

    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able dict of everything recorded so far."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": {
                name: {"value": value, "time": time}
                for name, (value, time) in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
