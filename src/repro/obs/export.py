"""Exporters: JSONL event logs and Chrome trace-event (Perfetto) files.

The Chrome trace-event JSON array format is understood by Perfetto
(https://ui.perfetto.dev) and the legacy ``chrome://tracing`` viewer:

* one **process** per rank (``pid = rank + 1``; unranked/global events —
  the network models, the harness — live on ``pid 0``), named via
  ``process_name`` metadata records;
* one **thread track** per switch generation: span/instant events whose
  args carry a ``gen`` (the resilient token protocol's ``(counter,
  rank)`` generation) are routed onto a per-generation track, so every
  regeneration/takeover gets its own swimlane and overlapping switch
  attempts never visually merge.  Everything else rides track 0.

Timestamps are exported in microseconds (``ts``/``dur``), as the format
requires: simulated seconds × 1e6 on ``SimRuntime``, wall seconds × 1e6
on ``AsyncioRuntime`` — the schema is identical either way.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .bus import COMPLETE, Event
from .metrics import MetricsRegistry

__all__ = [
    "chrome_trace_events",
    "events_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
]

#: pid used for events with no producing rank (network models, harness).
GLOBAL_PID = 0


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of event args to JSON-able values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def chrome_trace_events(
    events: Iterable[Event], label: str = "repro"
) -> List[Dict[str, Any]]:
    """Convert bus events to a Chrome trace-event array (list of dicts)."""
    out: List[Dict[str, Any]] = []
    seen_pids: Dict[int, str] = {}
    gen_tracks: Dict[int, Dict[Any, int]] = {}  # pid -> gen key -> tid
    track_meta: List[Dict[str, Any]] = []

    def pid_of(rank: Optional[int]) -> int:
        pid = GLOBAL_PID if rank is None else rank + 1
        if pid not in seen_pids:
            seen_pids[pid] = (
                f"{label} global" if rank is None else f"{label} rank {rank}"
            )
        return pid

    def tid_of(pid: int, args: Dict[str, Any]) -> int:
        gen = args.get("gen")
        if gen is None:
            return 0
        key = tuple(gen) if isinstance(gen, (list, tuple)) else gen
        tracks = gen_tracks.setdefault(pid, {})
        tid = tracks.get(key)
        if tid is None:
            tid = len(tracks) + 1
            tracks[key] = tid
            track_meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": f"switch gen {key}"},
                }
            )
        return tid

    for event in events:
        pid = pid_of(event.rank)
        record: Dict[str, Any] = {
            "name": event.name,
            "ph": COMPLETE if event.kind == COMPLETE else "i",
            "ts": event.time * 1e6,
            "pid": pid,
            "tid": tid_of(pid, event.args),
            "args": _jsonable(event.args),
        }
        if event.kind == COMPLETE:
            record["dur"] = event.dur * 1e6
        else:
            record["s"] = "t"  # instant scope: thread
        out.append(record)

    meta: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": name},
        }
        for pid, name in sorted(seen_pids.items())
    ]
    return meta + track_meta + out


def write_chrome_trace(
    path: str, events: Iterable[Event], label: str = "repro"
) -> int:
    """Write a Perfetto-loadable trace file; returns records written."""
    records = chrome_trace_events(events, label=label)
    with open(path, "w") as handle:
        json.dump(records, handle)
    return len(records)


def events_to_jsonl(events: Iterable[Event]) -> List[str]:
    """One compact JSON object per event, in record order."""
    lines = []
    for event in events:
        record: Dict[str, Any] = {
            "name": event.name,
            "kind": event.kind,
            "time": event.time,
            "rank": event.rank,
            "args": _jsonable(event.args),
        }
        if event.kind == COMPLETE:
            record["dur"] = event.dur
        lines.append(json.dumps(record))
    return lines


def write_jsonl(path: str, events: Iterable[Event]) -> int:
    """Write the JSONL event log; returns the number of lines."""
    lines = events_to_jsonl(events)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


def write_metrics(
    path: str,
    metrics: MetricsRegistry,
    **header: Any,
) -> Dict[str, Any]:
    """Write a metrics snapshot JSON (plus header fields); returns it."""
    snapshot = dict(header)
    snapshot.update(metrics.snapshot())
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot
