"""The instrumentation bus: structured events and clock-stamped spans.

One :class:`Bus` serves a whole run.  Producers — the switch protocols,
the stacks, the network models — hold a :class:`BusScope` (the bus plus
the producer's rank) and emit through it; consumers either subscribe live
or export the recorded event list afterwards (:mod:`repro.obs.export`).

Timestamps come from the :class:`~repro.runtime.api.Clock` interface, so
the same instrumentation yields deterministic virtual-time traces on
:class:`~repro.runtime.sim_runtime.SimRuntime` and wall-clock traces on
:class:`~repro.runtime.aio.AsyncioRuntime` without a single call-site
changing.

**The disabled fast path is the contract.**  Instrumentation ships
enabled in the code but *off* in every default configuration: the
process-wide default bus (:func:`default_bus`) is disabled, and a
disabled bus records no events, updates no metrics, and invokes no
subscribers.  Hot call sites guard with ``if obs.enabled:`` before
building keyword arguments, so a disabled run allocates nothing on the
instrumented paths.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "Bus",
    "BusScope",
    "Event",
    "PhaseTracker",
    "Span",
    "default_bus",
    "null_scope",
    "set_default_bus",
]

#: Event kinds, matching the Chrome trace-event phase letters they map to.
INSTANT = "i"
COMPLETE = "X"


class Event:
    """One recorded instrumentation event.

    Attributes:
        name: hierarchical event name (e.g. ``"switch/prepare"``).
        kind: :data:`INSTANT` or :data:`COMPLETE` (a finished span).
        time: clock timestamp (span start time for complete spans).
        rank: producing process rank, or None for global producers.
        dur: span duration in clock seconds (0.0 for instants).
        args: free-form JSON-able payload.
    """

    __slots__ = ("name", "kind", "time", "rank", "dur", "args")

    def __init__(
        self,
        name: str,
        kind: str,
        time: float,
        rank: Optional[int],
        dur: float = 0.0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.time = time
        self.rank = rank
        self.dur = dur
        self.args = args or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"r{self.rank}" if self.rank is not None else "global"
        return f"<Event {self.name} {self.kind} t={self.time:.6f} {where}>"


class Span:
    """An open span; :meth:`end` records it as one complete event."""

    __slots__ = ("_bus", "name", "rank", "start", "args", "_ended")

    def __init__(
        self,
        bus: "Bus",
        name: str,
        rank: Optional[int],
        start: float,
        args: Dict[str, Any],
    ) -> None:
        self._bus = bus
        self.name = name
        self.rank = rank
        self.start = start
        self.args = args
        self._ended = False

    def annotate(self, **extra: Any) -> "Span":
        """Attach extra args to the eventual event."""
        self.args.update(extra)
        return self

    def end(self, **extra: Any) -> float:
        """Close the span; returns its duration.  Idempotent."""
        if self._ended:
            return 0.0
        self._ended = True
        if extra:
            self.args.update(extra)
        end_time = self._bus.now
        dur = max(0.0, end_time - self.start)
        self._bus._append(
            Event(self.name, COMPLETE, self.start, self.rank, dur, self.args)
        )
        return dur

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.end()


class _NullSpan:
    """The span handed out by a disabled bus: every method is a no-op."""

    __slots__ = ()

    def annotate(self, **extra: Any) -> "_NullSpan":
        return self

    def end(self, **extra: Any) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class Bus:
    """Collects events and metrics for one run.

    Args:
        clock: time source for stamps (anything with ``.now``); without
            one, every event is stamped 0.0 — fine for unit tests, wrong
            for real traces.
        enabled: master switch.  Disabled buses record nothing.
        max_events: optional cap on *retained* events; once reached, new
            events are dropped from the recorded list (counted in the
            ``obs.events_dropped`` metric) instead of growing without
            bound.  Live subscribers still see every event — retention
            bounds memory, it does not mute the stream, so a
            ``max_events=0`` bus is a pure pub/sub + metrics plane.
    """

    def __init__(
        self,
        clock: Optional[Any] = None,
        enabled: bool = True,
        max_events: Optional[int] = None,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.max_events = max_events
        self.metrics = MetricsRegistry()
        self.events: List[Event] = []
        self._subscribers: List[Callable[[Event], None]] = []

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        clock = self.clock
        return clock.now if clock is not None else 0.0

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def emit(
        self, name: str, rank: Optional[int] = None, **args: Any
    ) -> None:
        """Record one instant event (no-op when disabled)."""
        if not self.enabled:
            return
        self._append(Event(name, INSTANT, self.now, rank, 0.0, args))

    def span(self, name: str, rank: Optional[int] = None, **args: Any):
        """Open a span (records on ``end``); a no-op span when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, rank, self.now, args)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a metrics counter (no-op when disabled)."""
        if self.enabled:
            self.metrics.incr(name, amount)

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a gauge (no-op when disabled)."""
        if self.enabled:
            self.metrics.set_gauge(name, value, self.now)

    def observe(self, name: str, value: float) -> None:
        """Fold a sample into a metrics histogram (no-op when disabled)."""
        if self.enabled:
            self.metrics.observe(name, value)

    def _append(self, event: Event) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.metrics.incr("obs.events_dropped")
        else:
            self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """``callback(event)`` fires for every event recorded live."""
        self._subscribers.append(callback)

    def clear(self) -> None:
        """Discard recorded events and metrics (subscribers stay)."""
        self.events.clear()
        self.metrics.clear()

    # ------------------------------------------------------------------
    # Scoping
    # ------------------------------------------------------------------
    def scoped(
        self, rank: Optional[int], group: Optional[int] = None
    ) -> "BusScope":
        """A producer handle that stamps every event with ``rank``.

        ``group`` labels the scope with a fleet group id: metric names
        gain a ``[g<id>]`` suffix and events a ``group`` arg, so one bus
        can keep thousands of groups' signals apart.  ``None`` (the
        single-group default) leaves names untouched.
        """
        return BusScope(self, rank, group)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"<Bus {state} events={len(self.events)}>"


class BusScope:
    """A (bus, rank[, group]) tuple: the handle instrumented code holds.

    Counters and histograms aggregate across ranks (one group-wide
    number); gauges are per-producer state, so :meth:`gauge` qualifies
    the metric name with the rank (``name[r2]``).

    A group-labelled scope (``group`` not None) additionally suffixes
    every metric name with ``[g<id>]`` and stamps events with a
    ``group`` arg, so per-group signals (the fleet oracle's rate inputs)
    stay separable on a shared bus.  The unlabelled path is byte-for-byte
    the pre-fleet behaviour.
    """

    __slots__ = ("bus", "rank", "group", "_suffix")

    def __init__(
        self, bus: Bus, rank: Optional[int], group: Optional[int] = None
    ) -> None:
        self.bus = bus
        self.rank = rank
        self.group = group
        self._suffix = "" if group is None else f"[g{group}]"

    @property
    def enabled(self) -> bool:
        return self.bus.enabled

    def emit(self, name: str, **args: Any) -> None:
        if self.group is not None:
            args.setdefault("group", self.group)
        self.bus.emit(name, rank=self.rank, **args)

    def span(self, name: str, **args: Any):
        if self.group is not None:
            args.setdefault("group", self.group)
        return self.bus.span(name, rank=self.rank, **args)

    def count(self, name: str, amount: int = 1) -> None:
        if self._suffix:
            name += self._suffix
        self.bus.count(name, amount)

    def gauge(self, name: str, value: float) -> None:
        if self.rank is not None:
            name = f"{name}[r{self.rank}]"
        if self._suffix:
            name += self._suffix
        self.bus.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if self._suffix:
            name += self._suffix
        self.bus.observe(name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BusScope rank={self.rank} group={self.group} of {self.bus!r}>"


class PhaseTracker:
    """Span bookkeeping for one switch choreography at one member.

    Every SP variant shares the same phase shape — a total span from
    initiation to global completion, subdivided into PREPARE / SWITCH /
    FLUSH — so the span plumbing lives here once.  Phase durations are
    also folded into ``switch.phase.<name>_s`` histograms and the total
    into ``switch.duration_s``, which is where the BENCH artifacts and
    the CLI pretty-printer get their switch-timing breakdowns.

    All methods are safe no-ops on a disabled bus, and tolerate joining
    mid-choreography (a takeover member opens its first span at the
    phase it learned about).
    """

    __slots__ = ("obs", "_total", "_phase", "_phase_name")

    def __init__(self, obs: BusScope) -> None:
        self.obs = obs
        self._total: Optional[Span] = None
        self._phase: Optional[Span] = None
        self._phase_name: Optional[str] = None

    def begin(self, switch_id: Tuple[int, int], old: str, new: str) -> None:
        """The member became the initiator: open total + PREPARE spans."""
        obs = self.obs
        if not obs.enabled:
            return
        obs.count("switch.initiated")
        self._total = obs.span(
            "switch/total", switch=list(switch_id), old=old, new=new
        )
        self._open_phase(switch_id, "prepare")

    def phase(self, switch_id: Tuple[int, int], name: str) -> None:
        """Advance to phase ``name``, closing the current phase span."""
        obs = self.obs
        if not obs.enabled:
            return
        self._close_phase()
        self._open_phase(switch_id, name)

    def complete(self, switch_id: Tuple[int, int], duration: float) -> None:
        """The switch finished everywhere: close all spans, record timing."""
        obs = self.obs
        if not obs.enabled:
            return
        self._close_phase()
        if self._total is not None:
            self._total.end(outcome="completed")
            self._total = None
        obs.observe("switch.duration_s", duration)
        obs.count("switch.completed")
        obs.emit("switch/complete", switch=list(switch_id), duration=duration)

    def abort(self, switch_id: Tuple[int, int], reason: str, phase: str) -> None:
        """The switch was abandoned: close spans with the abort verdict."""
        obs = self.obs
        if not obs.enabled:
            return
        self._close_phase()
        if self._total is not None:
            self._total.end(outcome="aborted", reason=reason)
            self._total = None
        obs.count("switch.aborted")
        obs.emit(
            "switch/abort", switch=list(switch_id), reason=reason, phase=phase
        )

    def _open_phase(self, switch_id: Tuple[int, int], name: str) -> None:
        self._phase = self.obs.span(f"switch/{name}", switch=list(switch_id))
        self._phase_name = name

    def _close_phase(self) -> None:
        if self._phase is not None:
            dur = self._phase.end()
            self.obs.observe(f"switch.phase.{self._phase_name}_s", dur)
            self._phase = None
            self._phase_name = None


# ----------------------------------------------------------------------
# Process-wide default
# ----------------------------------------------------------------------

#: The process-wide bus layers fall back to when none is injected.
#: Disabled by construction: unconfigured runs record nothing.
_DEFAULT_BUS = Bus(clock=None, enabled=False)
_NULL_SCOPE = BusScope(_DEFAULT_BUS, None)


def default_bus() -> Bus:
    """The process-wide default bus (disabled unless someone enables it)."""
    return _DEFAULT_BUS


def set_default_bus(bus: Bus) -> Bus:
    """Swap the process-wide default bus; returns the previous one."""
    global _DEFAULT_BUS
    previous, _DEFAULT_BUS = _DEFAULT_BUS, bus
    return previous


def null_scope() -> BusScope:
    """A scope over the (disabled) original default bus: a safe no-op."""
    return _NULL_SCOPE
