"""Exposition: Prometheus text + JSON snapshot, over HTTP on asyncio.

Two faces of the same :meth:`TelemetryPlane.snapshot`:

* :func:`render_prometheus` — the snapshot flattened into Prometheus
  text exposition format (``# TYPE`` headers, ``{label="..."}`` pairs),
  scrapeable by any stock Prometheus agent.
* :class:`TelemetryServer` — a dependency-free HTTP/1.0 server on
  ``asyncio.start_server`` (stdlib only, per the repo's no-new-deps
  rule) living on the fleet runner's event loop:

  ==============  =============================================
  ``/metrics``    Prometheus text (``text/plain; version=0.0.4``)
  ``/snapshot``   the full JSON snapshot
  ``/healthz``    liveness probe (``ok``)
  ==============  =============================================

Under the sim runtime there is no socket and no loop mid-run; the poll
API (``plane.snapshot()`` / ``plane.prometheus()``) is the whole
interface, and ``repro fleet --telemetry-json`` persists it.

:func:`scrape` is the matching asyncio client — the fleet runner uses
it to self-scrape its own live endpoint (CI validates a real HTTP
round trip without process juggling), and it doubles as the reference
client for ``repro top`` against a live fleet.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TelemetryServer", "render_prometheus", "scrape"]

_CONTENT_PROM = "text/plain; version=0.0.4; charset=utf-8"
_CONTENT_JSON = "application/json; charset=utf-8"


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------
def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Flatten one telemetry snapshot into Prometheus exposition text."""
    fleet = snapshot.get("fleet", {})
    groups = snapshot.get("groups", {})
    lines: List[str] = []

    def metric(name: str, mtype: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")

    def sample(name: str, value: Any, labels: str = "") -> None:
        if value is None:
            return
        lines.append(f"{name}{labels} {_fmt(value)}")

    metric("repro_fleet_groups", "gauge", "Groups watched by the plane.")
    sample("repro_fleet_groups", fleet.get("groups", 0))
    metric(
        "repro_fleet_delivered_total",
        "counter",
        "Member deliveries across the fleet.",
    )
    sample("repro_fleet_delivered_total", fleet.get("delivered", 0))
    metric("repro_fleet_casts_total", "counter", "Casts across the fleet.")
    sample("repro_fleet_casts_total", fleet.get("casts", 0))
    metric(
        "repro_fleet_delivered_per_s",
        "gauge",
        "Fleet delivery rate over the last window.",
    )
    sample("repro_fleet_delivered_per_s", fleet.get("rate", 0.0))
    metric(
        "repro_fleet_switches_total", "counter", "Completed protocol switches."
    )
    sample("repro_fleet_switches_total", fleet.get("switches", 0))
    metric("repro_fleet_aborts_total", "counter", "Aborted protocol switches.")
    sample("repro_fleet_aborts_total", fleet.get("aborts", 0))
    metric(
        "repro_fleet_stray_group_drops_total",
        "counter",
        "Packets dropped at NodePorts for unregistered groups.",
    )
    sample("repro_fleet_stray_group_drops_total", fleet.get("strays", 0))
    metric(
        "repro_fleet_escalations_total",
        "counter",
        "Oracle escalation decisions recorded.",
    )
    sample("repro_fleet_escalations_total", fleet.get("escalations", 0))
    metric(
        "repro_slo_burn_minutes", "gauge", "Fleet-wide SLO burn minutes."
    )
    slo = fleet.get("slo", {})
    sample("repro_slo_burn_minutes", slo.get("burn_minutes", 0.0))
    metric(
        "repro_slo_groups_burning", "gauge", "Groups with a burning SLO."
    )
    sample("repro_slo_groups_burning", slo.get("groups_burning", 0))

    pool = fleet.get("pool", {})
    metric(
        "repro_sequencer_pool_load",
        "gauge",
        "Sequencer assignments per node (pool occupancy).",
    )
    for rank, load in sorted(
        pool.get("loads", {}).items(), key=lambda kv: int(kv[0])
    ):
        sample("repro_sequencer_pool_load", load, f'{{node="{rank}"}}')

    metric(
        "repro_group_delivered_total",
        "counter",
        "Member deliveries per group.",
    )
    metric_rows: List[Tuple[str, str, Optional[str]]] = [
        ("repro_group_rate", "gauge", "rate"),
        ("repro_group_delivery_p50_ms", "gauge", "p50_ms"),
        ("repro_group_delivery_p99_ms", "gauge", "p99_ms"),
        ("repro_group_switches_total", "counter", "switches"),
        ("repro_group_aborts_total", "counter", "aborts"),
    ]
    ordered = sorted(groups.items(), key=lambda kv: int(kv[0]))
    for gid, group in ordered:
        sample(
            "repro_group_delivered_total",
            group.get("delivered", 0),
            f'{{group="{gid}"}}',
        )
    for name, mtype, key in metric_rows:
        help_by_key = {
            "rate": "Delivery rate over the last window, per group.",
            "p50_ms": "p50 delivery latency over the last window (ms).",
            "p99_ms": "p99 delivery latency over the last window (ms).",
            "switches": "Completed switches per group.",
            "aborts": "Aborted switches per group.",
        }
        metric(name, mtype, help_by_key[key])
        for gid, group in ordered:
            sample(name, group.get(key), f'{{group="{gid}"}}')
    metric(
        "repro_group_protocol_info",
        "gauge",
        "Current protocol per group (info-style: value is always 1).",
    )
    for gid, group in ordered:
        protocol = group.get("protocol")
        if protocol:
            sample(
                "repro_group_protocol_info",
                1,
                f'{{group="{gid}",protocol="{protocol}"}}',
            )
    metric(
        "repro_group_slo_ok",
        "gauge",
        "1 when no SLO target is burning for the group.",
    )
    for gid, group in ordered:
        sample(
            "repro_group_slo_ok",
            bool(group.get("slo", {}).get("ok", True)),
            f'{{group="{gid}"}}',
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The HTTP server (asyncio runtime only)
# ----------------------------------------------------------------------
class TelemetryServer:
    """Serves a plane's snapshots over localhost HTTP on the run's loop."""

    def __init__(
        self, plane: Any, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.plane = plane
        self.host = host
        self.port = port
        self.requests = 0
        self._server: Optional[asyncio.AbstractServer] = None

    async def open(self) -> "TelemetryServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # port=0 asks the kernel; report what it picked.
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:  # drain request headers up to the blank line
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._route(path)
            self.requests += 1
            head = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()

    def _route(self, path: str) -> Tuple[str, str, bytes]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return "200 OK", _CONTENT_PROM, self.plane.prometheus().encode()
        if path == "/snapshot":
            body = json.dumps(self.plane.snapshot(), sort_keys=True).encode()
            return "200 OK", _CONTENT_JSON, body
        if path == "/healthz":
            return "200 OK", "text/plain", b"ok\n"
        return "404 Not Found", "text/plain", b"not found\n"

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


# ----------------------------------------------------------------------
# The matching asyncio client (self-scrape + live `repro top`)
# ----------------------------------------------------------------------
async def _fetch(host: str, port: int, path: str) -> Tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request = f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n"
        writer.write(request.encode("latin-1"))
        await writer.drain()
        # Head first, then the body by its declared Content-Length.  A
        # large snapshot spans many TCP segments; keep reading until
        # every declared byte has arrived (``readexactly`` loops) —
        # a single read() would truncate anything past the first
        # buffer's worth and silently hand back half a JSON document.
        head = await reader.readuntil(b"\r\n\r\n")
        length: Optional[int] = None
        for line in head.split(b"\r\n")[1:]:
            name, __, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    pass
        if length is None:
            body = await reader.read(-1)  # legacy: read to EOF
        else:
            body = await reader.readexactly(length)
    finally:
        writer.close()
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1]) if len(status_line.split()) > 1 else 0
    return status, body


async def scrape(host: str, port: int) -> Dict[str, Any]:
    """One full scrape of a live endpoint: snapshot JSON + Prometheus
    text, wrapped in the standard telemetry payload shape."""
    snap_status, snap_body = await _fetch(host, port, "/snapshot")
    prom_status, prom_body = await _fetch(host, port, "/metrics")
    if snap_status != 200 or prom_status != 200:
        raise ConnectionError(
            f"scrape failed: /snapshot={snap_status} /metrics={prom_status}"
        )
    return {
        "schema_version": 1,
        "kind": "telemetry",
        "source": "scrape",
        "url": f"http://{host}:{port}",
        "snapshot": json.loads(snap_body.decode()),
        "prometheus": prom_body.decode(),
    }
