"""Declarative SLOs over telemetry windows.

An :class:`SLOTarget` names one budget over one windowed signal; the
:class:`SLOEngine` evaluates every target against every rolled window,
emits a structured ``slo/burn`` instant event onto the bus for each
violated window, and accumulates **burn time** per (group, target) —
the "error budget spent" currency SRE practice reports in minutes.

Three signals cover the paper's switching story:

* ``delivery_p99_ms`` — the window's p99 delivery latency must stay at
  or under the budget (milliseconds).  Skipped for windows with fewer
  than two latency samples (see ``Histogram.quantile``).
* ``switch_duration_s`` — the slowest switch *completing* in the window
  (measured escalation-request to completion) must stay at or under the
  budget (seconds): the time-to-switch budget.
* ``delivery_ratio`` — delivered / (casts x members) for the window
  must stay at or *above* the budget (a floor, not a ceiling).  In-
  flight messages at a window edge push the ratio below 1.0 in one
  window and above it in the next; budget accordingly (e.g. 0.5, not
  0.999, for 1-second windows).

The engine is deliberately stateless about *why* a window is bad — the
flight recorder freezes the group's ring on the first burn of each
(group, target) pair, which is where the forensics live.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...errors import TelemetryError

__all__ = ["SLO_SIGNALS", "SLOEngine", "SLOTarget"]

#: Recognised window signals, with the comparison direction baked in:
#: latency/duration budgets are ceilings, the delivery ratio is a floor.
SLO_SIGNALS = ("delivery_p99_ms", "switch_duration_s", "delivery_ratio")


class SLOTarget:
    """One named budget over one windowed signal."""

    __slots__ = ("name", "signal", "budget")

    def __init__(self, name: str, signal: str, budget: float) -> None:
        if not name:
            raise TelemetryError("SLO target needs a non-empty name")
        if signal not in SLO_SIGNALS:
            raise TelemetryError(
                f"unknown SLO signal {signal!r}; known: {list(SLO_SIGNALS)}"
            )
        budget = float(budget)
        if budget <= 0.0:
            raise TelemetryError(
                f"SLO budget must be positive, got {budget} for {name!r}"
            )
        self.name = name
        self.signal = signal
        self.budget = budget

    @property
    def is_floor(self) -> bool:
        return self.signal == "delivery_ratio"

    def violated_by(self, value: float) -> bool:
        """Does ``value`` burn this target's budget?"""
        return value < self.budget if self.is_floor else value > self.budget

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "signal": self.signal, "budget": self.budget}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = ">=" if self.is_floor else "<="
        return f"<SLOTarget {self.name}: {self.signal} {op} {self.budget}>"


class SLOEngine:
    """Evaluates every target against every rolled window.

    Args:
        targets: the declarative budgets.  An empty tuple is a valid
            (always-green) engine.
        bus: optional obs bus; every burning window emits one
            ``slo/burn`` instant event (``group``/``slo``/``signal``/
            ``value``/``budget`` args) so live subscribers — the flight
            recorder, an exporter, a test — see alerts as they happen.
    """

    def __init__(self, targets: Sequence[SLOTarget] = (), bus=None) -> None:
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise TelemetryError(f"duplicate SLO target names in {names}")
        self.targets: Tuple[SLOTarget, ...] = tuple(targets)
        self.bus = bus
        self.alerts = 0
        self.total_burn_s = 0.0
        self._burn_s: Dict[Tuple[int, str], float] = {}
        self._burning: Dict[Tuple[int, str], bool] = {}

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    #: SLO signal -> the rolled-window key carrying it.
    _WINDOW_KEYS = {
        "delivery_p99_ms": "p99_ms",
        "switch_duration_s": "max_switch_s",
        "delivery_ratio": "delivery_ratio",
    }

    @classmethod
    def _signal_value(
        cls, target: SLOTarget, window: Mapping[str, object]
    ) -> Optional[float]:
        value = window.get(cls._WINDOW_KEYS[target.signal])
        return value if isinstance(value, (int, float)) else None

    def evaluate(self, group_id: int, window: Mapping[str, object]) -> List[str]:
        """Judge one rolled window for one group.

        Returns the names of the targets that started burning with this
        window (burning already last window does not repeat the name) —
        the "freeze the flight recorder now" edge.
        """
        fresh: List[str] = []
        window_s = float(window.get("window_s", 0.0))
        for target in self.targets:
            value = self._signal_value(target, window)
            if value is None:
                continue  # no signal this window; neither burn nor clear
            key = (group_id, target.name)
            if target.violated_by(value):
                self._burn_s[key] = self._burn_s.get(key, 0.0) + window_s
                self.total_burn_s += window_s
                self.alerts += 1
                if self.bus is not None:
                    self.bus.emit(
                        "slo/burn",
                        group=group_id,
                        slo=target.name,
                        signal=target.signal,
                        value=value,
                        budget=target.budget,
                    )
                if not self._burning.get(key):
                    self._burning[key] = True
                    fresh.append(target.name)
            else:
                self._burning[key] = False
        return fresh

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def burn_minutes(self, group_id: Optional[int] = None) -> float:
        """Burn minutes for one group, or fleet-wide when ``None``."""
        if group_id is None:
            return self.total_burn_s / 60.0
        burned = sum(
            seconds
            for (gid, _name), seconds in self._burn_s.items()
            if gid == group_id
        )
        return burned / 60.0

    def status(self, group_id: int) -> Dict[str, object]:
        """One group's current SLO verdict (for snapshots / `repro top`)."""
        burning = sorted(
            name
            for (gid, name), lit in self._burning.items()
            if gid == group_id and lit
        )
        return {
            "ok": not burning,
            "burning": burning,
            "burn_minutes": self.burn_minutes(group_id),
        }

    def snapshot(self) -> Dict[str, object]:
        """Fleet-wide SLO rollup for the exposition payload."""
        return {
            "targets": [t.as_dict() for t in self.targets],
            "alerts": self.alerts,
            "burn_minutes": self.burn_minutes(),
            "groups_burning": len(
                {gid for (gid, _name), lit in self._burning.items() if lit}
            ),
        }
