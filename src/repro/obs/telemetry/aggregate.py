"""The per-group aggregation pipeline: windowed fleet snapshots.

:class:`TelemetryPlane` is the live layer between the raw obs bus and
anything that wants to *watch* a fleet: it rolls per-group counts into
fixed-length windows on the runtime's clock, keeps a bounded history of
windows per group, folds a fleet-wide rollup (delivered msgs/s, switch
counts, stray-group drops, sequencer-pool occupancy) every window, and
feeds the :class:`~repro.obs.telemetry.slo.SLOEngine` and
:class:`~repro.obs.telemetry.recorder.FlightRecorder` as it goes.

Memory is bounded per group by construction: a handful of window
accumulators, one capped raw-sample latency buffer per open window
(exact quantiles are computed once, at roll time — appending a float is
far cheaper per delivery than folding a histogram, which is what keeps
the plane inside its overhead budget), and a ``deque(maxlen=history)``
of rolled windows.  Watching 1000 groups costs ~1000x a small
constant, never ~messages.

Hook sites (the fleet runner wires these; any harness can):

* ``note_cast(gid)`` / ``note_delivery(gid, latency_s)`` — per message.
* ``attach_oracle(oracle)`` — decisions are annotated with the group's
  snapshot (the "why" of every escalation) and start the time-to-switch
  stopwatch; ``note_switch`` stops it.
* ``note_switch(gid, old, new)`` / ``note_abort(gid, reason, phase)`` —
  switch lifecycle; aborts freeze the flight recorder.
* ``attach_manager(manager)`` — the fleet rollup reads stray-group
  drops off the manager's ports and occupancy off its sequencer pool,
  and dirty teardowns freeze the recorder.

Under sim, :meth:`snapshot` / :meth:`prometheus` are the poll API; the
asyncio runtime additionally serves them over HTTP
(:class:`~repro.obs.telemetry.expo.TelemetryServer`).
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
)

from ...errors import TelemetryError
from ..bus import Bus
from .recorder import FlightRecorder
from .slo import SLOEngine, SLOTarget

__all__ = ["WINDOW_SAMPLE_CAP", "TelemetryConfig", "TelemetryPlane"]

#: Latency samples retained per group per open window.  At paper-scale
#: hot rates (~300 deliveries/s, 1 s windows) a window holds a few
#: hundred samples; the cap only engages under pathological rates, where
#: overflow samples still count as deliveries but drop out of that
#: window's quantile estimate.
WINDOW_SAMPLE_CAP = 4096


def _quantile(ordered: List[float], q: float) -> float:
    """Exact quantile of an already-sorted sample list (len >= 2)."""
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

#: Escalation-record storage cap: latching fleets record at most one
#: per group, so hitting this means a flapping oracle, not normal load.
MAX_ESCALATIONS = 10_000


class TelemetryConfig:
    """Shape of one telemetry plane.

    Args:
        window: aggregation window length, in runtime seconds.
        history: rolled windows retained per group (and fleet-wide).
        recorder_capacity: flight-recorder ring size per group.
        slos: declarative :class:`SLOTarget` budgets (may be empty).
    """

    __slots__ = ("window", "history", "recorder_capacity", "slos")

    def __init__(
        self,
        window: float = 1.0,
        history: int = 60,
        recorder_capacity: int = 64,
        slos: Sequence[SLOTarget] = (),
    ) -> None:
        if window <= 0.0:
            raise TelemetryError("telemetry window must be positive")
        if history < 1:
            raise TelemetryError("telemetry history must be >= 1")
        self.window = float(window)
        self.history = int(history)
        self.recorder_capacity = int(recorder_capacity)
        self.slos = tuple(slos)


class _GroupState:
    """One group's accumulators: open window + bounded history + totals."""

    __slots__ = (
        "gid",
        "members",
        "hot",
        "protocol_reader",
        "sequencer",
        "win_casts",
        "win_delivered",
        "win_latency",
        "win_switches",
        "win_aborts",
        "win_max_switch",
        "casts",
        "delivered",
        "switches",
        "aborts",
        "switch_requested_at",
        "last_switch_s",
        "windows",
        "torn_down",
    )

    def __init__(
        self,
        gid: int,
        members: int,
        hot: Optional[bool],
        protocol_reader: Optional[Callable[[], str]],
        sequencer: Optional[int],
        history: int,
    ) -> None:
        self.gid = gid
        self.members = members
        self.hot = hot
        self.protocol_reader = protocol_reader
        self.sequencer = sequencer
        self.win_casts = 0
        self.win_delivered = 0
        self.win_latency: List[float] = []
        self.win_switches = 0
        self.win_aborts = 0
        self.win_max_switch: Optional[float] = None
        self.casts = 0
        self.delivered = 0
        self.switches = 0
        self.aborts = 0
        self.switch_requested_at: Optional[float] = None
        self.last_switch_s: Optional[float] = None
        self.windows: Deque[Dict[str, Any]] = deque(maxlen=history)
        self.torn_down = False

    def protocol(self) -> Optional[str]:
        reader = self.protocol_reader
        return reader() if reader is not None else None


class TelemetryPlane:
    """Windowed per-group + fleet-wide aggregation over one runtime clock."""

    def __init__(
        self,
        runtime: Any,
        bus: Bus,
        config: Optional[TelemetryConfig] = None,
    ) -> None:
        self.runtime = runtime
        self.bus = bus
        self.config = config or TelemetryConfig()
        self.slo = SLOEngine(self.config.slos, bus=bus)
        self.recorder = FlightRecorder(capacity=self.config.recorder_capacity)
        self.recorder.attach(bus)
        self.escalations: List[Dict[str, Any]] = []
        self.escalations_dropped = 0
        self.started_at = runtime.now
        self._groups: Dict[int, _GroupState] = {}
        self._fleet_windows: Deque[Dict[str, Any]] = deque(
            maxlen=self.config.history
        )
        self._manager: Any = None
        self._running = False
        self._timer: Any = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def watch_group(
        self,
        gid: int,
        members: int = 0,
        hot: Optional[bool] = None,
        protocol: Optional[Callable[[], str]] = None,
        sequencer: Optional[int] = None,
    ) -> None:
        """Begin aggregating for ``gid`` (idempotent)."""
        if gid not in self._groups:
            self._groups[gid] = _GroupState(
                gid, members, hot, protocol, sequencer, self.config.history
            )

    def attach_manager(self, manager: Any) -> None:
        """Read stray drops + pool occupancy off a GroupManager; freeze
        the flight recorder when one of its teardowns is dirty."""
        self._manager = manager
        manager.on_teardown(self._on_teardown)

    def attach_oracle(self, oracle: Any) -> None:
        """Annotate the oracle's decisions with the justifying snapshot
        and start the per-group time-to-switch stopwatch on each one."""
        oracle.snapshot_provider = self.justification
        oracle.on_decision = self._on_decision

    # ------------------------------------------------------------------
    # Note hooks (the hot ones: integer bumps + one histogram fold)
    # ------------------------------------------------------------------
    def note_cast(self, gid: int) -> None:
        state = self._groups.get(gid)
        if state is not None:
            state.win_casts += 1
            state.casts += 1

    def note_delivery(self, gid: int, latency_s: Optional[float] = None) -> None:
        state = self._groups.get(gid)
        if state is not None:
            state.win_delivered += 1
            state.delivered += 1
            if latency_s is not None and latency_s >= 0.0:
                samples = state.win_latency
                if len(samples) < WINDOW_SAMPLE_CAP:
                    samples.append(latency_s)

    def cast_hook(self, gid: int) -> Callable[[], None]:
        """A bound fast-path equivalent of ``note_cast(gid)``.

        The returned closure captures the group's accumulator directly —
        no per-message dict lookup, no method dispatch — which is what
        keeps the plane inside its overhead budget on the send path.
        """
        state = self._groups[gid]

        def note() -> None:
            state.win_casts += 1
            state.casts += 1

        return note

    def delivery_hook(self, gid: int) -> Callable[[Optional[float]], None]:
        """A bound fast-path equivalent of ``note_delivery(gid, ...)``."""
        state = self._groups[gid]

        def note(latency_s: Optional[float] = None) -> None:
            state.win_delivered += 1
            state.delivered += 1
            if latency_s is not None and latency_s >= 0.0:
                samples = state.win_latency
                if len(samples) < WINDOW_SAMPLE_CAP:
                    samples.append(latency_s)

        return note

    def note_escalation(self, gid: int) -> None:
        """Start the time-to-switch stopwatch (oracle attach does this)."""
        state = self._groups.get(gid)
        if state is not None:
            state.switch_requested_at = self.runtime.now

    def note_switch(
        self, gid: int, old: Optional[str] = None, new: Optional[str] = None
    ) -> None:
        """A switch completed at the group's coordinator."""
        state = self._groups.get(gid)
        if state is None:
            return
        now = self.runtime.now
        state.win_switches += 1
        state.switches += 1
        duration: Optional[float] = None
        if state.switch_requested_at is not None:
            duration = max(0.0, now - state.switch_requested_at)
            state.switch_requested_at = None
            state.last_switch_s = duration
            if state.win_max_switch is None or duration > state.win_max_switch:
                state.win_max_switch = duration
        self.recorder.record(
            gid,
            {
                "t": now,
                "name": "switch/complete",
                "kind": "i",
                "old": old,
                "new": new,
                "duration_s": duration,
            },
        )

    def note_abort(self, gid: int, reason: str = "", phase: str = "") -> None:
        """A switch aborted; ring it and freeze the black box."""
        state = self._groups.get(gid)
        if state is None:
            return
        now = self.runtime.now
        state.win_aborts += 1
        state.aborts += 1
        state.switch_requested_at = None
        self.recorder.record(
            gid,
            {
                "t": now,
                "name": "switch/abort",
                "kind": "i",
                "reason": reason,
                "phase": phase,
            },
        )
        self.recorder.freeze(gid, "switch_abort", time=now, detail=reason or None)

    # ------------------------------------------------------------------
    # Oracle + manager callbacks
    # ------------------------------------------------------------------
    def justification(self, gid: int) -> Dict[str, Any]:
        """The live snapshot an oracle decision is judged against: the
        last rolled window plus the open window's partial counts."""
        snap = self.group_snapshot(gid)
        state = self._groups.get(gid)
        if state is not None:
            snap["window_partial"] = {
                "casts": state.win_casts,
                "delivered": state.win_delivered,
            }
        return snap

    def _on_decision(self, record: Any) -> None:
        gid = record.group_id
        self.note_escalation(gid)
        self.recorder.record(
            gid,
            {
                "t": record.time,
                "name": "oracle/decision",
                "kind": "i",
                "from": record.current,
                "to": record.target,
                "signal": record.signal,
            },
        )
        if len(self.escalations) < MAX_ESCALATIONS:
            self.escalations.append(record.as_dict())
        else:
            self.escalations_dropped += 1

    def _on_teardown(self, gid: int, dirty: bool) -> None:
        state = self._groups.get(gid)
        if state is None:
            return
        state.torn_down = True
        self.recorder.record(
            gid,
            {
                "t": self.runtime.now,
                "name": "group/teardown",
                "kind": "i",
                "dirty": dirty,
            },
        )
        if dirty:
            self.recorder.freeze(
                gid, "dirty_teardown", time=self.runtime.now
            )

    # ------------------------------------------------------------------
    # Window rolling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the repeating window-roll timer on the runtime."""
        if self._running:
            return
        self._running = True

        def tick() -> None:
            if not self._running:
                return
            self.roll()
            self._timer = self.runtime.schedule(self.config.window, tick)

        self._timer = self.runtime.schedule(self.config.window, tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _roll_group(self, state: _GroupState, now: float) -> Dict[str, Any]:
        samples = state.win_latency
        casts = state.win_casts
        delivered = state.win_delivered
        # One sample is not a distribution: quantiles need >= 2, the
        # same contract as Histogram.quantile.
        if len(samples) >= 2:
            samples.sort()
            p50: Optional[float] = _quantile(samples, 0.50) * 1e3
            p99: Optional[float] = _quantile(samples, 0.99) * 1e3
        else:
            p50 = p99 = None
        window: Dict[str, Any] = {
            "t": now,
            "window_s": self.config.window,
            "casts": casts,
            "delivered": delivered,
            "rate": delivered / self.config.window,
            "p50_ms": p50,
            "p99_ms": p99,
            "switches": state.win_switches,
            "aborts": state.win_aborts,
            "max_switch_s": state.win_max_switch,
            "delivery_ratio": (
                delivered / (casts * state.members)
                if casts and state.members
                else None
            ),
        }
        state.windows.append(window)
        record = {"name": "telemetry/window", "kind": "w"}
        record.update(window)
        self.recorder.record(state.gid, record)
        state.win_casts = 0
        state.win_delivered = 0
        state.win_latency = []
        state.win_switches = 0
        state.win_aborts = 0
        state.win_max_switch = None
        for name in self.slo.evaluate(state.gid, window):
            self.recorder.freeze(state.gid, f"slo:{name}", time=now)
        return window

    def roll(self) -> Dict[str, Any]:
        """Close every group's open window and fold the fleet rollup.

        Called by the armed timer every ``window`` seconds; callers may
        also invoke it directly (the sim poll API, or a final flush).
        Returns the fleet window just rolled.
        """
        now = self.runtime.now
        delivered = casts = switches = aborts = 0
        rate = 0.0
        for state in self._groups.values():
            window = self._roll_group(state, now)
            delivered += window["delivered"]
            casts += window["casts"]
            switches += window["switches"]
            aborts += window["aborts"]
            rate += window["rate"]
        fleet_window: Dict[str, Any] = {
            "t": now,
            "window_s": self.config.window,
            "groups": len(self._groups),
            "casts": casts,
            "delivered": delivered,
            "rate": rate,
            "switches": switches,
            "aborts": aborts,
            "strays": self._stray_drops(),
        }
        self._fleet_windows.append(fleet_window)
        return fleet_window

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _stray_drops(self) -> int:
        if self._manager is None:
            return 0
        return sum(
            port.stats.get("stray_group")
            for port in self._manager.ports.values()
        )

    def _pool_occupancy(self) -> Dict[str, Any]:
        if self._manager is None:
            return {"nodes": 0, "loads": {}}
        loads = self._manager.pool.loads
        return {
            "nodes": len(loads),
            "loads": {str(rank): load for rank, load in sorted(loads.items())},
            "min": min(loads.values()) if loads else 0,
            "max": max(loads.values()) if loads else 0,
        }

    def group_windows(self, gid: int) -> List[Dict[str, Any]]:
        """The rolled window history for one group, oldest first."""
        state = self._groups.get(gid)
        return list(state.windows) if state is not None else []

    def group_snapshot(self, gid: int) -> Dict[str, Any]:
        """One group's live snapshot: totals + the last rolled window."""
        state = self._groups.get(gid)
        if state is None:
            raise TelemetryError(f"group {gid} is not watched")
        last = state.windows[-1] if state.windows else None
        return {
            "group": gid,
            "hot": state.hot,
            "protocol": state.protocol(),
            "sequencer": state.sequencer,
            "members": state.members,
            "torn_down": state.torn_down,
            "casts": state.casts,
            "delivered": state.delivered,
            "rate": last["rate"] if last else 0.0,
            "p50_ms": last["p50_ms"] if last else None,
            "p99_ms": last["p99_ms"] if last else None,
            "switches": state.switches,
            "aborts": state.aborts,
            "last_switch_s": state.last_switch_s,
            "slo": self.slo.status(gid),
        }

    def snapshot(self) -> Dict[str, Any]:
        """The full JSON-able snapshot: fleet rollup + every group."""
        now = self.runtime.now
        uptime = max(0.0, now - self.started_at)
        delivered = sum(s.delivered for s in self._groups.values())
        casts = sum(s.casts for s in self._groups.values())
        last = self._fleet_windows[-1] if self._fleet_windows else None
        fleet: Dict[str, Any] = {
            "time": now,
            "uptime_s": uptime,
            "window_s": self.config.window,
            "windows_rolled": len(self._fleet_windows),
            "groups": len(self._groups),
            "casts": casts,
            "delivered": delivered,
            "rate": last["rate"] if last else 0.0,
            "rate_cumulative": delivered / uptime if uptime > 0 else 0.0,
            "switches": sum(s.switches for s in self._groups.values()),
            "aborts": sum(s.aborts for s in self._groups.values()),
            "strays": self._stray_drops(),
            "pool": self._pool_occupancy(),
            "escalations": len(self.escalations),
            "captures": len(self.recorder.captures),
            "slo": self.slo.snapshot(),
        }
        return {
            "fleet": fleet,
            "groups": {
                str(gid): self.group_snapshot(gid)
                for gid in sorted(self._groups)
            },
            "fleet_windows": list(self._fleet_windows),
        }

    def prometheus(self) -> str:
        """The snapshot rendered in Prometheus text exposition format."""
        from .expo import render_prometheus

        return render_prometheus(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TelemetryPlane groups={len(self._groups)} "
            f"window={self.config.window}s running={self._running}>"
        )
