"""The flight recorder: bounded per-group rings, frozen on incident.

Full tracing on a thousand-group fleet is a non-starter (the disabled
bus *is* the hot-path contract), so post-incident forensics get the
aviation treatment instead: every group keeps a fixed-size ring of its
most recent instrumentation records, and an incident — a switch abort,
an SLO starting to burn, a dirty teardown — **freezes** a copy of that
ring into a :class:`Capture`.  Captures export as a JSONL "black box":
one ``{"type": "capture", ...}`` header line per incident followed by
its ``{"type": "record", ...}`` lines, oldest first.

Records arrive two ways:

* :meth:`attach` subscribes to a live bus and rings every event/span it
  streams (routing by the ``group`` event arg; group-less producers —
  the single-group chaos harness — land in ring 0).  Because the bus
  streams past its retention cap, this works on the fleet's
  ``max_events=0`` metrics-only bus too.
* :meth:`record` takes synthetic records directly — the telemetry
  plane rings its own window summaries, oracle decisions, and switch
  lifecycle notes this way, so a fleet black box is useful even though
  fleet member stacks run uninstrumented.

Memory is bounded everywhere: rings are ``deque(maxlen=capacity)``,
captures are capped (``max_captures``; overflow counted, not stored),
and repeat freezes of one (group, trigger) pair are deduplicated.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from ...errors import TelemetryError
from ..bus import Bus, Event

__all__ = ["Capture", "FlightRecorder"]


class Capture:
    """One frozen ring: the black-box contents for one incident."""

    __slots__ = ("group", "trigger", "time", "detail", "records")

    def __init__(
        self,
        group: int,
        trigger: str,
        time: float,
        detail: Optional[str],
        records: List[Dict[str, Any]],
    ) -> None:
        self.group = group
        self.trigger = trigger
        self.time = time
        self.detail = detail
        self.records = records

    def header(self) -> Dict[str, Any]:
        return {
            "type": "capture",
            "group": self.group,
            "trigger": self.trigger,
            "time": self.time,
            "detail": self.detail,
            "records": len(self.records),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Capture g{self.group} {self.trigger!r} "
            f"records={len(self.records)}>"
        )


class FlightRecorder:
    """Per-group rings of recent records, frozen to captures on incident."""

    def __init__(self, capacity: int = 64, max_captures: int = 32) -> None:
        if capacity < 1:
            raise TelemetryError("flight recorder capacity must be >= 1")
        if max_captures < 1:
            raise TelemetryError("flight recorder needs max_captures >= 1")
        self.capacity = capacity
        self.max_captures = max_captures
        self.captures: List[Capture] = []
        self.captures_dropped = 0
        self.records_seen = 0
        self._rings: Dict[int, Deque[Dict[str, Any]]] = {}
        self._frozen: Set[Tuple[int, str]] = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _ring(self, group: int) -> Deque[Dict[str, Any]]:
        ring = self._rings.get(group)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[group] = ring
        return ring

    def record(self, group: int, record: Dict[str, Any]) -> None:
        """Append one record to ``group``'s ring (evicting the oldest)."""
        self._ring(group).append(record)
        self.records_seen += 1

    def record_event(self, event: Event) -> None:
        """Ring one bus event, routed by its ``group`` arg (default 0)."""
        group = event.args.get("group")
        record: Dict[str, Any] = {
            "t": event.time,
            "name": event.name,
            "kind": event.kind,
        }
        if event.rank is not None:
            record["rank"] = event.rank
        if event.dur:
            record["dur"] = event.dur
        if event.args:
            record["args"] = dict(event.args)
        self.record(group if isinstance(group, int) else 0, record)

    def attach(self, bus: Bus, freeze_on_abort: bool = True) -> None:
        """Subscribe to ``bus``: ring every event, freeze on switch aborts."""

        def on_event(event: Event) -> None:
            self.record_event(event)
            if freeze_on_abort and event.name == "switch/abort":
                group = event.args.get("group")
                self.freeze(
                    group if isinstance(group, int) else 0,
                    "switch_abort",
                    detail=str(event.args.get("reason", "")) or None,
                )

        bus.subscribe(on_event)

    # ------------------------------------------------------------------
    # Freezing + export
    # ------------------------------------------------------------------
    def freeze(
        self,
        group: int,
        trigger: str,
        time: float = 0.0,
        detail: Optional[str] = None,
    ) -> Optional[Capture]:
        """Snapshot ``group``'s ring as a capture.

        Returns the capture, or None when nothing was stored: an empty
        ring records nothing, one (group, trigger) pair freezes at most
        once (the *first* incident is the interesting one), and capture
        storage is capped (overflow counted in ``captures_dropped``).
        """
        ring = self._rings.get(group)
        if not ring or (group, trigger) in self._frozen:
            return None
        self._frozen.add((group, trigger))
        if len(self.captures) >= self.max_captures:
            self.captures_dropped += 1
            return None
        records = list(ring)
        if not time and records:
            last_t = records[-1].get("t")
            if isinstance(last_t, (int, float)):
                time = float(last_t)
        capture = Capture(group, trigger, time, detail, records)
        self.captures.append(capture)
        return capture

    def lines(self) -> List[str]:
        """The JSONL black box: header + record lines per capture."""
        out: List[str] = []
        for capture in self.captures:
            out.append(json.dumps(capture.header(), sort_keys=True))
            for record in capture.records:
                line = {"type": "record", "group": capture.group}
                line.update(record)
                out.append(json.dumps(line, sort_keys=True, default=str))
        return out

    def write_jsonl(self, path: str) -> int:
        """Write the black box to ``path``; returns the line count."""
        lines = self.lines()
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder groups={len(self._rings)} "
            f"captures={len(self.captures)}>"
        )
