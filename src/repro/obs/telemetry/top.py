"""``repro top``: a live terminal dashboard over telemetry snapshots.

Each source is either a **live endpoint** (``http://host:port`` — the
fleet runner's :class:`~repro.obs.telemetry.expo.TelemetryServer`) or a
**snapshot file** (the payload ``repro fleet --telemetry-json`` /
``--scrape-out`` writes, or a bare snapshot dict).  Give several
sources — one per fleet shard — and the dashboard folds them through
:func:`~repro.obs.telemetry.merge.merge_payloads` into a single fleet
view per frame.  Interactive mode
redraws every ``interval`` seconds with the hottest groups on top;
``--once`` renders a single frame and exits, and ``--once --json``
prints the raw payload for scripts — the contract
``scripts/check_telemetry.py`` and CI rely on.

Rendering is pure string building (testable without a TTY); the only
terminal control used is the ANSI clear-home pair between live frames.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

__all__ = ["load_payload", "load_sources", "render_top", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def load_payload(source: str, timeout: float = 5.0) -> Dict[str, Any]:
    """Fetch one telemetry payload from a URL or a snapshot file."""
    if source.startswith(("http://", "https://")):
        url = source.rstrip("/") + "/snapshot"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            snapshot = json.loads(response.read().decode())
        return {
            "schema_version": 1,
            "kind": "telemetry",
            "source": "scrape",
            "url": source,
            "snapshot": snapshot,
        }
    with open(source) as handle:
        payload = json.load(handle)
    if "snapshot" in payload:
        return payload
    if "fleet" in payload:  # a bare snapshot dict
        return {
            "schema_version": 1,
            "kind": "telemetry",
            "source": "file",
            "snapshot": payload,
        }
    raise ValueError(
        f"{source!r} is neither a telemetry payload nor a snapshot"
    )


def load_sources(
    sources: Sequence[str], timeout: float = 5.0
) -> Dict[str, Any]:
    """Fetch every source and fold them into one payload.

    One source passes through untouched (the single-fleet fast path);
    several — one per shard — merge via
    :func:`~repro.obs.telemetry.merge.merge_payloads`.
    """
    payloads = [load_payload(source, timeout=timeout) for source in sources]
    if len(payloads) == 1:
        return payloads[0]
    from .merge import merge_payloads

    return merge_payloads(payloads, sources=list(sources))


def _num(value: Any, digits: int = 1, missing: str = "-") -> str:
    if not isinstance(value, (int, float)):
        return missing
    return f"{value:.{digits}f}"


def render_top(payload: Dict[str, Any], limit: int = 15) -> str:
    """One dashboard frame: fleet header + the hottest groups."""
    snapshot = payload.get("snapshot", payload)
    fleet = snapshot.get("fleet", {})
    groups: Dict[str, Dict[str, Any]] = snapshot.get("groups", {})
    slo = fleet.get("slo", {})
    pool = fleet.get("pool", {})

    lines: List[str] = []
    lines.append(
        f"fleet  t={_num(fleet.get('time'), 2)}s  "
        f"groups={fleet.get('groups', 0)}  "
        f"rate={_num(fleet.get('rate'), 0)}/s  "
        f"delivered={fleet.get('delivered', 0)}  "
        f"switches={fleet.get('switches', 0)}  "
        f"aborts={fleet.get('aborts', 0)}  "
        f"strays={fleet.get('strays', 0)}"
    )
    burning = slo.get("groups_burning", 0)
    verdict = "OK" if not burning else f"BURNING x{burning}"
    lines.append(
        f"slo    {verdict}  burn={_num(slo.get('burn_minutes'), 2)}min  "
        f"alerts={slo.get('alerts', 0)}  "
        f"captures={fleet.get('captures', 0)}  "
        f"escalations={fleet.get('escalations', 0)}"
    )
    if pool.get("nodes"):
        lines.append(
            f"pool   sequencers on {pool['nodes']} nodes  "
            f"load min={pool.get('min', 0)} max={pool.get('max', 0)}"
        )
    lines.append("")
    header = (
        f"{'GROUP':>6}  {'PROT':<10} {'RATE':>8} {'P50ms':>8} "
        f"{'P99ms':>8} {'SW':>3} {'AB':>3}  SLO"
    )
    lines.append(header)
    lines.append("-" * len(header))

    def heat(item) -> float:
        group = item[1]
        rate = group.get("rate")
        return float(rate) if isinstance(rate, (int, float)) else 0.0

    hottest = sorted(groups.items(), key=heat, reverse=True)[: max(0, limit)]
    for gid, group in hottest:
        group_slo = group.get("slo", {})
        verdict = (
            "ok"
            if group_slo.get("ok", True)
            else ",".join(group_slo.get("burning", [])) or "burn"
        )
        lines.append(
            f"{gid:>6}  {str(group.get('protocol') or '-'):<10} "
            f"{_num(group.get('rate'), 1):>8} "
            f"{_num(group.get('p50_ms'), 2):>8} "
            f"{_num(group.get('p99_ms'), 2):>8} "
            f"{group.get('switches', 0):>3} "
            f"{group.get('aborts', 0):>3}  {verdict}"
        )
    if len(groups) > limit:
        lines.append(f"... {len(groups) - limit} more groups")
    return "\n".join(lines)


def run_top(
    source: Union[str, Sequence[str]],
    interval: float = 2.0,
    limit: int = 15,
    once: bool = False,
    as_json: bool = False,
    frames: Optional[int] = None,
    write: Callable[[str], None] = print,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Drive the dashboard; returns a process exit code.

    ``source`` is one snapshot source or a list of them (one per
    shard); lists merge into a single fleet view each frame.
    ``frames`` bounds the number of redraws (tests use it; interactive
    use leaves it None and stops on Ctrl-C).
    """
    sources = [source] if isinstance(source, str) else list(source)
    if once:
        frames = 1
    shown = 0
    while frames is None or shown < frames:
        try:
            payload = load_sources(sources)
        except (OSError, ValueError, urllib.error.URLError) as exc:
            names = sources[0] if len(sources) == 1 else sources
            write(f"cannot read telemetry from {names!r}: {exc}")
            return 1
        if as_json:
            write(json.dumps(payload, indent=2, sort_keys=True))
        else:
            prefix = "" if once or shown == 0 else _CLEAR
            write(prefix + render_top(payload, limit=limit))
        shown += 1
        if frames is not None and shown >= frames:
            break
        try:
            sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            break
    return 0
