"""The streaming telemetry plane: watch a fleet's drift live.

The PR 3 obs layer records *artifacts* — a traced run dumps Perfetto
JSON after the fact.  The fleet runtime multiplexes thousands of groups
through one process, and the paper's whole premise is that the run's
meta-properties (load, loss, latency) drift *while it runs*; this
package is the layer that makes the drift visible before the run ends:

* :mod:`repro.obs.telemetry.aggregate` — :class:`TelemetryPlane`, the
  per-group aggregation pipeline: windowed snapshots (delivered msgs/s,
  p50/p99 delivery latency, switch counts/durations, stray-group drops,
  sequencer-pool occupancy) with bounded memory per group.
* :mod:`repro.obs.telemetry.slo` — :class:`SLOEngine`, declarative
  targets (delivery-latency budget, time-to-switch budget, delivery-
  ratio floor) evaluated per window, emitting ``slo/burn`` events onto
  the bus and counting burn minutes.
* :mod:`repro.obs.telemetry.recorder` — :class:`FlightRecorder`, a
  fixed-size ring of recent spans/events per group, frozen to a JSONL
  "black box" when a switch aborts, an SLO starts burning, or a
  teardown is dirty.
* :mod:`repro.obs.telemetry.expo` — the Prometheus-style text endpoint
  and JSON snapshot endpoint served from the asyncio runtime's loop
  (under sim, :meth:`TelemetryPlane.snapshot` is the poll API).
* :mod:`repro.obs.telemetry.top` — the ``repro top`` terminal
  dashboard (hottest groups, protocol, rates, SLO state).
* :mod:`repro.obs.telemetry.merge` — fold per-shard plane snapshots
  (``repro.fleet.sharding``) into one fleet view; also powers
  multi-source ``repro top``.

Like the rest of ``repro.obs``, all of it is **off by default**: a
fleet run grows a telemetry plane only when asked
(``FleetConfig(telemetry=True)`` / ``repro fleet --telemetry``), and an
unasked run is byte-identical to one built before this package existed.
"""

from .aggregate import WINDOW_SAMPLE_CAP, TelemetryConfig, TelemetryPlane
from .merge import merge_payloads, merge_snapshots
from .recorder import Capture, FlightRecorder
from .slo import SLO_SIGNALS, SLOEngine, SLOTarget

__all__ = [
    "Capture",
    "FlightRecorder",
    "WINDOW_SAMPLE_CAP",
    "SLOEngine",
    "SLOTarget",
    "SLO_SIGNALS",
    "TelemetryConfig",
    "TelemetryPlane",
    "merge_payloads",
    "merge_snapshots",
]
