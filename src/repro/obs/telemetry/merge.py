"""Merging telemetry views: many shard snapshots, one fleet.

A process-sharded fleet (``repro.fleet.sharding``) grows one
:class:`~repro.obs.telemetry.aggregate.TelemetryPlane` per shard — each
plane watches only the groups its process hosts.  This module folds
those partial views back into a single fleet snapshot with the same
shape :meth:`TelemetryPlane.snapshot` emits, so everything downstream
(``repro top``, the Prometheus renderer, ``check_telemetry.py``) works
on a merged view without knowing shards exist.

The same machinery powers multi-source ``repro top``: point it at
several snapshot files or live endpoints (one per shard) and it renders
the merged fleet.

Merge semantics, per field class:

* **counts** (delivered, casts, switches, aborts, strays, escalations,
  captures, SLO alerts/burn) — summed; shards partition the fleet, so
  sums are the fleet totals.
* **clocks** (``time``, ``uptime_s``, ``windows_rolled``) — maximum;
  shards share one virtual/wall timeline, they do not accumulate it.
* **groups** — dict union.  Shard group sets are disjoint by
  construction; when two sources *do* carry the same group (divergent
  snapshots of one fleet taken at different times), the one whose
  group has seen more deliveries wins — the fresher view.
* **pool loads** — per-rank sums (each shard records only its own
  slice of the global sequencer plan).
* **fleet windows** — aligned by window timestamp ``t`` and summed,
  so the merged history is what one process-wide plane would have
  rolled.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ...errors import TelemetryError

__all__ = ["merge_payloads", "merge_snapshots"]

#: fleet-level fields summed across sources.
_FLEET_SUMS = (
    "groups",
    "casts",
    "delivered",
    "rate",
    "switches",
    "aborts",
    "strays",
    "escalations",
    "captures",
)
#: fleet-level fields where the furthest-along source wins.
_FLEET_MAXES = ("time", "uptime_s", "windows_rolled")
#: per-window fields summed when windows align on ``t``.
_WINDOW_SUMS = ("groups", "casts", "delivered", "rate", "switches", "aborts", "strays")


def _merge_pool(pools: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    loads: Dict[str, int] = {}
    for pool in pools:
        for rank, load in (pool.get("loads") or {}).items():
            loads[rank] = loads.get(rank, 0) + load
    loads = {rank: loads[rank] for rank in sorted(loads, key=int)}
    return {
        "nodes": len(loads),
        "loads": loads,
        "min": min(loads.values()) if loads else 0,
        "max": max(loads.values()) if loads else 0,
    }


def _merge_slo(slos: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    targets: List[Dict[str, Any]] = []
    seen = set()
    for slo in slos:
        for target in slo.get("targets", []):
            name = target.get("name")
            if name not in seen:
                seen.add(name)
                targets.append(target)
    return {
        "targets": targets,
        "alerts": sum(slo.get("alerts", 0) for slo in slos),
        "burn_minutes": sum(slo.get("burn_minutes", 0.0) for slo in slos),
        "groups_burning": sum(slo.get("groups_burning", 0) for slo in slos),
    }


def _merge_windows(
    histories: Sequence[List[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    by_t: Dict[float, Dict[str, Any]] = {}
    for history in histories:
        for window in history:
            t = window.get("t")
            merged = by_t.get(t)
            if merged is None:
                by_t[t] = dict(window)
            else:
                for key in _WINDOW_SUMS:
                    if key in window or key in merged:
                        merged[key] = merged.get(key, 0) + window.get(key, 0)
    return [by_t[t] for t in sorted(by_t)]


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold shard-plane snapshots into one fleet-shaped snapshot."""
    if not snapshots:
        raise TelemetryError("nothing to merge: no snapshots given")
    if len(snapshots) == 1:
        return dict(snapshots[0])

    groups: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for gid, group in (snapshot.get("groups") or {}).items():
            held = groups.get(gid)
            if held is None or group.get("delivered", 0) >= held.get(
                "delivered", 0
            ):
                groups[gid] = group
    groups = {gid: groups[gid] for gid in sorted(groups, key=int)}

    fleets = [snapshot.get("fleet", {}) for snapshot in snapshots]
    fleet: Dict[str, Any] = {}
    for key in _FLEET_SUMS:
        fleet[key] = sum(f.get(key, 0) for f in fleets)
    for key in _FLEET_MAXES:
        fleet[key] = max(f.get(key, 0) for f in fleets)
    fleet["window_s"] = fleets[0].get("window_s")
    # The union is authoritative for the group count: duplicate gids
    # across divergent sources collapse to one row.
    fleet["groups"] = len(groups)
    uptime = fleet.get("uptime_s") or 0.0
    fleet["rate_cumulative"] = (
        fleet["delivered"] / uptime if uptime > 0 else 0.0
    )
    fleet["pool"] = _merge_pool([f.get("pool", {}) for f in fleets])
    fleet["slo"] = _merge_slo([f.get("slo", {}) for f in fleets])

    return {
        "fleet": fleet,
        "groups": groups,
        "fleet_windows": _merge_windows(
            [snapshot.get("fleet_windows", []) for snapshot in snapshots]
        ),
    }


def merge_payloads(
    payloads: Sequence[Dict[str, Any]],
    sources: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Merge full telemetry *payloads* (the ``repro top`` file/URL shape).

    Each payload is ``{"snapshot": ..., ...}``; the result carries the
    merged snapshot, concatenated escalation records (time-ordered when
    stamped), and a re-rendered Prometheus text body.
    """
    if not payloads:
        raise TelemetryError("nothing to merge: no payloads given")
    if len(payloads) == 1:
        return dict(payloads[0])
    snapshot = merge_snapshots(
        [payload.get("snapshot", payload) for payload in payloads]
    )
    escalations: List[Dict[str, Any]] = []
    for payload in payloads:
        escalations.extend(payload.get("escalations", []))
    escalations.sort(key=lambda rec: (rec.get("t", 0.0), rec.get("group", 0)))
    from .expo import render_prometheus

    merged: Dict[str, Any] = {
        "schema_version": 1,
        "kind": "telemetry",
        "source": "merge",
        "merged_from": len(payloads),
        "snapshot": snapshot,
        "escalations": escalations,
        "prometheus": render_prometheus(snapshot),
    }
    if sources is not None:
        merged["sources"] = list(sources)
    return merged
