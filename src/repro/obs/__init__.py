"""Observability: instrumentation bus, metrics registry, trace exporters.

The paper's headline numbers — the Figure 2 crossover, the ~31 ms
switching overhead, the oscillation fix — are all *measurement* claims.
This package is the measurement layer that backs them up on live runs:

* :mod:`repro.obs.bus` — a cheap structured-event bus with clock-stamped
  spans.  Timestamps come from the :class:`~repro.runtime.api.Clock`
  interface, so the same instrumentation yields virtual-time traces on
  :class:`~repro.runtime.sim_runtime.SimRuntime` and wall-clock traces on
  :class:`~repro.runtime.aio.AsyncioRuntime`.
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms (p50/p90/p99 summaries), snapshot-able to JSON.
* :mod:`repro.obs.export` — JSONL event logs and Chrome trace-event
  files loadable in Perfetto / ``chrome://tracing``.

Instrumentation is **off by default**: the process-wide default bus is
disabled, every emit site is guarded by ``enabled``, and a disabled bus
allocates no events and fires no callbacks — the figure-reproduction
pipelines stay bit-for-bit identical (see
``tests/integration/test_runtime_parity.py``).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from .bus import (
    Bus,
    BusScope,
    Event,
    PhaseTracker,
    Span,
    default_bus,
    null_scope,
    set_default_bus,
)
from .export import (
    chrome_trace_events,
    events_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry

__all__ = [
    "Bus",
    "BusScope",
    "DEFAULT_BUCKETS",
    "Event",
    "Histogram",
    "MetricsRegistry",
    "PhaseTracker",
    "Span",
    "chrome_trace_events",
    "default_bus",
    "events_to_jsonl",
    "null_scope",
    "set_default_bus",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
]
