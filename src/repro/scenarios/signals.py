"""Windowed load/health signals feeding a scenario's oracle.

The paper leaves *what the oracle watches* open ("we assume that some
kind of oracle decides when a switch is necessary", §1).  The scenario
catalog makes that concrete: each scenario names one signal from this
module, and the oracle thresholds are expressed in its units.

:class:`SignalTracker` is fed by the scenario runner's delivery/send
hooks and — on the simulated mesh — the network's drop counters, and
computes every signal over a trailing time window.  All state lives in
deques pruned lazily at read time, so the tracker adds no scheduled
events of its own and stays deterministic on the sim runtime (reads
happen only at the oracle's fixed poll times).

Signals:

* ``active_senders`` — how many workload generators are currently
  running (the §7 crossover signal: subgroup size).
* ``offered_rate`` — casts/second group-wide over the window.
* ``delivered_rate`` — deliveries/second at the observer rank.
* ``delivery_latency_ms`` — mean end-to-end latency (ms) of workload
  payloads delivered at the observer rank during the window.
* ``loss_ratio`` — fraction of copies the simulated network dropped
  among those sent since the previous read (sim runtime only).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple

from ..errors import ScenarioError
from ..runtime.api import Clock

__all__ = ["SignalTracker"]


class SignalTracker:
    """Computes the catalog's oracle signals over a trailing window."""

    def __init__(
        self,
        clock: Clock,
        window: float,
        senders: Sequence = (),
        network=None,
    ) -> None:
        if window <= 0:
            raise ScenarioError(f"signal window must be positive, got {window}")
        self.clock = clock
        self.window = window
        self.senders = list(senders)
        self.network = network
        self._casts: Deque[float] = deque()
        self._deliveries: Deque[Tuple[float, float]] = deque()  # (t, latency)
        # loss_ratio EWMA-free state: counter values at the last read.
        self._last_sends = 0
        self._last_drops = 0
        self._loss_ratio = 0.0

    # ------------------------------------------------------------------
    # Feeding (wired up by the scenario runner)
    # ------------------------------------------------------------------
    def record_cast(self) -> None:
        """One workload cast left some member's stack."""
        self._casts.append(self.clock.now)

    def record_delivery(self, latency: float) -> None:
        """One workload payload arrived at the observer rank."""
        self._deliveries.append((self.clock.now, latency))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def metric(self, name: str) -> Callable[[], float]:
        """A zero-argument callable for :class:`~repro.core.oracle.Oracle`."""
        reader = self._readers().get(name)
        if reader is None:
            raise ScenarioError(
                f"unknown signal {name!r}; known: {sorted(self._readers())}"
            )
        return reader

    def value(self, name: str) -> float:
        """Read signal ``name`` right now."""
        return self.metric(name)()

    def _readers(self) -> Dict[str, Callable[[], float]]:
        return {
            "active_senders": self.active_senders,
            "offered_rate": self.offered_rate,
            "delivered_rate": self.delivered_rate,
            "delivery_latency_ms": self.delivery_latency_ms,
            "loss_ratio": self.loss_ratio,
        }

    def active_senders(self) -> float:
        return float(sum(1 for sender in self.senders if sender.active))

    def offered_rate(self) -> float:
        self._prune(self._casts, lambda entry: entry)
        return len(self._casts) / self.window

    def delivered_rate(self) -> float:
        self._prune(self._deliveries, lambda entry: entry[0])
        return len(self._deliveries) / self.window

    def delivery_latency_ms(self) -> float:
        self._prune(self._deliveries, lambda entry: entry[0])
        if not self._deliveries:
            return 0.0
        total = sum(latency for __, latency in self._deliveries)
        return total / len(self._deliveries) * 1e3

    def loss_ratio(self) -> float:
        """Drops / sends since the previous read (decayed when idle).

        Reading the network's cumulative counters differentially keeps
        the signal responsive: a lossy phase shows up within one poll,
        and a later clean phase pulls the ratio back down instead of
        averaging over the whole run.  When no copies were sent between
        reads the last ratio is retained.
        """
        if self.network is None:
            raise ScenarioError(
                "loss_ratio needs a simulated network with drop counters"
            )
        sends = self.network.stats.get("sends")
        drops = self.network.stats.get("drops")
        delta_sends = sends - self._last_sends
        delta_drops = drops - self._last_drops
        if delta_sends > 0:
            self._loss_ratio = delta_drops / delta_sends
            self._last_sends = sends
            self._last_drops = drops
        return self._loss_ratio

    # ------------------------------------------------------------------
    def _prune(self, entries: Deque, timestamp: Callable) -> None:
        horizon = self.clock.now - self.window
        while entries and timestamp(entries[0]) < horizon:
            entries.popleft()
