"""The scenario catalog: scored, JSON-driven chaos/oracle stories.

Each catalog entry (``catalog/*.json``) scripts a network or load drift
— the *reason* a deployment would switch protocols — and declares the
adaptation a correct oracle must produce.  The runner executes any
entry on the deterministic sim runtime or (for clean-network entries)
the real asyncio/UDP runtime, and the scorer turns the outcome into a
:class:`~repro.scenarios.runner.ScenarioVerdict`.

``repro scenario <name>`` runs one entry; ``repro scenario --all``
sweeps the catalog.  See ``docs/SCENARIOS.md``.
"""

from .runner import ScenarioVerdict, run_scenario
from .signals import SignalTracker
from .spec import (
    ExpectSpec,
    GroupSpec,
    OracleSpec,
    PhaseNet,
    PhaseSpec,
    ScenarioSpec,
    SettleSpec,
    catalog_dir,
    load_catalog,
    load_scenario,
)

__all__ = [
    "ExpectSpec",
    "GroupSpec",
    "OracleSpec",
    "PhaseNet",
    "PhaseSpec",
    "ScenarioSpec",
    "ScenarioVerdict",
    "SettleSpec",
    "SignalTracker",
    "catalog_dir",
    "load_catalog",
    "load_scenario",
    "run_scenario",
]
