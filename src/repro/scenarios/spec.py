"""Scenario specs: the JSON schema of the catalog, loaded and validated.

A *scenario* is a named, machine-checkable story about network
meta-property drift (the paper's reason to switch protocols at all):
a sequence of **phases**, each pinning the network conditions and the
offered workload for a stretch of time, plus an **oracle** policy that
is supposed to notice the drift and an **expectation** describing the
adaptation a correct oracle produces — which protocol the group should
end on, how many switches are tolerable, and how quickly the switch
must land after the drift begins.

Specs live as JSON files under ``repro/scenarios/catalog/`` (mirroring
the mosh-lite testbed layout) so adding a scenario is a data change,
not a code change.  :func:`load_catalog` loads and validates the whole
directory; :func:`ScenarioSpec.from_dict` is the single validation
choke point, so a malformed spec fails loudly at load time rather than
twenty simulated seconds into a run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ScenarioError

__all__ = [
    "ExpectSpec",
    "GroupSpec",
    "OracleSpec",
    "PhaseNet",
    "PhaseSpec",
    "ScenarioSpec",
    "SettleSpec",
    "catalog_dir",
    "load_catalog",
    "load_scenario",
]

#: Protocol slot names every scenario group switches between (the same
#: pair the ``repro run`` demo uses).
PROTOCOLS = ("sequencer", "tokenring")

#: Runtimes a scenario may declare.
RUNTIMES = ("sim", "asyncio")

#: Oracle signals the tracker can compute (see scenarios/signals.py).
SIGNALS = (
    "active_senders",
    "offered_rate",
    "delivered_rate",
    "delivery_latency_ms",
    "loss_ratio",
)


def _require(mapping: Mapping[str, Any], key: str, where: str) -> Any:
    if key not in mapping:
        raise ScenarioError(f"{where}: missing required field {key!r}")
    return mapping[key]


def _number(value: Any, where: str, minimum: Optional[float] = None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{where}: expected a number, got {value!r}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise ScenarioError(f"{where}: must be >= {minimum}, got {value}")
    return value


def _unknown_keys(mapping: Mapping[str, Any], known: Sequence[str], where: str) -> None:
    extra = set(mapping) - set(known)
    if extra:
        raise ScenarioError(f"{where}: unknown field(s) {sorted(extra)}")


@dataclass(frozen=True)
class GroupSpec:
    """Group shape: who runs, and on what protocol they start."""

    members: int = 6
    initial: str = "sequencer"
    token_interval: float = 0.005

    @staticmethod
    def from_dict(data: Mapping[str, Any], where: str) -> "GroupSpec":
        _unknown_keys(data, ("members", "initial", "token_interval"), where)
        members = data.get("members", 6)
        if not isinstance(members, int) or members < 2:
            raise ScenarioError(f"{where}: members must be an int >= 2")
        initial = data.get("initial", "sequencer")
        if initial not in PROTOCOLS:
            raise ScenarioError(
                f"{where}: initial must be one of {PROTOCOLS}, got {initial!r}"
            )
        return GroupSpec(
            members=members,
            initial=initial,
            token_interval=_number(
                data.get("token_interval", 0.005), f"{where}.token_interval", 1e-6
            ),
        )


@dataclass(frozen=True)
class OracleSpec:
    """The adaptation policy under test: a hysteresis band over a signal.

    ``low=None`` makes the oracle latching (it escalates to
    ``high_protocol`` and never returns on its own).
    """

    signal: str
    high: float
    low: Optional[float]
    low_protocol: str
    high_protocol: str
    dwell: float = 1.0
    poll: float = 0.1
    window: float = 0.5

    @staticmethod
    def from_dict(data: Mapping[str, Any], where: str) -> "OracleSpec":
        _unknown_keys(
            data,
            ("signal", "high", "low", "low_protocol", "high_protocol",
             "dwell", "poll", "window"),
            where,
        )
        signal = _require(data, "signal", where)
        if signal not in SIGNALS:
            raise ScenarioError(
                f"{where}: unknown signal {signal!r}; known: {SIGNALS}"
            )
        low_protocol = _require(data, "low_protocol", where)
        high_protocol = _require(data, "high_protocol", where)
        for name, value in (("low_protocol", low_protocol),
                            ("high_protocol", high_protocol)):
            if value not in PROTOCOLS:
                raise ScenarioError(
                    f"{where}.{name}: must be one of {PROTOCOLS}, got {value!r}"
                )
        if low_protocol == high_protocol:
            raise ScenarioError(f"{where}: low and high protocol are the same")
        high = _number(_require(data, "high", where), f"{where}.high")
        low = data.get("low")
        if low is not None:
            low = _number(low, f"{where}.low")
            if low > high:
                raise ScenarioError(
                    f"{where}: hysteresis band inverted ({low} > {high})"
                )
        return OracleSpec(
            signal=signal,
            high=high,
            low=low,
            low_protocol=low_protocol,
            high_protocol=high_protocol,
            dwell=_number(data.get("dwell", 1.0), f"{where}.dwell", 0.0),
            poll=_number(data.get("poll", 0.1), f"{where}.poll", 1e-6),
            window=_number(data.get("window", 0.5), f"{where}.window", 1e-6),
        )


@dataclass(frozen=True)
class PhaseNet:
    """Network conditions during one phase (sim runtime only).

    ``latency_ms`` is the uniform one-way latency of the mesh; ``loss``
    and ``dup`` are per-copy probabilities; ``jitter_ms`` is the max
    uniform extra delay (which reorders close-together packets).
    """

    latency_ms: float = 1.0
    loss: float = 0.0
    dup: float = 0.0
    jitter_ms: float = 0.0

    @property
    def clean(self) -> bool:
        """True when this phase injects no impairment at all."""
        return (
            self.loss == 0.0
            and self.dup == 0.0
            and self.jitter_ms == 0.0
            and self.latency_ms == 1.0
        )

    @staticmethod
    def from_dict(data: Mapping[str, Any], where: str) -> "PhaseNet":
        _unknown_keys(data, ("latency_ms", "loss", "dup", "jitter_ms"), where)
        loss = _number(data.get("loss", 0.0), f"{where}.loss", 0.0)
        dup = _number(data.get("dup", 0.0), f"{where}.dup", 0.0)
        for name, value in (("loss", loss), ("dup", dup)):
            if value >= 1.0:
                raise ScenarioError(f"{where}.{name}: must be < 1.0")
        return PhaseNet(
            latency_ms=_number(
                data.get("latency_ms", 1.0), f"{where}.latency_ms", 0.0
            ),
            loss=loss,
            dup=dup,
            jitter_ms=_number(data.get("jitter_ms", 0.0), f"{where}.jitter_ms", 0.0),
        )


@dataclass(frozen=True)
class PhaseSpec:
    """One stretch of the scenario: fixed conditions, fixed workload."""

    name: str
    duration: float
    senders: int
    rate: float
    net: PhaseNet = field(default_factory=PhaseNet)

    @staticmethod
    def from_dict(data: Mapping[str, Any], where: str, members: int) -> "PhaseSpec":
        _unknown_keys(data, ("name", "duration", "workload", "net"), where)
        name = _require(data, "name", where)
        if not isinstance(name, str) or not name:
            raise ScenarioError(f"{where}: phase name must be a non-empty string")
        workload = _require(data, "workload", where)
        _unknown_keys(workload, ("senders", "rate"), f"{where}.workload")
        senders = _require(workload, "senders", f"{where}.workload")
        if not isinstance(senders, int) or not 1 <= senders <= members:
            raise ScenarioError(
                f"{where}.workload.senders: must be an int in [1, {members}]"
            )
        return PhaseSpec(
            name=name,
            duration=_number(_require(data, "duration", where),
                             f"{where}.duration", 1e-6),
            senders=senders,
            rate=_number(_require(workload, "rate", f"{where}.workload"),
                         f"{where}.workload.rate", 1e-6),
            net=PhaseNet.from_dict(data.get("net", {}), f"{where}.net"),
        )


@dataclass(frozen=True)
class ExpectSpec:
    """The machine-checkable verdict contract.

    Attributes:
        protocol: the protocol every live member must end on.
        max_switches: ceiling on completed switches (0 = stability
            scenario: the oracle must hold its ground through the storm).
        drift_phase: the phase whose *start* is t=0 for the
            time-to-switch clock (None for stability scenarios).
        max_time_to_switch: ceiling, in seconds after the drift phase
            begins, on when the (first) switch completes group-wide.
        min_delivery_ratio: floor on delivered/cast for every live
            member after settling (loss scenarios prove the reliable
            layer cleans up behind the faults).
    """

    protocol: str
    max_switches: int = 1
    drift_phase: Optional[str] = None
    max_time_to_switch: Optional[float] = None
    min_delivery_ratio: float = 0.9

    @staticmethod
    def from_dict(
        data: Mapping[str, Any], where: str, phase_names: Sequence[str]
    ) -> "ExpectSpec":
        _unknown_keys(
            data,
            ("protocol", "max_switches", "drift_phase", "max_time_to_switch",
             "min_delivery_ratio"),
            where,
        )
        protocol = _require(data, "protocol", where)
        if protocol not in PROTOCOLS:
            raise ScenarioError(
                f"{where}.protocol: must be one of {PROTOCOLS}, got {protocol!r}"
            )
        max_switches = data.get("max_switches", 1)
        if not isinstance(max_switches, int) or max_switches < 0:
            raise ScenarioError(f"{where}.max_switches: must be an int >= 0")
        drift_phase = data.get("drift_phase")
        if drift_phase is not None and drift_phase not in phase_names:
            raise ScenarioError(
                f"{where}.drift_phase: {drift_phase!r} names no phase "
                f"(have {list(phase_names)})"
            )
        max_tts = data.get("max_time_to_switch")
        if max_tts is not None:
            max_tts = _number(max_tts, f"{where}.max_time_to_switch", 1e-6)
            if drift_phase is None:
                raise ScenarioError(
                    f"{where}: max_time_to_switch needs a drift_phase anchor"
                )
        ratio = _number(
            data.get("min_delivery_ratio", 0.9), f"{where}.min_delivery_ratio", 0.0
        )
        if ratio > 1.0:
            raise ScenarioError(f"{where}.min_delivery_ratio: must be <= 1.0")
        return ExpectSpec(
            protocol=protocol,
            max_switches=max_switches,
            drift_phase=drift_phase,
            max_time_to_switch=max_tts,
            min_delivery_ratio=ratio,
        )


@dataclass(frozen=True)
class SettleSpec:
    """Convergence grace after the last phase (chaos-harness shape)."""

    windows: int = 20
    window: float = 0.5

    @staticmethod
    def from_dict(data: Mapping[str, Any], where: str) -> "SettleSpec":
        _unknown_keys(data, ("windows", "window"), where)
        windows = data.get("windows", 20)
        if not isinstance(windows, int) or windows < 1:
            raise ScenarioError(f"{where}.windows: must be an int >= 1")
        return SettleSpec(
            windows=windows,
            window=_number(data.get("window", 0.5), f"{where}.window", 1e-6),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully validated catalog entry."""

    name: str
    summary: str
    runtimes: Tuple[str, ...]
    seed: int
    group: GroupSpec
    oracle: OracleSpec
    phases: Tuple[PhaseSpec, ...]
    expect: ExpectSpec
    settle: SettleSpec

    @property
    def duration(self) -> float:
        """Total scripted duration (excluding settle windows)."""
        return sum(phase.duration for phase in self.phases)

    def phase_start(self, name: str) -> float:
        """Absolute start time of the named phase."""
        time = 0.0
        for phase in self.phases:
            if phase.name == name:
                return time
            time += phase.duration
        raise ScenarioError(f"scenario {self.name!r} has no phase {name!r}")

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario: top level must be an object, got {type(data).__name__}"
            )
        _unknown_keys(
            data,
            ("name", "summary", "runtimes", "seed", "group", "oracle",
             "phases", "expect", "settle"),
            "scenario",
        )
        name = _require(data, "name", "scenario")
        if not isinstance(name, str) or not name:
            raise ScenarioError("scenario: name must be a non-empty string")
        where = f"scenario {name!r}"
        summary = _require(data, "summary", where)
        if not isinstance(summary, str) or not summary:
            raise ScenarioError(f"{where}: summary must be a non-empty string")
        runtimes = tuple(data.get("runtimes", ["sim"]))
        if not runtimes or any(r not in RUNTIMES for r in runtimes):
            raise ScenarioError(
                f"{where}: runtimes must be a non-empty subset of {RUNTIMES}"
            )
        seed = data.get("seed", 42)
        if not isinstance(seed, int):
            raise ScenarioError(f"{where}: seed must be an int")
        group = GroupSpec.from_dict(data.get("group", {}), f"{where}.group")
        oracle = OracleSpec.from_dict(
            _require(data, "oracle", where), f"{where}.oracle"
        )
        raw_phases = _require(data, "phases", where)
        if not isinstance(raw_phases, Sequence) or not raw_phases:
            raise ScenarioError(f"{where}: phases must be a non-empty array")
        phases = tuple(
            PhaseSpec.from_dict(p, f"{where}.phases[{i}]", group.members)
            for i, p in enumerate(raw_phases)
        )
        names = [phase.name for phase in phases]
        if len(set(names)) != len(names):
            raise ScenarioError(f"{where}: duplicate phase names in {names}")
        expect = ExpectSpec.from_dict(
            _require(data, "expect", where), f"{where}.expect", names
        )
        settle = SettleSpec.from_dict(data.get("settle", {}), f"{where}.settle")

        # Cross-field sanity: the oracle must be able to express the
        # expectation, and the asyncio runtime cannot inject faults.
        if expect.protocol not in (oracle.low_protocol, oracle.high_protocol):
            raise ScenarioError(
                f"{where}: expected protocol {expect.protocol!r} is not a "
                f"side of the oracle's band"
            )
        if group.initial not in (oracle.low_protocol, oracle.high_protocol):
            raise ScenarioError(
                f"{where}: initial protocol {group.initial!r} is not a side "
                f"of the oracle's band"
            )
        if "asyncio" in runtimes:
            dirty = [p.name for p in phases if not p.net.clean]
            if dirty:
                raise ScenarioError(
                    f"{where}: asyncio runtime cannot inject simulated "
                    f"faults, but phases {dirty} set net conditions; "
                    f"restrict runtimes to ['sim']"
                )
            if oracle.signal == "loss_ratio":
                raise ScenarioError(
                    f"{where}: loss_ratio reads the simulated network's "
                    f"drop counters, which real UDP does not expose; "
                    f"restrict runtimes to ['sim']"
                )
        return ScenarioSpec(
            name=name,
            summary=summary,
            runtimes=runtimes,
            seed=seed,
            group=group,
            oracle=oracle,
            phases=phases,
            expect=expect,
            settle=settle,
        )


# ----------------------------------------------------------------------
# Catalog loading
# ----------------------------------------------------------------------
def catalog_dir() -> str:
    """The directory holding the shipped scenario JSON files."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "catalog")


def load_scenario(path: str) -> ScenarioSpec:
    """Load and validate one scenario JSON file."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"scenario file {path!r} is not valid JSON: {exc}")
    spec = ScenarioSpec.from_dict(data)
    stem = os.path.splitext(os.path.basename(path))[0]
    if spec.name != stem:
        raise ScenarioError(
            f"scenario file {path!r} is named {stem!r} but declares "
            f"name={spec.name!r}; keep them equal so `repro scenario "
            f"<name>` stays unambiguous"
        )
    return spec


def load_catalog(directory: Optional[str] = None) -> Dict[str, ScenarioSpec]:
    """Load every ``*.json`` scenario in ``directory``, keyed by name.

    Files load in sorted order, so the catalog iteration order (and
    everything derived from it — sweep cells, artifacts) is stable.
    """
    directory = directory or catalog_dir()
    try:
        entries = sorted(os.listdir(directory))
    except OSError as exc:
        raise ScenarioError(f"cannot list catalog directory {directory!r}: {exc}")
    catalog: Dict[str, ScenarioSpec] = {}
    for entry in entries:
        if not entry.endswith(".json"):
            continue
        spec = load_scenario(os.path.join(directory, entry))
        catalog[spec.name] = spec
    if not catalog:
        raise ScenarioError(f"no scenario files found under {directory!r}")
    return catalog
