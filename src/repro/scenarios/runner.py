"""Execute one scenario spec and score it into a :class:`ScenarioVerdict`.

The runner compiles a :class:`~repro.scenarios.spec.ScenarioSpec` into a
live run: the fault-tolerant switchable group (sequencer + token ring
under the token-variant SP) with an :class:`~repro.core.hybrid
.AdaptiveController` polling a :class:`~repro.core.oracle
.HysteresisOracle` over the spec's named signal, while the scripted
phases retune the workload and — on the simulated mesh — swap the
live :class:`~repro.net.faults.FaultPlan` and base latency at each
phase boundary.

After the phases play out and the group settles, the scorer applies the
chaos harness's correctness oracle (convergence, no duplicates,
per-slot order agreement) *plus* the scenario's adaptation contract:
did the group end on the expected protocol, with no more switches than
allowed, fast enough after the drift began, without losing workload?
Switch drain cost comes from the obs bus's ``switch.duration_s``
histogram and the latency probe's worst inter-delivery hiccup.

On the sim runtime the whole run is deterministic: same spec, same
verdict, byte for byte — which is what lets the catalog's verdicts be
checked into the repo and diffed in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.hybrid import AdaptiveController
from ..core.oracle import HysteresisOracle
from ..core.switchable import ProtocolSpec, build_switch_group
from ..core.token_switch import FaultToleranceConfig
from ..errors import ScenarioError
from ..net.faults import FaultPlan
from ..net.ptp import LatencyMatrix, PointToPointNetwork
from ..obs.bus import Bus
from ..protocols.reliable import ReliableLayer
from ..protocols.sequencer import SequencerLayer
from ..protocols.tokenring import TokenRingLayer
from ..runtime import AsyncioRuntime, make_runtime
from ..sim.rng import RandomStreams
from ..stack.membership import Group
from ..testing.chaos import check_slot_order
from ..workloads.generator import Payload, PoissonSender
from ..workloads.latency import LatencyProbe
from .signals import SignalTracker
from .spec import PhaseSpec, ScenarioSpec

__all__ = [
    "ScenarioVerdict",
    "run_scenario",
    "run_scenario_cell",
    "scenario_cells",
]

#: Protocol slot names, in (low-regime, high-regime) catalog order.
SLOT_NAMES = ("sequencer", "tokenring")

#: Latency samples before this horizon are start-of-run transients.
WARMUP = 0.25


@dataclass
class ScenarioVerdict:
    """The scored outcome of one scenario run.

    ``violations`` holds every broken expectation; an empty list means
    the scenario passed.  All other fields are evidence: what the oracle
    decided, how long the switch took, and what the workload saw.
    """

    scenario: str
    runtime: str
    seed: int
    expected_protocol: str
    final_protocols: Dict[int, str]
    switches_completed: int
    decisions: List[Tuple[float, str, str]]
    time_to_switch: Optional[float]
    switch_duration_ms: Optional[float]
    max_hiccup_ms: float
    casts: int
    delivered: Dict[int, int]
    delivery_ratio: float
    delivered_rate_before: Optional[float]
    delivered_rate_after: Optional[float]
    mean_latency_ms: Optional[float]
    p90_latency_ms: Optional[float]
    settle_time: float
    duration: float
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (stable key order; int keys stringified)."""
        return {
            "scenario": self.scenario,
            "runtime": self.runtime,
            "seed": self.seed,
            "ok": self.ok,
            "expected_protocol": self.expected_protocol,
            "final_protocols": {
                str(rank): name
                for rank, name in sorted(self.final_protocols.items())
            },
            "switches_completed": self.switches_completed,
            "decisions": [
                {"time": time, "from": src, "to": dst}
                for time, src, dst in self.decisions
            ],
            "time_to_switch": self.time_to_switch,
            "switch_duration_ms": self.switch_duration_ms,
            "max_hiccup_ms": self.max_hiccup_ms,
            "casts": self.casts,
            "delivered": {
                str(rank): count
                for rank, count in sorted(self.delivered.items())
            },
            "delivery_ratio": self.delivery_ratio,
            "delivered_rate_before": self.delivered_rate_before,
            "delivered_rate_after": self.delivered_rate_after,
            "mean_latency_ms": self.mean_latency_ms,
            "p90_latency_ms": self.p90_latency_ms,
            "settle_time": self.settle_time,
            "duration": self.duration,
            "violations": list(self.violations),
        }

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        switch = (
            f"{self.switch_duration_ms:.1f}ms"
            if self.switch_duration_ms is not None
            else "n/a"
        )
        tts = (
            f"{self.time_to_switch:.2f}s"
            if self.time_to_switch is not None
            else "n/a"
        )
        lines = [
            f"[{status}] {self.scenario} ({self.runtime}, seed={self.seed})",
            f"  protocol: expected={self.expected_protocol} "
            f"final={sorted(set(self.final_protocols.values()))} "
            f"switches={self.switches_completed} "
            f"decisions={len(self.decisions)}",
            f"  adaptation: time-to-switch={tts} drain={switch} "
            f"hiccup={self.max_hiccup_ms:.1f}ms",
            f"  workload: casts={self.casts} "
            f"delivery_ratio={self.delivery_ratio:.3f} "
            f"(settled at t={self.settle_time:.2f}s)",
        ]
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        return "\n".join(lines)


def _specs() -> List[ProtocolSpec]:
    return [
        ProtocolSpec("sequencer", lambda r: [SequencerLayer(), ReliableLayer()]),
        ProtocolSpec("tokenring", lambda r: [TokenRingLayer(), ReliableLayer()]),
    ]


def _plan(phase: PhaseSpec) -> FaultPlan:
    """The phase's network conditions as a live fault plan (all channels)."""
    return FaultPlan(
        loss_rate=phase.net.loss,
        duplicate_rate=phase.net.dup,
        reorder_jitter=phase.net.jitter_ms / 1e3,
    )


def run_scenario(
    spec: ScenarioSpec,
    runtime_name: str = "sim",
    bus: Optional[Bus] = None,
    base_port: int = 47610,
) -> ScenarioVerdict:
    """Run ``spec`` on the named runtime and score the outcome.

    Args:
        spec: a validated catalog entry.
        runtime_name: "sim" or "asyncio"; must be declared by the spec
            (asyncio runs are wall-clock over real localhost UDP and
            cannot inject faults, which the spec validator enforces).
        bus: optional instrumentation bus; the runner creates a private
            enabled one when omitted (the scorer needs the
            ``switch.duration_s`` histogram either way).
        base_port: first UDP port (asyncio runtime only).
    """
    if runtime_name not in spec.runtimes:
        raise ScenarioError(
            f"scenario {spec.name!r} declares runtimes {list(spec.runtimes)}, "
            f"not {runtime_name!r}"
        )
    runtime = make_runtime(runtime_name)
    if bus is None:
        bus = Bus(clock=runtime, enabled=True)
    else:
        bus.clock = runtime
    streams = RandomStreams(spec.seed)
    members = spec.group.members

    if isinstance(runtime, AsyncioRuntime):
        from ..net.udp import UdpNetwork

        network = UdpNetwork(runtime, members, base_port=base_port)
        runtime.run_task(network.open())
    else:
        network = PointToPointNetwork(
            runtime,
            members,
            latency=LatencyMatrix(
                members, spec.phases[0].net.latency_ms / 1e3
            ),
            faults=_plan(spec.phases[0]),
            rng=streams,
        )
    network.instrument(bus)

    try:
        return _drive(runtime, network, spec, streams, bus)
    finally:
        if isinstance(runtime, AsyncioRuntime):
            runtime.close()


def _drive(runtime, network, spec: ScenarioSpec, streams, bus) -> ScenarioVerdict:
    group = Group.of_size(spec.group.members)
    sim_network = isinstance(network, PointToPointNetwork)
    stacks = build_switch_group(
        runtime,
        network,
        group,
        _specs(),
        initial=spec.group.initial,
        variant="token",
        token_interval=spec.group.token_interval,
        streams=streams,
        # The resilient token variant: scenario faults hit every channel,
        # so the SP itself must ride out loss on its control traffic.
        fault_tolerance=FaultToleranceConfig(),
        bus=bus,
    )

    # --- observation ---------------------------------------------------
    deliveries: Dict[int, List[tuple]] = {r: [] for r in group}
    for rank, stack in stacks.items():
        stack.on_deliver(
            lambda msg, rank=rank: deliveries[rank].append(msg.mid)
        )
    cast_slot: Dict[tuple, str] = {}
    probe = LatencyProbe(runtime, warmup=WARMUP)
    probe.attach_all(stacks)

    tracker = SignalTracker(
        runtime,
        spec.oracle.window,
        network=network if sim_network else None,
    )

    senders: List[PoissonSender] = []
    for rank in group:
        stack = stacks[rank]

        def on_send(msg, stack=stack):
            cast_slot[msg.mid] = stack.core.send_slot
            tracker.record_cast()

        stack.on_send(on_send)
        senders.append(
            PoissonSender(
                runtime,
                stack,
                rate=spec.phases[0].rate,
                rng=streams.stream(f"workload{rank}"),
            )
        )
    tracker.senders = senders

    # The observer rank feeds the latency/throughput signals.
    observer = group.coordinator
    observer_deliveries: List[float] = []

    def observe(msg):
        if isinstance(msg.body, Payload):
            now = runtime.now
            observer_deliveries.append(now)
            tracker.record_delivery(now - msg.body.sent_at)

    stacks[observer].on_deliver(observe)

    # --- the adaptation loop under test --------------------------------
    oracle = HysteresisOracle(
        tracker.metric(spec.oracle.signal),
        spec.oracle.low,
        spec.oracle.high,
        spec.oracle.low_protocol,
        spec.oracle.high_protocol,
        min_dwell=spec.oracle.dwell,
    )
    manager = stacks[observer]
    controller = AdaptiveController(
        manager, oracle, poll_interval=spec.oracle.poll
    )
    completions: List[Tuple[float, float]] = []  # (completed_at, duration)
    manager.protocol.on_global_complete(
        lambda __, duration: completions.append((runtime.now, duration))
    )

    # --- compile the phases --------------------------------------------
    def apply_phase(phase: PhaseSpec) -> None:
        if sim_network:
            network.set_faults(_plan(phase))
            network.latency.set_base(phase.net.latency_ms / 1e3)
        for rank, sender in enumerate(senders):
            if rank < phase.senders:
                sender.retune(phase.rate)
                sender.start()
            else:
                sender.stop()

    apply_phase(spec.phases[0])
    start = 0.0
    for phase in spec.phases:
        if start > 0.0:
            runtime.schedule_at(start, lambda p=phase: apply_phase(p))
        start += phase.duration
    controller.start()

    # --- run, then let the group settle --------------------------------
    runtime.run_until(spec.duration)
    controller.stop()
    for sender in senders:
        sender.stop()
    violations: List[str] = []
    settle_time = spec.duration
    for __ in range(spec.settle.windows):
        runtime.run_for(spec.settle.window)
        settle_time = runtime.now
        if not any(stacks[r].switching for r in group) and (
            len({stacks[r].current_protocol for r in group}) == 1
        ):
            break
    else:
        violations.append(
            f"group did not converge within {spec.settle.windows} settle "
            f"windows (still switching: "
            f"{[r for r in group if stacks[r].switching]})"
        )

    return _score(
        spec,
        runtime,
        bus,
        stacks,
        group,
        deliveries,
        cast_slot,
        probe,
        controller,
        completions,
        observer_deliveries,
        settle_time,
        violations,
    )


def _score(
    spec: ScenarioSpec,
    runtime,
    bus: Bus,
    stacks,
    group,
    deliveries: Dict[int, List[tuple]],
    cast_slot: Dict[tuple, str],
    probe: LatencyProbe,
    controller: AdaptiveController,
    completions: List[Tuple[float, float]],
    observer_deliveries: List[float],
    settle_time: float,
    violations: List[str],
) -> ScenarioVerdict:
    """Fold the raw run outcome into a scored verdict."""
    expect = spec.expect
    live = list(group)
    finals = {r: stacks[r].current_protocol for r in live}

    # Correctness oracle (shared with the chaos harness).
    if len(set(finals.values())) > 1:
        violations.append(f"members disagree on the protocol: {finals}")
    for rank in live:
        mids = deliveries[rank]
        if len(mids) != len(set(mids)):
            dupes = len(mids) - len(set(mids))
            violations.append(f"member {rank} delivered {dupes} duplicates")
    violations.extend(
        check_slot_order(deliveries, cast_slot, live, SLOT_NAMES)
    )

    # Adaptation contract.
    wrong = {r: p for r, p in finals.items() if p != expect.protocol}
    if wrong:
        violations.append(
            f"expected the group on {expect.protocol!r}, but {wrong}"
        )
    switches_completed = stacks[group.coordinator].core.switches_completed
    if switches_completed > expect.max_switches:
        violations.append(
            f"{switches_completed} switches completed, expected at most "
            f"{expect.max_switches} (oscillation)"
        )
    if len(controller.decisions) > expect.max_switches:
        violations.append(
            f"oracle flapped: {len(controller.decisions)} switch requests, "
            f"expected at most {expect.max_switches}"
        )

    time_to_switch: Optional[float] = None
    if expect.drift_phase is not None and completions:
        time_to_switch = completions[0][0] - spec.phase_start(expect.drift_phase)
    if expect.max_time_to_switch is not None:
        if time_to_switch is None:
            violations.append(
                f"no switch completed after drift phase "
                f"{expect.drift_phase!r} began"
            )
        elif time_to_switch > expect.max_time_to_switch:
            violations.append(
                f"switch took {time_to_switch:.2f}s after the drift began, "
                f"expected <= {expect.max_time_to_switch}s"
            )

    casts = len(cast_slot)
    delivered = {r: len(deliveries[r]) for r in live}
    ratio = min(
        (count / casts for count in delivered.values()), default=0.0
    ) if casts else 0.0
    if casts and ratio < expect.min_delivery_ratio:
        violations.append(
            f"worst delivery ratio {ratio:.3f} below the scenario floor "
            f"{expect.min_delivery_ratio}"
        )

    # Drain cost: the SP's own switch spans, via the obs bus.
    histogram = bus.metrics.histogram("switch.duration_s")
    if histogram is not None and histogram.count:
        switch_duration_ms: Optional[float] = histogram.mean * 1e3
    elif completions:
        switch_duration_ms = (
            sum(duration for __, duration in completions)
            / len(completions)
            * 1e3
        )
    else:
        switch_duration_ms = None

    # Throughput at the observer, before vs after the first switch.
    rate_before: Optional[float] = None
    rate_after: Optional[float] = None
    if completions:
        split = completions[0][0]
        before = sum(1 for t in observer_deliveries if t < split)
        after = len(observer_deliveries) - before
        if split > 0:
            rate_before = before / split
        if settle_time > split:
            rate_after = after / (settle_time - split)
    elif settle_time > 0:
        rate_before = len(observer_deliveries) / settle_time

    has_samples = probe.latency.count > 0
    return ScenarioVerdict(
        scenario=spec.name,
        runtime=runtime.name,
        seed=spec.seed,
        expected_protocol=expect.protocol,
        final_protocols=finals,
        switches_completed=switches_completed,
        decisions=[
            (d.time, d.from_protocol, d.to_protocol)
            for d in controller.decisions
        ],
        time_to_switch=time_to_switch,
        switch_duration_ms=switch_duration_ms,
        max_hiccup_ms=probe.max_gap * 1e3,
        casts=casts,
        delivered=delivered,
        delivery_ratio=ratio,
        delivered_rate_before=rate_before,
        delivered_rate_after=rate_after,
        mean_latency_ms=probe.mean_ms if has_samples else None,
        p90_latency_ms=probe.quantile_ms(0.90) if has_samples else None,
        settle_time=settle_time,
        duration=spec.duration,
        violations=violations,
    )


# ---------------------------------------------------------------------------
# Sweep cells (see repro.workloads.parallel)
# ---------------------------------------------------------------------------
def scenario_cells(
    names,
    runtime_name: str = "sim",
    directory: Optional[str] = None,
) -> List[Dict[str, Optional[str]]]:
    """One sweep cell per catalog name, in the given (stable) order."""
    return [
        {"name": name, "runtime": runtime_name, "catalog": directory}
        for name in names
    ]


def run_scenario_cell(cell) -> ScenarioVerdict:
    """One scenario run; the executor's (picklable) worker function.

    Each cell re-loads its spec from the catalog inside the worker
    process, and every run builds its own runtime and seeds its own
    streams from the spec — so a parallel catalog sweep is
    value-identical to the serial one (sim runtime only: asyncio runs
    bind real UDP ports and must stay serial).
    """
    from .spec import load_catalog

    spec = load_catalog(cell.get("catalog"))[cell["name"]]
    return run_scenario(spec, cell.get("runtime", "sim"))
