"""Point-to-point specialization of the switching protocol.

The paper focuses on group multicast "but our work can easily be
specialized for point-to-point communication" (§1).  This module is that
specialization: a :class:`SwitchableChannel` is a bidirectional two-party
connection whose wire protocol can be switched at run time, with the
same guarantee — all old-protocol traffic is delivered before any
new-protocol traffic, in both directions.

Under the hood each end is a two-member :class:`SwitchableStack`; the
channel API hides group mechanics (a peer does not receive its own
sends) and exposes plain ``send`` / ``on_receive``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import SwitchError
from ..net.base import Network
from ..runtime.api import Runtime
from ..sim.rng import RandomStreams
from ..stack.membership import Group
from ..stack.message import Message
from .switchable import ProtocolSpec, SwitchableStack

__all__ = ["ChannelEnd", "SwitchableChannel"]


class ChannelEnd:
    """One side of a switchable point-to-point channel."""

    def __init__(self, stack: SwitchableStack, peer: int) -> None:
        self._stack = stack
        self.peer = peer
        self._callbacks: List[Callable[[Any], None]] = []
        stack.on_deliver(self._on_deliver)

    @property
    def rank(self) -> int:
        return self._stack.rank

    def send(self, body: Any, body_size: int = 256) -> None:
        """Send ``body`` to the peer over the current protocol."""
        self._stack.cast(body, body_size)

    def on_receive(self, callback: Callable[[Any], None]) -> None:
        """Register a callback for bodies arriving from the peer."""
        self._callbacks.append(callback)

    def _on_deliver(self, msg: Message) -> None:
        if msg.sender == self._stack.rank:
            return  # point-to-point semantics: no self-delivery
        for callback in self._callbacks:
            callback(msg.body)

    # Switching surface, mirrored from the stack.
    def request_switch(self, to: str) -> None:
        """Ask this end (as initiator) to switch the channel to ``to``."""
        self._stack.request_switch(to)

    @property
    def current_protocol(self) -> str:
        return self._stack.current_protocol

    @property
    def switching(self) -> bool:
        return self._stack.switching

    def can_send(self) -> bool:
        """Back-pressure query against the current protocol."""
        return self._stack.can_send()


class SwitchableChannel:
    """A two-party connection with runtime protocol switching.

    Args:
        runtime: the clock/timer runtime.
        network: a network model with at least ``max(a, b) + 1`` nodes.
        a, b: the two node ids.
        protocols: the switchable wire protocols (specs as for groups).
        initial: the protocol both ends start on.
        variant: SP variant ("token" or "broadcast").
    """

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        a: int,
        b: int,
        protocols: Sequence[ProtocolSpec],
        initial: str,
        variant: str = "broadcast",
        token_interval: float = 0.005,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        if a == b:
            raise SwitchError("a channel needs two distinct endpoints")
        group = Group([a, b])
        master = streams or RandomStreams(0)
        stacks = {}
        for rank in (a, b):
            stacks[rank] = SwitchableStack(
                runtime,
                network,
                group,
                rank,
                protocols,
                initial,
                variant=variant,
                token_interval=token_interval,
                streams=master.fork(f"chan{rank}"),
            )
        self.ends: Tuple[ChannelEnd, ChannelEnd] = (
            ChannelEnd(stacks[a], peer=b),
            ChannelEnd(stacks[b], peer=a),
        )

    def __iter__(self):
        return iter(self.ends)
