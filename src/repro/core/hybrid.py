"""The adaptive hybrid: SP + oracle = "the best of both worlds" (§7).

:class:`AdaptiveController` closes the loop at one designated manager
process: it polls an :class:`~repro.core.oracle.Oracle` on a timer and
turns its decisions into switch requests on that process's
:class:`~repro.core.switchable.SwitchableStack`.  The controller records
its decision history, which is what the oscillation/hysteresis benchmark
(§7) reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SwitchError
from .oracle import Oracle
from .switchable import SwitchableStack

__all__ = ["SwitchDecision", "AdaptiveController"]


@dataclass(frozen=True)
class SwitchDecision:
    """One oracle decision that resulted in a switch request."""

    time: float
    from_protocol: str
    to_protocol: str


class AdaptiveController:
    """Polls an oracle and drives switching on one manager stack.

    Args:
        stack: the manager process's switchable stack.
        oracle: the decision policy.
        poll_interval: seconds between oracle polls.
        defer_while_switching: skip polls while a switch is in flight
            (recommended; overlapping requests are queued by the token SP
            anyway, but skipping keeps decision history interpretable).
    """

    def __init__(
        self,
        stack: SwitchableStack,
        oracle: Oracle,
        poll_interval: float = 0.1,
        defer_while_switching: bool = True,
    ) -> None:
        if poll_interval <= 0:
            raise SwitchError("poll_interval must be positive")
        self.stack = stack
        self.oracle = oracle
        self.poll_interval = poll_interval
        self.defer_while_switching = defer_while_switching
        self.decisions: List[SwitchDecision] = []
        self._running = False

    def start(self) -> None:
        """Begin polling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        """Stop polling the oracle."""
        self._running = False

    def _schedule(self) -> None:
        self.stack.ctx.after(self.poll_interval, self._poll)

    def _poll(self) -> None:
        if not self._running:
            return
        if not (self.defer_while_switching and self.stack.switching):
            self._consult()
        self._schedule()

    def _consult(self) -> None:
        now = self.stack.ctx.now
        current = self.stack.current_protocol
        target: Optional[str] = self.oracle.decide(now, current)
        if target is None or target == current:
            return
        self.decisions.append(SwitchDecision(now, current, target))
        self.stack.request_switch(target)

    @property
    def switch_request_count(self) -> int:
        return len(self.decisions)
