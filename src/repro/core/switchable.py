"""Assembly of a switchable process stack (Figure 1).

Per process::

    Application
        │ cast / deliver
    SwitchCore  ── driven by TokenSwitchProtocol or BroadcastSwitchProtocol
     │     │  │
   ctrl  proto₁ proto₂ ...     (each on a private MULTIPLEX channel;
     │     │  │                 the control channel is made reliable)
    ───────────────
      Multiplexer
       Transport
        network

:class:`SwitchableStack` mirrors the :class:`~repro.stack.stack.ProcessStack`
application API, so the SP is *transparent*: the application cannot tell
it is running over the SP rather than over one of the protocols directly
— the paper's §1 requirement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..errors import SwitchError
from ..net.base import Network
from ..obs.bus import Bus
from ..protocols.reliable import ReliableLayer
from ..runtime.api import Runtime
from ..sim.rng import RandomStreams
from ..stack.layer import Layer, LayerContext, compose, start_layers, stop_layers
from ..stack.membership import Group
from ..stack.message import Message, MessageId
from ..stack.multiplex import Multiplexer
from ..stack.stack import DEFAULT_BODY_SIZE
from ..stack.transport import Transport
from .base import ProtocolSlot, SwitchAborted, SwitchCore
from .switch import BroadcastSwitchProtocol
from .token_switch import (
    FaultToleranceConfig,
    ResilientTokenSwitchProtocol,
    TokenSwitchProtocol,
)

__all__ = [
    "ProtocolSpec",
    "SwitchableStack",
    "GroupHandle",
    "build_group_handle",
    "build_switch_group",
]

#: The mux channel reserved for the SP's own control traffic.
CONTROL_CHANNEL = 0


class ProtocolSpec:
    """A named recipe for one subordinate protocol stack.

    ``factory(rank)`` must return a fresh top-to-bottom layer list each
    time it is called (layers hold per-process state).
    """

    def __init__(
        self, name: str, factory: Callable[[int], Sequence[Layer]]
    ) -> None:
        if not name:
            raise SwitchError("protocol spec needs a non-empty name")
        self.name = name
        self.factory = factory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProtocolSpec {self.name}>"


class SwitchableStack:
    """One process of a group running the switching protocol.

    Args:
        runtime, network, group, rank: as for ProcessStack.
        protocols: the subordinate protocols (≥ 2).
        initial: name of the protocol that starts as current.
        variant: "token" (the paper's implementation) or "broadcast".
        token_interval: NORMAL-token pacing for the token variant.
        control_factory: layers for the SP's private control channel
            (defaults to a single :class:`ReliableLayer`).
        fault_tolerance: opt into the fault-tolerant token variant
            (:class:`~repro.core.token_switch.ResilientTokenSwitchProtocol`)
            with these timeout/retry knobs.  ``None`` (default) keeps the
            seed's non-FT protocol, byte-identical on the wire.
        switch_timeout: broadcast variant only — abort a switch that has
            not completed within this many simulated seconds.
        bus: instrumentation bus shared by the run; defaults to the
            process-wide default (disabled unless the harness enabled it).
        group_id: fleet group id.  ``0`` (the default) is the single-group
            world: wire frames, mux stat keys, and obs metric names are
            byte-identical to the pre-fleet stack.
        port: a shared per-node port (``repro.fleet.port.NodePort``) that
            owns the transport and multiplexer for *many* groups on this
            rank.  ``None`` means this stack owns its own transport —
            exactly the pre-fleet wiring.
        auto_start: start layers and inject the SP token at the end of
            construction (the historical behaviour).  ``False`` builds a
            dormant stack; call :meth:`start` explicitly.
    """

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        group: Group,
        rank: int,
        protocols: Sequence[ProtocolSpec],
        initial: str,
        variant: str = "token",
        token_interval: float = 0.010,
        control_factory: Optional[Callable[[int], Sequence[Layer]]] = None,
        streams: Optional[RandomStreams] = None,
        block_sends_during_switch: bool = False,
        fault_tolerance: Optional[FaultToleranceConfig] = None,
        switch_timeout: Optional[float] = None,
        bus: Optional[Bus] = None,
        group_id: int = 0,
        port: Optional[Any] = None,
        auto_start: bool = True,
    ) -> None:
        if len(protocols) < 2:
            raise SwitchError("need at least two protocols to switch between")
        names = [spec.name for spec in protocols]
        if len(set(names)) != len(names):
            raise SwitchError(f"duplicate protocol names: {names}")
        if variant not in ("token", "broadcast"):
            raise SwitchError(f"unknown SP variant {variant!r}")

        self.runtime = runtime
        self.group = group
        self.rank = rank
        self.group_id = group_id
        self._deliver_callbacks: List[Callable[[Message], None]] = []
        self._send_callbacks: List[Callable[[Message], None]] = []
        self._started = False
        self._torn_down = False

        cpu_work = getattr(network, "cpu_work", None)
        bound_cpu = None
        if cpu_work is not None:
            bound_cpu = lambda dur, then: cpu_work(rank, dur, then)  # noqa: E731
        self.ctx = LayerContext(
            runtime,
            group,
            rank,
            streams,
            cpu_work=bound_cpu,
            bus=bus,
            group_id=group_id if group_id != 0 else None,
        )

        if port is None:
            self.transport: Optional[Transport] = Transport(network, group, rank)
            self.mux = Multiplexer(self.transport.send)
            self.transport.on_receive(self.mux.receive)
        else:
            # Shared per-node port: the transport and multiplexer belong
            # to the port and are shared with every other group on this
            # rank; this stack only owns its (group_id, channel) slice.
            self.transport = None
            self.mux = port.mux

        # --- subordinate protocol slots -------------------------------
        slots: Dict[str, ProtocolSlot] = {}
        all_layers: List[Layer] = []
        self._channel_ids: List[int] = []
        for index, spec in enumerate(protocols):
            channel_id = CONTROL_CHANNEL + 1 + index
            channel = self.mux.channel(channel_id, group=group_id)
            self._channel_ids.append(channel_id)
            layers = list(spec.factory(rank))
            top_send, bottom_receive = compose(
                layers,
                self.ctx,
                channel.send,
                lambda msg, name=spec.name: self.core.slot_deliver(name, msg),
            )
            channel.on_deliver(bottom_receive)
            slots[spec.name] = ProtocolSlot(spec.name, layers, top_send)
            all_layers.extend(layers)

        self.core = SwitchCore(
            slots,
            self._app_deliver,
            initial,
            block_sends_during_switch=block_sends_during_switch,
            obs=self.ctx.obs,
        )

        # --- private control channel ----------------------------------
        if control_factory is None:
            control_factory = lambda __: [ReliableLayer()]  # noqa: E731
        control_channel = self.mux.channel(CONTROL_CHANNEL, group=group_id)
        self._channel_ids.append(CONTROL_CHANNEL)
        control_layers = list(control_factory(rank))
        control_send, control_receive = compose(
            control_layers,
            self.ctx,
            control_channel.send,
            self._control_deliver,
        )
        control_channel.on_deliver(control_receive)
        all_layers.extend(control_layers)

        # --- the SP variant --------------------------------------------
        self.protocol: Union[TokenSwitchProtocol, BroadcastSwitchProtocol]
        if variant == "token":
            if fault_tolerance is not None:
                self.protocol = ResilientTokenSwitchProtocol(
                    self.ctx,
                    self.core,
                    control_send,
                    token_interval,
                    ft=fault_tolerance,
                )
            else:
                self.protocol = TokenSwitchProtocol(
                    self.ctx, self.core, control_send, token_interval
                )
        else:
            self.protocol = BroadcastSwitchProtocol(
                self.ctx, self.core, control_send, switch_timeout=switch_timeout
            )
        self.variant = variant
        self._all_layers = all_layers

        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the layers and (token variant) inject the SP token.

        Idempotent: a second call is a no-op.  Called automatically at
        the end of construction unless ``auto_start=False``.
        """
        if self._started:
            return
        if self._torn_down:
            raise SwitchError(f"rank {self.rank}: cannot restart a torn-down stack")
        self._started = True
        start_layers(self._all_layers)
        if self.variant == "token":
            self.protocol.start()

    def teardown(self) -> None:
        """Stop the stack and release every shared resource it holds.

        Stops the switching protocol (tokens arriving afterwards die
        here), stops all layers (repeating timers are cancelled or their
        callbacks disarmed), removes this stack's mux channels, and — if
        the stack owns its transport — detaches the network node so it
        can be re-attached by a rebuilt stack.  Idempotent.
        """
        if self._torn_down:
            return
        self._torn_down = True
        self._started = False
        self.protocol.stop()
        stop_layers(self._all_layers)
        for channel_id in self._channel_ids:
            self.mux.remove_channel(channel_id, group=self.group_id)
        if self.transport is not None:
            self.transport.detach()

    @property
    def torn_down(self) -> bool:
        return self._torn_down

    # ------------------------------------------------------------------
    # Application API (mirrors ProcessStack — SP transparency)
    # ------------------------------------------------------------------
    def cast(self, body: Any, body_size: int = DEFAULT_BODY_SIZE) -> MessageId:
        """Multicast ``body`` to the group over the current protocol."""
        msg = self.ctx.make_message(body, body_size)
        for callback in self._send_callbacks:
            callback(msg)
        self.core.app_send(msg)
        return msg.mid

    def on_deliver(self, callback: Callable[[Message], None]) -> None:
        """Register an application deliver callback."""
        self._deliver_callbacks.append(callback)

    def on_send(self, callback: Callable[[Message], None]) -> None:
        """Register a hook observing Send events (trace recorders)."""
        self._send_callbacks.append(callback)

    def can_send(self) -> bool:
        """True when the active protocol accepts a send right now."""
        return self.core.can_send()

    @property
    def sim(self) -> Runtime:
        """Back-compat alias for :attr:`runtime` (pre-boundary name)."""
        return self.runtime

    def _app_deliver(self, msg: Message) -> None:
        for callback in self._deliver_callbacks:
            callback(msg)

    def _control_deliver(self, msg: Message) -> None:
        self.protocol.control_receive(msg)

    # ------------------------------------------------------------------
    # Switching API
    # ------------------------------------------------------------------
    def request_switch(self, to: str) -> None:
        """Ask this process (as manager/initiator) to switch to ``to``."""
        self.protocol.request_switch(to)

    def on_switch_aborted(
        self, callback: Callable[[SwitchAborted], None]
    ) -> None:
        """Register an abort observer (fault-tolerant variants only)."""
        hook = getattr(self.protocol, "on_switch_aborted", None)
        if hook is None:
            raise SwitchError(
                "this SP variant cannot abort; enable fault_tolerance or "
                "switch_timeout"
            )
        hook(callback)

    @property
    def last_abort(self) -> Optional[SwitchAborted]:
        """Most recent abort outcome at this member, if any."""
        return getattr(self.protocol, "last_abort", None)

    @property
    def current_protocol(self) -> str:
        return self.core.current

    @property
    def switching(self) -> bool:
        return self.core.switching

    def find_slot_layer(self, protocol: str, layer_type: type) -> Any:
        """Fetch a layer inside a named slot (testing/telemetry)."""
        for layer in self.core.slots[protocol].layers:
            if isinstance(layer, layer_type):
                return layer
        raise SwitchError(
            f"no {layer_type.__name__} in slot {protocol!r} of rank {self.rank}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SwitchableStack rank={self.rank} current={self.core.current} "
            f"variant={self.variant}>"
        )


class GroupHandle:
    """One switching group's build/start/drain/teardown lifecycle.

    A handle owns one :class:`SwitchableStack` per member and walks them
    through::

        BUILT ──start()──> STARTED ──drain()──> DRAINING ──teardown()──> TORN_DOWN

    ``teardown()`` is legal from any earlier state.  A single-group run
    is simply a fleet of size one: :func:`build_switch_group` builds a
    handle and returns its stacks.
    """

    def __init__(
        self, group_id: int, group: Group, stacks: Dict[int, SwitchableStack]
    ) -> None:
        self.group_id = group_id
        self.group = group
        self.stacks = stacks
        self.state = "built" if not any(
            s._started for s in stacks.values()
        ) else "started"

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every member stack (idempotent)."""
        if self.state == "torn_down":
            raise SwitchError(f"group {self.group_id} is torn down")
        for stack in self.stacks.values():
            stack.start()
        if self.state == "built":
            self.state = "started"

    def drain(self) -> None:
        """Stop accepting new application casts; in-flight traffic may
        still complete (run the event loop before :meth:`teardown` to let
        it)."""
        if self.state == "torn_down":
            raise SwitchError(f"group {self.group_id} is torn down")
        self.state = "draining"

    def teardown(self) -> None:
        """Tear every member stack down and release shared resources."""
        if self.state == "torn_down":
            return
        for stack in self.stacks.values():
            stack.teardown()
        self.state = "torn_down"

    # ------------------------------------------------------------------
    # Application conveniences
    # ------------------------------------------------------------------
    def cast(
        self, rank: int, body: Any, body_size: int = DEFAULT_BODY_SIZE
    ) -> MessageId:
        """Multicast from ``rank``; refused outside the STARTED state."""
        if self.state != "started":
            raise SwitchError(
                f"group {self.group_id} does not accept casts in state "
                f"{self.state!r}"
            )
        return self.stacks[rank].cast(body, body_size)

    def request_switch(self, to: str, rank: Optional[int] = None) -> None:
        """Ask one member (default: the coordinator) to initiate a switch."""
        member = self.group.coordinator if rank is None else rank
        self.stacks[member].request_switch(to)

    def on_deliver(self, callback: Callable[[int, Message], None]) -> None:
        """Register ``callback(rank, msg)`` on every member."""
        for rank, stack in self.stacks.items():
            stack.on_deliver(lambda msg, r=rank: callback(r, msg))

    @property
    def current_protocols(self) -> Dict[int, str]:
        return {r: s.current_protocol for r, s in self.stacks.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GroupHandle id={self.group_id} members={len(self.stacks)} "
            f"state={self.state}>"
        )


def build_group_handle(
    runtime: Runtime,
    network: Network,
    group: Group,
    protocols: Sequence[ProtocolSpec],
    initial: str,
    variant: str = "token",
    token_interval: float = 0.010,
    control_factory: Optional[Callable[[int], Sequence[Layer]]] = None,
    streams: Optional[RandomStreams] = None,
    block_sends_during_switch: bool = False,
    fault_tolerance: Optional[FaultToleranceConfig] = None,
    switch_timeout: Optional[float] = None,
    bus: Optional[Bus] = None,
    group_id: int = 0,
    ports: Optional[Dict[int, Any]] = None,
    auto_start: bool = True,
) -> GroupHandle:
    """Build a :class:`GroupHandle` with one stack per group member.

    ``ports`` maps rank to a shared per-node port (see
    ``repro.fleet.port.NodePort``); omitted ranks own their transports.
    With ``auto_start=True`` (the default, matching the historical
    :func:`build_switch_group` behaviour) each stack starts as it is
    built, preserving per-stack timer-arming order; ``auto_start=False``
    builds a dormant fleet member started later via ``handle.start()``.
    """
    master = streams or RandomStreams(0)
    stacks: Dict[int, SwitchableStack] = {}
    for rank in group:
        stacks[rank] = SwitchableStack(
            runtime,
            network,
            group,
            rank,
            protocols,
            initial,
            variant=variant,
            token_interval=token_interval,
            control_factory=control_factory,
            streams=master.fork(f"rank{rank}"),
            block_sends_during_switch=block_sends_during_switch,
            fault_tolerance=fault_tolerance,
            switch_timeout=switch_timeout,
            bus=bus,
            group_id=group_id,
            port=None if ports is None else ports.get(rank),
            auto_start=auto_start,
        )
    return GroupHandle(group_id, group, stacks)


def build_switch_group(
    runtime: Runtime,
    network: Network,
    group: Group,
    protocols: Sequence[ProtocolSpec],
    initial: str,
    variant: str = "token",
    token_interval: float = 0.010,
    control_factory: Optional[Callable[[int], Sequence[Layer]]] = None,
    streams: Optional[RandomStreams] = None,
    block_sends_during_switch: bool = False,
    fault_tolerance: Optional[FaultToleranceConfig] = None,
    switch_timeout: Optional[float] = None,
    bus: Optional[Bus] = None,
) -> Dict[int, SwitchableStack]:
    """Build one :class:`SwitchableStack` per group member.

    Kept as the historical single-group entry point; it now builds a
    :class:`GroupHandle` (a fleet of size one) and returns its stacks —
    construction order, RNG forks, and timer arming are unchanged.
    """
    handle = build_group_handle(
        runtime,
        network,
        group,
        protocols,
        initial,
        variant=variant,
        token_interval=token_interval,
        control_factory=control_factory,
        streams=streams,
        block_sends_during_switch=block_sends_during_switch,
        fault_tolerance=fault_tolerance,
        switch_timeout=switch_timeout,
        bus=bus,
    )
    return handle.stacks
