"""Assembly of a switchable process stack (Figure 1).

Per process::

    Application
        │ cast / deliver
    SwitchCore  ── driven by TokenSwitchProtocol or BroadcastSwitchProtocol
     │     │  │
   ctrl  proto₁ proto₂ ...     (each on a private MULTIPLEX channel;
     │     │  │                 the control channel is made reliable)
    ───────────────
      Multiplexer
       Transport
        network

:class:`SwitchableStack` mirrors the :class:`~repro.stack.stack.ProcessStack`
application API, so the SP is *transparent*: the application cannot tell
it is running over the SP rather than over one of the protocols directly
— the paper's §1 requirement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..errors import SwitchError
from ..net.base import Network
from ..obs.bus import Bus
from ..protocols.reliable import ReliableLayer
from ..runtime.api import Runtime
from ..sim.rng import RandomStreams
from ..stack.layer import Layer, LayerContext, compose, start_layers
from ..stack.membership import Group
from ..stack.message import Message, MessageId
from ..stack.multiplex import Multiplexer
from ..stack.stack import DEFAULT_BODY_SIZE
from ..stack.transport import Transport
from .base import ProtocolSlot, SwitchAborted, SwitchCore
from .switch import BroadcastSwitchProtocol
from .token_switch import (
    FaultToleranceConfig,
    ResilientTokenSwitchProtocol,
    TokenSwitchProtocol,
)

__all__ = ["ProtocolSpec", "SwitchableStack", "build_switch_group"]

#: The mux channel reserved for the SP's own control traffic.
CONTROL_CHANNEL = 0


class ProtocolSpec:
    """A named recipe for one subordinate protocol stack.

    ``factory(rank)`` must return a fresh top-to-bottom layer list each
    time it is called (layers hold per-process state).
    """

    def __init__(
        self, name: str, factory: Callable[[int], Sequence[Layer]]
    ) -> None:
        if not name:
            raise SwitchError("protocol spec needs a non-empty name")
        self.name = name
        self.factory = factory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProtocolSpec {self.name}>"


class SwitchableStack:
    """One process of a group running the switching protocol.

    Args:
        runtime, network, group, rank: as for ProcessStack.
        protocols: the subordinate protocols (≥ 2).
        initial: name of the protocol that starts as current.
        variant: "token" (the paper's implementation) or "broadcast".
        token_interval: NORMAL-token pacing for the token variant.
        control_factory: layers for the SP's private control channel
            (defaults to a single :class:`ReliableLayer`).
        fault_tolerance: opt into the fault-tolerant token variant
            (:class:`~repro.core.token_switch.ResilientTokenSwitchProtocol`)
            with these timeout/retry knobs.  ``None`` (default) keeps the
            seed's non-FT protocol, byte-identical on the wire.
        switch_timeout: broadcast variant only — abort a switch that has
            not completed within this many simulated seconds.
        bus: instrumentation bus shared by the run; defaults to the
            process-wide default (disabled unless the harness enabled it).
    """

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        group: Group,
        rank: int,
        protocols: Sequence[ProtocolSpec],
        initial: str,
        variant: str = "token",
        token_interval: float = 0.010,
        control_factory: Optional[Callable[[int], Sequence[Layer]]] = None,
        streams: Optional[RandomStreams] = None,
        block_sends_during_switch: bool = False,
        fault_tolerance: Optional[FaultToleranceConfig] = None,
        switch_timeout: Optional[float] = None,
        bus: Optional[Bus] = None,
    ) -> None:
        if len(protocols) < 2:
            raise SwitchError("need at least two protocols to switch between")
        names = [spec.name for spec in protocols]
        if len(set(names)) != len(names):
            raise SwitchError(f"duplicate protocol names: {names}")
        if variant not in ("token", "broadcast"):
            raise SwitchError(f"unknown SP variant {variant!r}")

        self.runtime = runtime
        self.group = group
        self.rank = rank
        self._deliver_callbacks: List[Callable[[Message], None]] = []
        self._send_callbacks: List[Callable[[Message], None]] = []

        cpu_work = getattr(network, "cpu_work", None)
        bound_cpu = None
        if cpu_work is not None:
            bound_cpu = lambda dur, then: cpu_work(rank, dur, then)  # noqa: E731
        self.ctx = LayerContext(
            runtime, group, rank, streams, cpu_work=bound_cpu, bus=bus
        )

        self.transport = Transport(network, group, rank)
        self.mux = Multiplexer(self.transport.send)
        self.transport.on_receive(self.mux.receive)

        # --- subordinate protocol slots -------------------------------
        slots: Dict[str, ProtocolSlot] = {}
        all_layers: List[Layer] = []
        for index, spec in enumerate(protocols):
            channel = self.mux.channel(CONTROL_CHANNEL + 1 + index)
            layers = list(spec.factory(rank))
            top_send, bottom_receive = compose(
                layers,
                self.ctx,
                channel.send,
                lambda msg, name=spec.name: self.core.slot_deliver(name, msg),
            )
            channel.on_deliver(bottom_receive)
            slots[spec.name] = ProtocolSlot(spec.name, layers, top_send)
            all_layers.extend(layers)

        self.core = SwitchCore(
            slots,
            self._app_deliver,
            initial,
            block_sends_during_switch=block_sends_during_switch,
            obs=self.ctx.obs,
        )

        # --- private control channel ----------------------------------
        if control_factory is None:
            control_factory = lambda __: [ReliableLayer()]  # noqa: E731
        control_channel = self.mux.channel(CONTROL_CHANNEL)
        control_layers = list(control_factory(rank))
        control_send, control_receive = compose(
            control_layers,
            self.ctx,
            control_channel.send,
            self._control_deliver,
        )
        control_channel.on_deliver(control_receive)
        all_layers.extend(control_layers)

        # --- the SP variant --------------------------------------------
        self.protocol: Union[TokenSwitchProtocol, BroadcastSwitchProtocol]
        if variant == "token":
            if fault_tolerance is not None:
                self.protocol = ResilientTokenSwitchProtocol(
                    self.ctx,
                    self.core,
                    control_send,
                    token_interval,
                    ft=fault_tolerance,
                )
            else:
                self.protocol = TokenSwitchProtocol(
                    self.ctx, self.core, control_send, token_interval
                )
        else:
            self.protocol = BroadcastSwitchProtocol(
                self.ctx, self.core, control_send, switch_timeout=switch_timeout
            )
        self.variant = variant

        start_layers(all_layers)
        if variant == "token":
            self.protocol.start()

    # ------------------------------------------------------------------
    # Application API (mirrors ProcessStack — SP transparency)
    # ------------------------------------------------------------------
    def cast(self, body: Any, body_size: int = DEFAULT_BODY_SIZE) -> MessageId:
        """Multicast ``body`` to the group over the current protocol."""
        msg = self.ctx.make_message(body, body_size)
        for callback in self._send_callbacks:
            callback(msg)
        self.core.app_send(msg)
        return msg.mid

    def on_deliver(self, callback: Callable[[Message], None]) -> None:
        """Register an application deliver callback."""
        self._deliver_callbacks.append(callback)

    def on_send(self, callback: Callable[[Message], None]) -> None:
        """Register a hook observing Send events (trace recorders)."""
        self._send_callbacks.append(callback)

    def can_send(self) -> bool:
        """True when the active protocol accepts a send right now."""
        return self.core.can_send()

    @property
    def sim(self) -> Runtime:
        """Back-compat alias for :attr:`runtime` (pre-boundary name)."""
        return self.runtime

    def _app_deliver(self, msg: Message) -> None:
        for callback in self._deliver_callbacks:
            callback(msg)

    def _control_deliver(self, msg: Message) -> None:
        self.protocol.control_receive(msg)

    # ------------------------------------------------------------------
    # Switching API
    # ------------------------------------------------------------------
    def request_switch(self, to: str) -> None:
        """Ask this process (as manager/initiator) to switch to ``to``."""
        self.protocol.request_switch(to)

    def on_switch_aborted(
        self, callback: Callable[[SwitchAborted], None]
    ) -> None:
        """Register an abort observer (fault-tolerant variants only)."""
        hook = getattr(self.protocol, "on_switch_aborted", None)
        if hook is None:
            raise SwitchError(
                "this SP variant cannot abort; enable fault_tolerance or "
                "switch_timeout"
            )
        hook(callback)

    @property
    def last_abort(self) -> Optional[SwitchAborted]:
        """Most recent abort outcome at this member, if any."""
        return getattr(self.protocol, "last_abort", None)

    @property
    def current_protocol(self) -> str:
        return self.core.current

    @property
    def switching(self) -> bool:
        return self.core.switching

    def find_slot_layer(self, protocol: str, layer_type: type) -> Any:
        """Fetch a layer inside a named slot (testing/telemetry)."""
        for layer in self.core.slots[protocol].layers:
            if isinstance(layer, layer_type):
                return layer
        raise SwitchError(
            f"no {layer_type.__name__} in slot {protocol!r} of rank {self.rank}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SwitchableStack rank={self.rank} current={self.core.current} "
            f"variant={self.variant}>"
        )


def build_switch_group(
    runtime: Runtime,
    network: Network,
    group: Group,
    protocols: Sequence[ProtocolSpec],
    initial: str,
    variant: str = "token",
    token_interval: float = 0.010,
    control_factory: Optional[Callable[[int], Sequence[Layer]]] = None,
    streams: Optional[RandomStreams] = None,
    block_sends_during_switch: bool = False,
    fault_tolerance: Optional[FaultToleranceConfig] = None,
    switch_timeout: Optional[float] = None,
    bus: Optional[Bus] = None,
) -> Dict[int, SwitchableStack]:
    """Build one :class:`SwitchableStack` per group member."""
    master = streams or RandomStreams(0)
    stacks: Dict[int, SwitchableStack] = {}
    for rank in group:
        stacks[rank] = SwitchableStack(
            runtime,
            network,
            group,
            rank,
            protocols,
            initial,
            variant=variant,
            token_interval=token_interval,
            control_factory=control_factory,
            streams=master.fork(f"rank{rank}"),
            block_sends_during_switch=block_sends_during_switch,
            fault_tolerance=fault_tolerance,
            switch_timeout=switch_timeout,
            bus=bus,
        )
    return stacks
