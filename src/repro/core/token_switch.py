"""The token-ring variant of the switching protocol (§2, as implemented
by the paper's authors).

A token circulates a logical ring of the group members over the SP's
private control channel.  "The token itself has a mode based on the phase
of the protocol":

* ``NORMAL`` — nothing happening; circulates at a configurable pace.
  A member wanting to switch must await this token (concurrent switch
  requests are therefore serialized for free — the paper's "bonus").
* ``PREPARE`` — the initiator changed the token; every receiver acts as
  if it received the broadcast variant's PREPARE (send on the new
  protocol, buffer its deliveries) and piggybacks its OK count on the
  token.
* ``SWITCH`` — when PREPARE returns, the initiator knows all counts and
  circulates the vector.
* ``FLUSH`` — unlike the other tokens, a member forwards this one only
  after it has delivered all old-protocol messages; when it returns, the
  switch has truly completed at every member and the initiator turns the
  token back to NORMAL.

Three rotations per switch, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SwitchError
from ..obs.bus import PhaseTracker
from ..sim.monitor import Counter
from ..stack.layer import LayerContext, SendFn
from ..stack.message import Message
from .base import SwitchAborted, SwitchCore, SwitchMode

__all__ = [
    "TokenSwitchProtocol",
    "FaultToleranceConfig",
    "ResilientTokenSwitchProtocol",
]

SwitchId = Tuple[int, int]


class TokenSwitchProtocol:
    """NORMAL → PREPARE → SWITCH → FLUSH token-ring switching.

    Args:
        ctx: layer context (rank, group, timers).
        core: the shared switching state machine.
        control_send: send function of the SP's private control channel.
        token_interval: pacing delay before forwarding a NORMAL token
            (switching-phase tokens are forwarded immediately).
    """

    def __init__(
        self,
        ctx: LayerContext,
        core: SwitchCore,
        control_send: SendFn,
        token_interval: float = 0.010,
    ) -> None:
        if token_interval < 0:
            raise SwitchError("token_interval must be non-negative")
        self.ctx = ctx
        self.core = core
        self._control_send = control_send
        self.token_interval = token_interval
        self._initiations = 0
        self._want: Optional[str] = None
        self._held_flush: Optional[tuple] = None  # flush token awaiting drain
        self._switch_started_at = 0.0
        self.last_switch_duration: Optional[float] = None
        self.stats = Counter()
        self._stopped = False
        #: Instrumentation scope + initiator-side switch-phase spans.
        #: No-ops unless the run wired an enabled bus into the context.
        self.obs = ctx.obs
        self._phases = PhaseTracker(ctx.obs)
        self._global_callbacks: List[Callable[[SwitchId, float], None]] = []
        core.on_switch_complete(self._on_local_complete)

    # ------------------------------------------------------------------
    # Lifecycle: the ring coordinator injects the token
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Inject the NORMAL token if this process is the ring coordinator."""
        if self.ctx.rank == self.ctx.group.coordinator:
            self.ctx.after(0.0, lambda: self._forward(("normal",), paced=False))

    def stop(self) -> None:
        """Teardown: drop arriving tokens and stop forwarding.

        The token dies at this member instead of circulating forever
        through a group that no longer exists.  Idempotent.
        """
        self._stopped = True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def request_switch(self, to: str) -> None:
        """Ask to switch to ``to`` at the next NORMAL token.

        Requests are sticky: the latest request wins and is served when
        the NORMAL token next arrives here.  Requesting the protocol that
        is already current cancels any pending request.
        """
        if to not in self.core.slots:
            raise SwitchError(f"unknown protocol {to!r}")
        if to == self.core.current and not self.core.switching:
            self._want = None
            return
        self._want = to

    @property
    def pending_request(self) -> Optional[str]:
        return self._want

    def on_global_complete(
        self, callback: Callable[[SwitchId, float], None]
    ) -> None:
        """Initiator-side: fires with (switch id, duration) when the FLUSH
        token has completed its rotation (switch done at every member)."""
        self._global_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Control-channel input
    # ------------------------------------------------------------------
    def control_receive(self, msg: Message) -> None:
        """Process the token arriving on the SP control channel."""
        if self._stopped:
            self.stats.incr("dropped_after_stop")
            return
        token = msg.body
        phase = token[0]
        if phase == "normal":
            self._on_normal()
        elif phase == "prepare":
            self._on_prepare(*token[1:])
        elif phase == "switch":
            self._on_switch(*token[1:])
        elif phase == "flush":
            self._on_flush(*token[1:])
        else:  # pragma: no cover - defensive
            raise SwitchError(f"unknown token phase {phase!r}")

    # ------------------------------------------------------------------
    # Phase handling
    # ------------------------------------------------------------------
    def _on_normal(self) -> None:
        self.stats.incr("normal_tokens")
        want = self._want
        if want is not None and want == self.core.current:
            # Stale request (a previous switch already got us here).
            self._want = None
            want = None
        if want is None or self.core.mode is not SwitchMode.NORMAL:
            self._forward(("normal",), paced=True)
            return
        # Become the initiator: NORMAL -> PREPARE.
        self._want = None
        switch_id: SwitchId = (self.ctx.rank, self._initiations)
        self._initiations += 1
        self._switch_started_at = self.ctx.now
        old, new = self.core.current, want
        count = self.core.begin_switch(old, new)
        self.stats.incr("initiated")
        self._phases.begin(switch_id, old, new)
        self._forward(
            ("prepare", switch_id, old, new, {self.ctx.rank: count}),
            paced=False,
        )

    def _on_prepare(
        self, switch_id: SwitchId, old: str, new: str, counts: Dict[int, int]
    ) -> None:
        if switch_id[0] == self.ctx.rank:
            # Full rotation: counts are complete; disseminate the vector.
            self.core.set_vector(counts)
            self.stats.incr("vector_built")
            self._phases.phase(switch_id, "switch")
            self._forward(("switch", switch_id, dict(counts)), paced=False)
            return
        count = self.core.begin_switch(old, new)
        new_counts = dict(counts)
        new_counts[self.ctx.rank] = count
        self.stats.incr("prepared")
        self._forward(("prepare", switch_id, old, new, new_counts), paced=False)

    def _on_switch(self, switch_id: SwitchId, vector: Dict[int, int]) -> None:
        if switch_id[0] == self.ctx.rank:
            # Second rotation done: start the FLUSH rotation.
            self._phases.phase(switch_id, "flush")
            self._forward_flush(("flush", switch_id))
            return
        self.core.set_vector(vector)
        self._forward(("switch", switch_id, vector), paced=False)

    def _on_flush(self, switch_id: SwitchId) -> None:
        if switch_id[0] == self.ctx.rank:
            # Third rotation done: the switch has completed everywhere.
            duration = self.ctx.now - self._switch_started_at
            self.last_switch_duration = duration
            self.stats.incr("globally_complete")
            self._phases.complete(switch_id, duration)
            for callback in self._global_callbacks:
                callback(switch_id, duration)
            self._forward(("normal",), paced=True)
            return
        self._forward_flush(("flush", switch_id))

    # ------------------------------------------------------------------
    # FLUSH gating: only forward once drained locally
    # ------------------------------------------------------------------
    def _forward_flush(self, token: tuple) -> None:
        if self.core.mode is SwitchMode.NORMAL:
            self._forward(token, paced=False)
        else:
            self.stats.incr("flush_held")
            self._held_flush = token

    def _on_local_complete(self, old: str, new: str) -> None:
        if self._held_flush is not None:
            token, self._held_flush = self._held_flush, None
            self._forward(token, paced=False)

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _forward(self, token: tuple, paced: bool) -> None:
        successor = self.ctx.group.ring_successor(self.ctx.rank)

        def transmit() -> None:
            if self._stopped:
                return
            if self.obs.enabled:
                self.obs.count("token.hops")
                self.obs.emit("token/hop", kind=token[0], to=successor)
            msg = self.ctx.make_message(token, 40, dest=(successor,))
            self._control_send(msg)

        if paced and self.token_interval > 0:
            self.ctx.after(self.token_interval, transmit)
        else:
            transmit()


# ----------------------------------------------------------------------
# Fault-tolerant token-ring variant
# ----------------------------------------------------------------------

#: Ordering of the switching-phase rotations for watchdog bookkeeping.
_PHASE = {"prepare": 1, "switch": 2, "flush": 3}
_PHASE_NAME = {rank: name for name, rank in _PHASE.items()}


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Timeout/retry knobs of :class:`ResilientTokenSwitchProtocol`.

    All durations are simulated seconds.

    Attributes:
        hop_timeout: how long a forwarder waits for the hop-level token
            acknowledgement before retransmitting to the same successor.
        max_hop_retries: retransmissions to one successor before the
            forwarder suspects it and reroutes around it on the ring.
        phase_timeout: base idle time (no token seen) before a member
            involved in a switch regenerates the current rotation.  The
            effective timeout is staggered by live-ring position so the
            lowest-ranked live member acts first.
        normal_timeout: like ``phase_timeout`` but while no switch is
            active (lost NORMAL token, or a dead coordinator at startup).
        abort_after: regenerations (or flush-hold strikes) tolerated for
            one switch before it is aborted back to the old protocol.
    """

    hop_timeout: float = 0.02
    max_hop_retries: int = 3
    phase_timeout: float = 0.25
    normal_timeout: float = 0.5
    abort_after: int = 4

    def __post_init__(self) -> None:
        if self.hop_timeout <= 0:
            raise SwitchError("hop_timeout must be positive")
        if self.max_hop_retries < 0:
            raise SwitchError("max_hop_retries must be non-negative")
        if self.phase_timeout <= 0 or self.normal_timeout <= 0:
            raise SwitchError("phase/normal timeouts must be positive")
        if self.abort_after < 1:
            raise SwitchError("abort_after must be at least 1")


class _PendingHop:
    """One in-flight token hop awaiting its acknowledgement."""

    __slots__ = ("token", "targets", "attempt", "timer")

    def __init__(self, token: tuple, targets: List[int]) -> None:
        self.token = token
        self.targets = targets
        self.attempt = 0
        self.timer = None


class ResilientTokenSwitchProtocol(TokenSwitchProtocol):
    """Token-ring switching that survives token loss and member crashes.

    The baseline :class:`TokenSwitchProtocol` wedges forever if a single
    token copy is lost or any member dies mid-rotation.  This subclass
    layers four mechanisms on top of the same three-rotation choreography
    (the wire format grows, the §2 semantics do not):

    * **Generation numbers.**  Every token carries a generation — a
      ``(counter, rank)`` pair ordered lexicographically — so regenerated
      tokens supersede lost-and-found stragglers and duplicates are
      detected, making regeneration idempotent.
    * **Hop acknowledgements.**  Each forwarder expects a ``tok-ack``
      from its successor within ``hop_timeout``; it retransmits up to
      ``max_hop_retries`` times, then suspects the successor and reroutes
      around it on the ring (suspicion is withdrawn the moment the member
      is heard from again).
    * **Watchdog regeneration.**  Every member keeps a sim-clock watchdog
      staggered by live-ring position: if no token is seen for the
      staggered timeout, the lowest-ranked live member regenerates the
      current rotation from its recorded state (the initiator's recorded
      count/vector survives in every member that saw the token, so on
      initiator crash the lowest-ranked live *visited* member takes
      over).  Rotation completion is detected from the token's visited
      set rather than "it came back to its birthplace".
    * **Bounded abort.**  A switch that keeps stalling — more than
      ``abort_after`` regenerations, or a FLUSH held that long because
      the old protocol cannot drain — is aborted: an ABORT rotation
      reverts every member to the old protocol and surfaces a structured
      :class:`~repro.core.base.SwitchAborted` outcome instead of
      wedging.  Members that had already completed revert too, so the
      group converges (see docs/PROTOCOLS.md for the property traded
      away).

    Fault tolerance is strictly opt-in: constructing the baseline class
    leaves the wire format and RNG draw order byte-identical to the seed.
    """

    def __init__(
        self,
        ctx: LayerContext,
        core: SwitchCore,
        control_send: SendFn,
        token_interval: float = 0.010,
        ft: Optional[FaultToleranceConfig] = None,
    ) -> None:
        super().__init__(ctx, core, control_send, token_interval)
        self.ft = ft or FaultToleranceConfig()
        #: Current token generation: (counter, rank of the regenerator).
        self._gen: Tuple[int, int] = (0, ctx.group.coordinator)
        self._normal_seq = 0
        self._last_normal: Tuple[Tuple[int, int], int] = (self._gen, -1)
        self._suspects: set = set()
        self._processed: set = set()  # (kind, gen, sender) dedup per gen
        self._counts_reported: Dict[SwitchId, int] = {}
        self._switch_old_new: Dict[SwitchId, Tuple[str, str]] = {}
        self._vector_seen: Dict[SwitchId, Dict[int, int]] = {}
        self._completed: set = set()  # switch ids drained locally
        self._aborted: set = set()
        self._reasserted: set = set()
        self._active: Optional[Tuple[SwitchId, int]] = None
        self._first_seen: Dict[SwitchId, float] = {}
        self._regen_count: Dict[SwitchId, int] = {}
        self._hold_strikes = 0
        self._pending_hop: Optional[_PendingHop] = None
        self._last_token_at = 0.0
        self._watchdog = None
        self._abort_callbacks: List[Callable[[SwitchAborted], None]] = []
        self._token_observers: List[
            Callable[[str, Tuple[int, int], Optional[SwitchId]], None]
        ] = []
        #: Most recent abort outcome observed at this member, if any.
        self.last_abort: Optional[SwitchAborted] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Inject the first NORMAL token and arm the stall watchdog."""
        if self.ctx.rank == self.ctx.group.coordinator:
            self.ctx.after(0.0, lambda: self._emit_normal(paced=False))
        self._arm_watchdog()

    def stop(self) -> None:
        """Teardown: silence the watchdog and any in-flight hop retries."""
        super().stop()
        watchdog, self._watchdog = self._watchdog, None
        if watchdog is not None:
            watchdog.cancel()
        self._cancel_pending_hop()

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def on_switch_aborted(
        self, callback: Callable[[SwitchAborted], None]
    ) -> None:
        """``callback(outcome)`` fires when this member applies an abort."""
        self._abort_callbacks.append(callback)

    def on_token(
        self,
        callback: Callable[[str, Tuple[int, int], Optional[SwitchId]], None],
    ) -> None:
        """Testing hook: ``callback(kind, gen, switch_id)`` per fresh token."""
        self._token_observers.append(callback)

    # ------------------------------------------------------------------
    # Watchdog: detect a stalled ring from token silence
    # ------------------------------------------------------------------
    def _live_index(self) -> int:
        """This member's position among non-suspected members (0 = first)."""
        live = [m for m in self.ctx.group.members if m not in self._suspects]
        if self.ctx.rank not in live:
            return 0
        return live.index(self.ctx.rank)

    def _stall_threshold(self) -> float:
        base = (
            self.ft.phase_timeout
            if self._active is not None
            else self.ft.normal_timeout
        )
        # Stagger by live-ring position so exactly one member (usually)
        # acts first; ties are resolved by generation numbers anyway.
        return base * (1 + self._live_index())

    def _arm_watchdog(self) -> None:
        poll = min(self.ft.phase_timeout, self.ft.normal_timeout) / 4
        self._watchdog = self.ctx.after(poll, self._watchdog_fire)

    def _watchdog_fire(self) -> None:
        if self._stopped:
            return
        if self.ctx.now - self._last_token_at >= self._stall_threshold():
            self._last_token_at = self.ctx.now  # fresh stall window
            self._on_stall()
        self._arm_watchdog()

    def _on_stall(self) -> None:
        self.stats.incr("stalls_detected")
        if self.obs.enabled:
            self.obs.count("watchdog.stalls")
            self.obs.emit(
                "watchdog/stall",
                gen=list(self._gen),
                switch=list(self._active[0]) if self._active else None,
            )
        if self._active is None:
            self._regenerate_normal()
            return
        switch_id, __ = self._active
        if self._held_flush is not None and self.core.switching:
            # We cannot drain the old protocol.  Waiting may help (the
            # old slot may still retransmit), but only up to the budget.
            self._hold_strikes += 1
            self.stats.incr("flush_hold_strikes")
            if self._hold_strikes > self.ft.abort_after:
                self._start_abort(
                    switch_id, "flush could not drain within retry budget"
                )
            return
        count = self._regen_count.get(switch_id, 0) + 1
        self._regen_count[switch_id] = count
        if count > self.ft.abort_after:
            self._start_abort(
                switch_id, f"switch stalled after {count - 1} regenerations"
            )
            return
        self._regenerate_phase(switch_id)

    def _bump_gen(self) -> Tuple[int, int]:
        self._gen = (self._gen[0] + 1, self.ctx.rank)
        self._processed.clear()
        return self._gen

    def _emit_normal(self, paced: bool) -> None:
        self._normal_seq += 1
        self._last_normal = (self._gen, self._normal_seq)
        # The NORMAL token names the emitter's current protocol so that
        # members separated by a lost abort/flush rotation reconcile:
        # whoever's token circulates pulls idle disagreers to its side.
        self._send_token(
            ("normal", self._gen, self._normal_seq, self.core.current),
            paced=paced,
        )

    def _regenerate_normal(self) -> None:
        gen = self._bump_gen()
        self.stats.incr("regenerated_tokens")
        if self.obs.enabled:
            self.obs.count("token.regenerated")
            self.obs.emit("token/regenerate", kind="normal", gen=list(gen))
        self._normal_seq = 0
        self._emit_normal(paced=False)

    def _regenerate_phase(self, switch_id: SwitchId) -> None:
        """Re-issue the deepest rotation this member can vouch for."""
        gen = self._bump_gen()
        self.stats.incr("regenerated_tokens")
        if self.obs.enabled:
            self.obs.count("token.regenerated")
            self.obs.emit(
                "token/regenerate",
                kind="phase",
                gen=list(gen),
                switch=list(switch_id),
            )
        rank = self.ctx.rank
        old, new = self._switch_old_new[switch_id]
        if switch_id in self._completed:
            token = ("flush", gen, switch_id, old, new, (rank,))
        elif switch_id in self._vector_seen:
            token = (
                "switch",
                gen,
                switch_id,
                old,
                new,
                dict(self._vector_seen[switch_id]),
                (rank,),
            )
        else:
            count = self._counts_reported.get(switch_id)
            if count is None:  # pragma: no cover - defensive
                return
            token = ("prepare", gen, switch_id, old, new, {rank: count}, (rank,))
        self._send_token(token, paced=False)

    # ------------------------------------------------------------------
    # Hop-level transmission with ack/retransmit/reroute
    # ------------------------------------------------------------------
    def _hop_targets(self) -> List[int]:
        """Ring successors after this member, suspects skipped, self last."""
        members = self.ctx.group.members
        idx = members.index(self.ctx.rank)
        ring = [members[(idx + k) % len(members)] for k in range(1, len(members))]
        targets = [m for m in ring if m not in self._suspects]
        if not targets:
            # Everyone looks dead.  Far more likely *we* were the one cut
            # off (a crash window just ended, say), so re-probe the ring
            # instead of settling into a self-loopback steady state.
            self._suspects.clear()
            self.stats.incr("suspects_reset")
            targets = list(ring)
        targets.append(self.ctx.rank)  # last resort: close the loop locally
        return targets

    def _send_token(self, token: tuple, paced: bool) -> None:
        def transmit() -> None:
            if self._stopped:
                return
            self._start_hop(token, self._hop_targets())

        if paced and self.token_interval > 0:
            self.ctx.after(self.token_interval, transmit)
        else:
            transmit()

    def _cancel_pending_hop(self) -> None:
        pending, self._pending_hop = self._pending_hop, None
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()

    def _start_hop(self, token: tuple, targets: List[int]) -> None:
        self._cancel_pending_hop()
        pending = _PendingHop(token, list(targets))
        self._pending_hop = pending
        self._transmit(token, pending.targets[0])
        pending.timer = self.ctx.after(self.ft.hop_timeout, self._hop_timeout)

    def _transmit(self, token: tuple, target: int) -> None:
        if self.obs.enabled:
            self.obs.count("token.hops")
            self.obs.emit(
                "token/hop", kind=token[0], to=target, gen=list(token[1])
            )
        msg = self.ctx.make_message(token, 48, dest=(target,))
        self._control_send(msg)

    def _hop_timeout(self) -> None:
        pending = self._pending_hop
        if pending is None:
            return
        if pending.attempt < self.ft.max_hop_retries:
            pending.attempt += 1
            self.stats.incr("hop_retransmits")
            if self.obs.enabled:
                self.obs.count("token.retransmits")
                self.obs.emit(
                    "token/retransmit",
                    kind=pending.token[0],
                    to=pending.targets[0],
                    attempt=pending.attempt,
                    gen=list(pending.token[1]),
                )
            self._transmit(pending.token, pending.targets[0])
            pending.timer = self.ctx.after(self.ft.hop_timeout, self._hop_timeout)
            return
        # Give up on this successor and route around it.
        unresponsive = pending.targets.pop(0)
        if unresponsive != self.ctx.rank:
            self._suspects.add(unresponsive)
            self.stats.incr("suspected")
        if pending.targets:
            self.stats.incr("hop_reroutes")
            if self.obs.enabled:
                self.obs.count("token.reroutes")
                self.obs.emit(
                    "token/reroute",
                    kind=pending.token[0],
                    around=unresponsive,
                    to=pending.targets[0],
                    gen=list(pending.token[1]),
                )
            token, targets = pending.token, pending.targets
            self._pending_hop = None
            self._start_hop(token, targets)
        else:  # pragma: no cover - defensive (self is always last)
            self._pending_hop = None

    def _ack(self, gen: Tuple[int, int], kind: str, to: int) -> None:
        msg = self.ctx.make_message(("tok-ack", gen, kind), 16, dest=(to,))
        self._control_send(msg)

    def _on_tok_ack(self, gen: Tuple[int, int], kind: str, sender: int) -> None:
        pending = self._pending_hop
        if (
            pending is not None
            and pending.token[0] == kind
            and pending.token[1] == gen
            and pending.targets
            and pending.targets[0] == sender
        ):
            self.stats.incr("hops_acked")
            if self.obs.enabled:
                self.obs.count("token.acks")
                self.obs.emit(
                    "token/ack", kind=kind, sender=sender, gen=list(gen)
                )
            self._cancel_pending_hop()

    # ------------------------------------------------------------------
    # Control-channel input
    # ------------------------------------------------------------------
    def control_receive(self, msg: Message) -> None:
        if self._stopped:
            self.stats.incr("dropped_after_stop")
            return
        token = msg.body
        kind = token[0]
        if kind == "tok-ack":
            self._on_tok_ack(token[1], token[2], msg.sender)
            return
        gen = token[1]
        self._last_token_at = self.ctx.now
        self._ack(gen, kind, msg.sender)
        # Proof of life withdraws suspicion: the sender, the member that
        # minted this generation, and everyone the token visited.  (A
        # recovered member never transmits to its ring *predecessor*, so
        # sender-only evidence would leave it suspected forever.)
        self._suspects.discard(msg.sender)
        self._suspects.discard(gen[1])
        if isinstance(token[-1], tuple):  # phase tokens end in `visited`
            for member in token[-1]:
                self._suspects.discard(member)
        if gen < self._gen:
            self.stats.incr("stale_tokens")
            return
        if gen > self._gen:
            self._gen = gen
            self._processed.clear()
        if kind == "normal":
            self._notify_observers(kind, gen, None)
            self._ft_on_normal(gen, token[2], token[3])
            return
        key = (kind, gen, msg.sender)
        if key in self._processed:
            self.stats.incr("duplicate_tokens")
            return
        self._processed.add(key)
        switch_id = token[2]
        self._notify_observers(kind, gen, switch_id)
        if kind == "prepare":
            self._ft_on_prepare(gen, *token[2:])
        elif kind == "switch":
            self._ft_on_switch(gen, *token[2:])
        elif kind == "flush":
            self._ft_on_flush(gen, *token[2:])
        elif kind == "abort":
            self._ft_on_abort(gen, *token[2:])
        else:  # pragma: no cover - defensive
            raise SwitchError(f"unknown token phase {kind!r}")

    def _notify_observers(
        self, kind: str, gen: Tuple[int, int], switch_id: Optional[SwitchId]
    ) -> None:
        for callback in self._token_observers:
            callback(kind, gen, switch_id)

    # ------------------------------------------------------------------
    # Phase handling (FT wire format carries gen + visited set)
    # ------------------------------------------------------------------
    def _ft_on_normal(
        self, gen: Tuple[int, int], seq: int, current: str
    ) -> None:
        if (gen, seq) <= self._last_normal:
            self.stats.incr("duplicate_tokens")
            return
        self._last_normal = (gen, seq)
        self.stats.incr("normal_tokens")
        if self._active is not None:
            switch_id, phase_rank = self._active
            if self.core.switching:
                # A member that missed the switch is circulating a NORMAL
                # token.  Dropping it and re-running our rotation pulls
                # the straggler (now unsuspected by its predecessor) back
                # into the switch instead of abandoning it.
                self.stats.incr("normal_preempted")
                self._regen_count[switch_id] = (
                    self._regen_count.get(switch_id, 0) + 1
                )
                if self._regen_count[switch_id] > self.ft.abort_after:
                    self._start_abort(switch_id, "ring lost the switch")
                elif self._held_flush is None:
                    self._regenerate_phase(switch_id)
                return
            # Drained and the ring is back to NORMAL: the switch is over.
            self._active = None
            self._hold_strikes = 0
        if (
            self.core.mode is SwitchMode.NORMAL
            and current != self.core.current
            and current in self.core.slots
        ):
            # Reconcile a completion/abort split: adopt the circulating
            # token's view of the current protocol.
            self.stats.incr("reconciled")
            self.core.revert_to(current)
        want = self._want
        if want is not None and want == self.core.current:
            self._want = None
            want = None
        if want is None or self.core.mode is not SwitchMode.NORMAL:
            self._normal_seq = seq
            self._send_token(
                ("normal", gen, seq + 1, self.core.current), paced=True
            )
            return
        # Become the initiator: NORMAL -> PREPARE.  Sync the NORMAL
        # sequence so the token we emit after completion is fresh.
        self._normal_seq = seq
        self._want = None
        switch_id = (self.ctx.rank, self._initiations)
        self._initiations += 1
        self._switch_started_at = self.ctx.now
        self._first_seen[switch_id] = self.ctx.now
        old, new = self.core.current, want
        count = self.core.begin_switch(old, new)
        self._counts_reported[switch_id] = count
        self._switch_old_new[switch_id] = (old, new)
        self._active = (switch_id, _PHASE["prepare"])
        self.stats.incr("initiated")
        self._phases.begin(switch_id, old, new)
        self._send_token(
            (
                "prepare",
                gen,
                switch_id,
                old,
                new,
                {self.ctx.rank: count},
                (self.ctx.rank,),
            ),
            paced=False,
        )

    def _ft_on_prepare(
        self,
        gen: Tuple[int, int],
        switch_id: SwitchId,
        old: str,
        new: str,
        counts: Dict[int, int],
        visited: tuple,
    ) -> None:
        if switch_id in self._aborted:
            self._reassert_abort(switch_id)
            return
        self._first_seen.setdefault(switch_id, self.ctx.now)
        rank = self.ctx.rank
        if rank in visited:
            self._rotation_closed("prepare", gen, switch_id, visited, counts)
            return
        if self._active is not None and self._active[0] != switch_id:
            self.stats.incr("conflicting_tokens")
            return
        self._switch_old_new[switch_id] = (old, new)
        self._active = (switch_id, _PHASE["prepare"])
        count = self._counts_reported.get(switch_id)
        if count is None:
            try:
                count = self.core.begin_switch(old, new)
            except SwitchError:
                self._start_abort(
                    switch_id, "member cannot join switch (state mismatch)"
                )
                return
            self._counts_reported[switch_id] = count
            self.stats.incr("prepared")
        new_counts = dict(counts)
        new_counts[rank] = count
        self._send_token(
            ("prepare", gen, switch_id, old, new, new_counts, visited + (rank,)),
            paced=False,
        )

    def _ft_on_switch(
        self,
        gen: Tuple[int, int],
        switch_id: SwitchId,
        old: str,
        new: str,
        vector: Dict[int, int],
        visited: tuple,
    ) -> None:
        if switch_id in self._aborted:
            self._reassert_abort(switch_id)
            return
        rank = self.ctx.rank
        if rank in visited:
            self._rotation_closed("switch", gen, switch_id, visited)
            return
        if self._active is not None and self._active[0] != switch_id:
            self.stats.incr("conflicting_tokens")
            return
        self._switch_old_new.setdefault(switch_id, (old, new))
        self._active = (switch_id, _PHASE["switch"])
        self._late_join(switch_id, old, new)
        self._vector_seen[switch_id] = dict(vector)
        if self.core.switching:
            self.core.set_vector(vector)
        self._send_token(
            ("switch", gen, switch_id, old, new, dict(vector), visited + (rank,)),
            paced=False,
        )

    def _ft_on_flush(
        self,
        gen: Tuple[int, int],
        switch_id: SwitchId,
        old: str,
        new: str,
        visited: tuple,
    ) -> None:
        if switch_id in self._aborted:
            self._reassert_abort(switch_id)
            return
        rank = self.ctx.rank
        if rank in visited:
            self._rotation_closed("flush", gen, switch_id, visited)
            return
        if self._active is not None and self._active[0] != switch_id:
            self.stats.incr("conflicting_tokens")
            return
        self._switch_old_new.setdefault(switch_id, (old, new))
        self._active = (switch_id, _PHASE["flush"])
        # A member that never saw PREPARE joins now; lacking a vector it
        # holds the flush until its own watchdog re-runs the rotations.
        self._late_join(switch_id, old, new)
        out = ("flush", gen, switch_id, old, new, visited + (rank,))
        if self.core.mode is SwitchMode.NORMAL:
            self._send_token(out, paced=False)
        else:
            self.stats.incr("flush_held")
            self._held_flush = out

    def _late_join(self, switch_id: SwitchId, old: str, new: str) -> None:
        """Pull a member that missed PREPARE into an in-flight switch."""
        if (
            switch_id in self._counts_reported
            or switch_id in self._completed
            or self.core.switching
        ):
            return
        try:
            self._counts_reported[switch_id] = self.core.begin_switch(old, new)
            self.stats.incr("late_joins")
        except SwitchError:
            pass

    def _ft_on_abort(
        self,
        gen: Tuple[int, int],
        switch_id: SwitchId,
        reason: str,
        visited: tuple,
    ) -> None:
        if self.ctx.rank in visited:
            self._rotation_closed("abort", gen, switch_id, visited)
            return
        self._apply_abort(switch_id, reason, remote=True)
        self._send_token(
            ("abort", gen, switch_id, reason, visited + (self.ctx.rank,)),
            paced=False,
        )

    # ------------------------------------------------------------------
    # Rotation closure, takeover and phase advancement
    # ------------------------------------------------------------------
    def _rotation_closed(
        self,
        kind: str,
        gen: Tuple[int, int],
        switch_id: SwitchId,
        visited: tuple,
        counts: Optional[Dict[int, int]] = None,
    ) -> None:
        """The token reached a member it already visited.

        Either we are the rotation's origin (``visited[0]``) and the
        rotation is complete, or the origin died mid-rotation and the
        lowest-ranked live visited member takes over with a fresh
        generation.  Anyone else drops the orphan.
        """
        rank = self.ctx.rank
        if visited[0] == rank:
            self._advance_phase(kind, gen, switch_id, counts)
            return
        candidates = [m for m in visited if m not in self._suspects]
        if candidates and min(candidates) == rank:
            self.stats.incr("takeovers")
            self._advance_phase(kind, self._bump_gen(), switch_id, counts)
        else:
            self.stats.incr("orphan_tokens")

    def _advance_phase(
        self,
        kind: str,
        gen: Tuple[int, int],
        switch_id: SwitchId,
        counts: Optional[Dict[int, int]],
    ) -> None:
        rank = self.ctx.rank
        if kind == "abort":
            self.stats.incr("abort_rotation_complete")
            self._emit_normal(paced=True)
            return
        old, new = self._switch_old_new[switch_id]
        if kind == "prepare":
            assert counts is not None
            vector = dict(counts)
            self._vector_seen[switch_id] = vector
            if self.core.switching:
                self.core.set_vector(vector)
            self.stats.incr("vector_built")
            self._active = (switch_id, _PHASE["switch"])
            self._phases.phase(switch_id, "switch")
            self._send_token(
                ("switch", gen, switch_id, old, new, vector, (rank,)),
                paced=False,
            )
        elif kind == "switch":
            self._active = (switch_id, _PHASE["flush"])
            self._phases.phase(switch_id, "flush")
            out = ("flush", gen, switch_id, old, new, (rank,))
            if self.core.mode is SwitchMode.NORMAL:
                self._send_token(out, paced=False)
            else:
                self.stats.incr("flush_held")
                self._held_flush = out
        elif kind == "flush":
            self._complete_switch(switch_id)

    def _complete_switch(self, switch_id: SwitchId) -> None:
        duration = self.ctx.now - self._first_seen.get(
            switch_id, self._switch_started_at
        )
        self.last_switch_duration = duration
        self.stats.incr("globally_complete")
        self._active = None
        self._hold_strikes = 0
        self._regen_count.pop(switch_id, None)
        self._phases.complete(switch_id, duration)
        for callback in self._global_callbacks:
            callback(switch_id, duration)
        self._emit_normal(paced=True)

    def _on_local_complete(self, old: str, new: str) -> None:
        if self._active is not None:
            self._completed.add(self._active[0])
        if self._held_flush is not None:
            token, self._held_flush = self._held_flush, None
            self._send_token(token, paced=False)

    # ------------------------------------------------------------------
    # Abort: converge back to the old protocol instead of wedging
    # ------------------------------------------------------------------
    def _start_abort(self, switch_id: SwitchId, reason: str) -> None:
        if switch_id in self._aborted:
            return
        gen = self._bump_gen()
        self.stats.incr("aborts_started")
        self._apply_abort(switch_id, reason, remote=False)
        self._send_token(
            ("abort", gen, switch_id, reason, (self.ctx.rank,)), paced=False
        )

    def _reassert_abort(self, switch_id: SwitchId) -> None:
        """A live rotation token surfaced for a switch we already aborted:
        push the abort decision around the ring again (once) so stragglers
        that missed the original abort rotation converge too."""
        if switch_id in self._reasserted:
            return
        self._reasserted.add(switch_id)
        gen = self._bump_gen()
        self.stats.incr("aborts_reasserted")
        self._send_token(
            ("abort", gen, switch_id, "abort reasserted", (self.ctx.rank,)),
            paced=False,
        )

    def _apply_abort(self, switch_id: SwitchId, reason: str, remote: bool) -> None:
        if switch_id in self._aborted:
            return
        self._aborted.add(switch_id)
        old, new = self._switch_old_new.get(switch_id, (None, None))
        phase = "unknown"
        if self._active is not None and self._active[0] == switch_id:
            phase = _PHASE_NAME[self._active[1]]
            self._active = None
        self._held_flush = None
        self._hold_strikes = 0
        self._regen_count.pop(switch_id, None)
        if self.core.switching:
            self.core.abort_switch()
        elif switch_id in self._completed and old is not None:
            self.core.revert_to(old)
        outcome = SwitchAborted(
            switch_id, old, new, phase, reason, self.ctx.now
        )
        self.last_abort = outcome
        self.stats.incr("switches_aborted")
        self._phases.abort(switch_id, reason, phase)
        if remote:
            self.stats.incr("aborts_learned")
        for callback in self._abort_callbacks:
            callback(outcome)
