"""The token-ring variant of the switching protocol (§2, as implemented
by the paper's authors).

A token circulates a logical ring of the group members over the SP's
private control channel.  "The token itself has a mode based on the phase
of the protocol":

* ``NORMAL`` — nothing happening; circulates at a configurable pace.
  A member wanting to switch must await this token (concurrent switch
  requests are therefore serialized for free — the paper's "bonus").
* ``PREPARE`` — the initiator changed the token; every receiver acts as
  if it received the broadcast variant's PREPARE (send on the new
  protocol, buffer its deliveries) and piggybacks its OK count on the
  token.
* ``SWITCH`` — when PREPARE returns, the initiator knows all counts and
  circulates the vector.
* ``FLUSH`` — unlike the other tokens, a member forwards this one only
  after it has delivered all old-protocol messages; when it returns, the
  switch has truly completed at every member and the initiator turns the
  token back to NORMAL.

Three rotations per switch, exactly as in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SwitchError
from ..sim.monitor import Counter
from ..stack.layer import LayerContext, SendFn
from ..stack.message import Message
from .base import SwitchCore, SwitchMode

__all__ = ["TokenSwitchProtocol"]

SwitchId = Tuple[int, int]


class TokenSwitchProtocol:
    """NORMAL → PREPARE → SWITCH → FLUSH token-ring switching.

    Args:
        ctx: layer context (rank, group, timers).
        core: the shared switching state machine.
        control_send: send function of the SP's private control channel.
        token_interval: pacing delay before forwarding a NORMAL token
            (switching-phase tokens are forwarded immediately).
    """

    def __init__(
        self,
        ctx: LayerContext,
        core: SwitchCore,
        control_send: SendFn,
        token_interval: float = 0.010,
    ) -> None:
        if token_interval < 0:
            raise SwitchError("token_interval must be non-negative")
        self.ctx = ctx
        self.core = core
        self._control_send = control_send
        self.token_interval = token_interval
        self._initiations = 0
        self._want: Optional[str] = None
        self._held_flush: Optional[tuple] = None  # flush token awaiting drain
        self._switch_started_at = 0.0
        self.last_switch_duration: Optional[float] = None
        self.stats = Counter()
        self._global_callbacks: List[Callable[[SwitchId, float], None]] = []
        core.on_switch_complete(self._on_local_complete)

    # ------------------------------------------------------------------
    # Lifecycle: the ring coordinator injects the token
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Inject the NORMAL token if this process is the ring coordinator."""
        if self.ctx.rank == self.ctx.group.coordinator:
            self.ctx.after(0.0, lambda: self._forward(("normal",), paced=False))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def request_switch(self, to: str) -> None:
        """Ask to switch to ``to`` at the next NORMAL token.

        Requests are sticky: the latest request wins and is served when
        the NORMAL token next arrives here.  Requesting the protocol that
        is already current cancels any pending request.
        """
        if to not in self.core.slots:
            raise SwitchError(f"unknown protocol {to!r}")
        if to == self.core.current and not self.core.switching:
            self._want = None
            return
        self._want = to

    @property
    def pending_request(self) -> Optional[str]:
        return self._want

    def on_global_complete(
        self, callback: Callable[[SwitchId, float], None]
    ) -> None:
        """Initiator-side: fires with (switch id, duration) when the FLUSH
        token has completed its rotation (switch done at every member)."""
        self._global_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Control-channel input
    # ------------------------------------------------------------------
    def control_receive(self, msg: Message) -> None:
        """Process the token arriving on the SP control channel."""
        token = msg.body
        phase = token[0]
        if phase == "normal":
            self._on_normal()
        elif phase == "prepare":
            self._on_prepare(*token[1:])
        elif phase == "switch":
            self._on_switch(*token[1:])
        elif phase == "flush":
            self._on_flush(*token[1:])
        else:  # pragma: no cover - defensive
            raise SwitchError(f"unknown token phase {phase!r}")

    # ------------------------------------------------------------------
    # Phase handling
    # ------------------------------------------------------------------
    def _on_normal(self) -> None:
        self.stats.incr("normal_tokens")
        want = self._want
        if want is not None and want == self.core.current:
            # Stale request (a previous switch already got us here).
            self._want = None
            want = None
        if want is None or self.core.mode is not SwitchMode.NORMAL:
            self._forward(("normal",), paced=True)
            return
        # Become the initiator: NORMAL -> PREPARE.
        self._want = None
        switch_id: SwitchId = (self.ctx.rank, self._initiations)
        self._initiations += 1
        self._switch_started_at = self.ctx.now
        old, new = self.core.current, want
        count = self.core.begin_switch(old, new)
        self.stats.incr("initiated")
        self._forward(
            ("prepare", switch_id, old, new, {self.ctx.rank: count}),
            paced=False,
        )

    def _on_prepare(
        self, switch_id: SwitchId, old: str, new: str, counts: Dict[int, int]
    ) -> None:
        if switch_id[0] == self.ctx.rank:
            # Full rotation: counts are complete; disseminate the vector.
            self.core.set_vector(counts)
            self.stats.incr("vector_built")
            self._forward(("switch", switch_id, dict(counts)), paced=False)
            return
        count = self.core.begin_switch(old, new)
        new_counts = dict(counts)
        new_counts[self.ctx.rank] = count
        self.stats.incr("prepared")
        self._forward(("prepare", switch_id, old, new, new_counts), paced=False)

    def _on_switch(self, switch_id: SwitchId, vector: Dict[int, int]) -> None:
        if switch_id[0] == self.ctx.rank:
            # Second rotation done: start the FLUSH rotation.
            self._forward_flush(("flush", switch_id))
            return
        self.core.set_vector(vector)
        self._forward(("switch", switch_id, vector), paced=False)

    def _on_flush(self, switch_id: SwitchId) -> None:
        if switch_id[0] == self.ctx.rank:
            # Third rotation done: the switch has completed everywhere.
            duration = self.ctx.now - self._switch_started_at
            self.last_switch_duration = duration
            self.stats.incr("globally_complete")
            for callback in self._global_callbacks:
                callback(switch_id, duration)
            self._forward(("normal",), paced=True)
            return
        self._forward_flush(("flush", switch_id))

    # ------------------------------------------------------------------
    # FLUSH gating: only forward once drained locally
    # ------------------------------------------------------------------
    def _forward_flush(self, token: tuple) -> None:
        if self.core.mode is SwitchMode.NORMAL:
            self._forward(token, paced=False)
        else:
            self.stats.incr("flush_held")
            self._held_flush = token

    def _on_local_complete(self, old: str, new: str) -> None:
        if self._held_flush is not None:
            token, self._held_flush = self._held_flush, None
            self._forward(token, paced=False)

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _forward(self, token: tuple, paced: bool) -> None:
        successor = self.ctx.group.ring_successor(self.ctx.rank)

        def transmit() -> None:
            msg = self.ctx.make_message(token, 40, dest=(successor,))
            self._control_send(msg)

        if paced and self.token_interval > 0:
            self.ctx.after(self.token_interval, transmit)
        else:
            transmit()
