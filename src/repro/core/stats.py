"""Runtime signals feeding the switching oracle.

The paper's §7 experiment switches between total-order protocols based on
the number of *active senders* (the x-axis of Figure 2).  The oracle is
an orthogonal black box to the SP; these monitors provide the inputs the
shipped oracle policies consume.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set, Tuple

from ..runtime.api import Clock
from ..sim.monitor import Ewma
from ..stack.message import Message

__all__ = ["ActivityMonitor", "RateMonitor"]


class ActivityMonitor:
    """Tracks which senders were active in a sliding time window.

    Attach with ``stack.on_deliver(monitor.observe)``; query
    :meth:`active_senders` from the oracle.
    """

    def __init__(self, clock: Clock, window: float = 0.5) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.clock = clock
        self.window = window
        self._events: Deque[Tuple[float, int]] = deque()

    def observe(self, msg: Message) -> None:
        """Record one delivered message (attach to ``on_deliver``)."""
        self._events.append((self.clock.now, msg.sender))
        self._expire()

    def _expire(self) -> None:
        horizon = self.clock.now - self.window
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def active_senders(self) -> int:
        """Distinct senders observed within the window."""
        self._expire()
        senders: Set[int] = {sender for __, sender in self._events}
        return len(senders)

    def delivery_rate(self) -> float:
        """Deliveries per second over the window."""
        self._expire()
        return len(self._events) / self.window


class RateMonitor:
    """Smoothed deliveries-per-second signal (EWMA over window samples).

    Elapsed windows are folded in at *read* time too, not only when the
    next delivery happens to arrive: a monitor that saw a burst and then
    went idle decays toward zero instead of reporting the stale burst
    rate forever (the oracle would otherwise never switch back down).
    """

    def __init__(self, clock: Clock, window: float = 0.25, alpha: float = 0.3) -> None:
        self.clock = clock
        self.window = window
        self._count_in_window = 0
        self._window_start = clock.now
        self._ewma = Ewma(alpha)

    def observe(self, msg: Message) -> None:
        """Record one delivered message (attach to ``on_deliver``)."""
        self._flush_elapsed()
        self._count_in_window += 1

    def _flush_elapsed(self) -> None:
        """Fold every *completed* window since the last flush into the EWMA.

        The first completed window carries the pending in-window count;
        the rest were empty, applied in closed form (no O(idle) loop).
        Before the first delivery there is nothing to flush — the rate
        stays None rather than becoming a spurious 0.0.
        """
        now = self.clock.now
        elapsed = int((now - self._window_start) / self.window)
        if elapsed <= 0:
            return
        if self._ewma.count == 0 and self._count_in_window == 0:
            self._window_start += elapsed * self.window
            return
        self._ewma.observe(self._count_in_window / self.window)
        self._count_in_window = 0
        if elapsed > 1:
            self._ewma.decay(elapsed - 1)
        self._window_start += elapsed * self.window

    @property
    def rate(self) -> Optional[float]:
        self._flush_elapsed()
        return self._ewma.value
