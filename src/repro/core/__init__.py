"""The paper's primary contribution: the switching protocol and its
surroundings.

* :mod:`repro.core.base` — the shared SP state machine (modes, counts,
  buffering, drain).
* :mod:`repro.core.switch` — the broadcast/manager SP variant.
* :mod:`repro.core.token_switch` — the token-ring SP variant (three
  rotations: PREPARE, SWITCH, FLUSH).
* :mod:`repro.core.switchable` — per-process assembly (Figure 1).
* :mod:`repro.core.oracle` / :mod:`repro.core.hybrid` /
  :mod:`repro.core.stats` — when-to-switch policies and their inputs.
* :mod:`repro.core.view_switch` — the §8 virtually-synchronous switching
  extension.
"""

from .base import ProtocolSlot, SwitchAborted, SwitchCore, SwitchMode
from .channel import ChannelEnd, SwitchableChannel
from .hybrid import AdaptiveController, SwitchDecision
from .oracle import (
    CompositeOracle,
    HysteresisOracle,
    ManualOracle,
    Oracle,
    ScheduledOracle,
    ThresholdOracle,
)
from .stats import ActivityMonitor, RateMonitor
from .switch import BroadcastSwitchProtocol
from .switchable import (
    GroupHandle,
    ProtocolSpec,
    SwitchableStack,
    build_group_handle,
    build_switch_group,
)
from .token_switch import (
    FaultToleranceConfig,
    ResilientTokenSwitchProtocol,
    TokenSwitchProtocol,
)
from .view_switch import ViewSwitchStack

__all__ = [
    "ProtocolSlot",
    "SwitchAborted",
    "SwitchCore",
    "SwitchMode",
    "FaultToleranceConfig",
    "ResilientTokenSwitchProtocol",
    "ChannelEnd",
    "SwitchableChannel",
    "AdaptiveController",
    "SwitchDecision",
    "CompositeOracle",
    "HysteresisOracle",
    "ManualOracle",
    "Oracle",
    "ScheduledOracle",
    "ThresholdOracle",
    "ActivityMonitor",
    "RateMonitor",
    "BroadcastSwitchProtocol",
    "GroupHandle",
    "ProtocolSpec",
    "SwitchableStack",
    "build_group_handle",
    "build_switch_group",
    "TokenSwitchProtocol",
    "ViewSwitchStack",
]
