"""View-based switching: the §8 future-work extension, implemented.

The paper closes by noting that "virtually synchronous view changes can
be used to switch protocols, and this more complicated mechanism does
support the Virtual Synchrony property."  :class:`ViewSwitchStack`
realizes that: it is a switchable stack that *also* maintains views at
the application boundary —

* the initial view is delivered at construction, and
* every completed switch delivers a fresh view (id incremented, same
  membership) at the exact epoch boundary: after the last old-protocol
  delivery and before the first new-protocol delivery.

Because the SP drains the old protocol to the same per-member vector at
every process, all members deliver identical message sets between
consecutive views — which, together with monotone view ids and
membership evidence, is precisely the VS trace property.  Contrast with
the plain SP under VS slot protocols, where the property breaks (the
Memoryless failure, §6.1); the preservation benchmark demonstrates both.
"""

from __future__ import annotations

from typing import Optional

from ..protocols.virtual_synchrony import view_message_mid
from ..stack.membership import View
from ..stack.message import Message
from .switchable import SwitchableStack

__all__ = ["ViewSwitchStack"]

#: View-message id namespace reserved for the view-switch mechanism.
VIEW_SWITCH_NAMESPACE = 500


class ViewSwitchStack(SwitchableStack):
    """A switchable stack whose switches are virtually synchronous.

    Accepts all :class:`SwitchableStack` arguments.  Views are delivered
    to the application as messages whose body is a
    :class:`~repro.stack.membership.View`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._view_id = 0
        self.core.on_epoch_boundary(self._deliver_next_view)
        # Deliver the initial view at simulation start (not construction
        # time) so observers attached after construction still see it,
        # and before any data can flow.
        self.ctx.after(0.0, lambda: self._deliver_view(View(0, self.group.members)))

    def _deliver_next_view(self, old: str, new: str) -> None:
        self._view_id += 1
        self._deliver_view(View(self._view_id, self.group.members))

    def _deliver_view(self, view: View) -> None:
        msg = Message(
            sender=view.coordinator,
            mid=view_message_mid(view, VIEW_SWITCH_NAMESPACE),
            body=view,
            body_size=8 + 4 * len(view.members),
        )
        self._app_deliver(msg)

    @property
    def current_view_id(self) -> int:
        return self._view_id
