"""The broadcast/manager variant of the switching protocol (§2).

Choreography, verbatim from the paper:

1. The *manager* (the process whose oracle requested the switch)
   broadcasts ``PREPARE``.
2. On receipt, a member returns ``OK(member, count)`` — the number of
   messages it has sent so far over the current protocol — switches its
   *sending* to the new protocol, and starts buffering new-protocol
   deliveries.
3. The manager awaits all OKs, then broadcasts ``SWITCH(vector)`` with
   everyone's send counts.
4. A member that has delivered all old-protocol messages named by the
   vector flips to the new protocol and flushes its buffer.

We additionally send a ``DONE`` back to the manager when a member
finishes, purely for instrumentation (switch-duration measurements);
the protocol does not depend on it.

The control channel must be reliable and FIFO per sender (compose it
over :class:`~repro.protocols.reliable.ReliableLayer`); concurrent
initiations are NOT supported by this variant — that is precisely the
complication the paper's token-ring variant exists to avoid.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SwitchError
from ..obs.bus import PhaseTracker
from ..sim.monitor import Counter
from ..stack.layer import LayerContext, SendFn
from ..stack.message import Message
from .base import SwitchAborted, SwitchCore, SwitchMode

__all__ = ["BroadcastSwitchProtocol"]

SwitchId = Tuple[int, int]  # (initiator rank, initiation sequence)


class BroadcastSwitchProtocol:
    """PREPARE / OK / SWITCH manager-driven switching.

    With ``switch_timeout`` set, the manager arms a sim-clock timer per
    initiation; a switch that has not globally completed in time is
    aborted with an ABORT broadcast and surfaces a structured
    :class:`~repro.core.base.SwitchAborted` instead of wedging the group.
    Left at ``None`` (the default) the behaviour is exactly the seed's.
    """

    def __init__(
        self,
        ctx: LayerContext,
        core: SwitchCore,
        control_send: SendFn,
        switch_timeout: Optional[float] = None,
    ) -> None:
        if switch_timeout is not None and switch_timeout <= 0:
            raise SwitchError("switch_timeout must be positive")
        self.ctx = ctx
        self.core = core
        self._control_send = control_send
        self.switch_timeout = switch_timeout
        self._initiations = 0
        # Manager-side state for the in-flight switch we initiated:
        self._managing: Optional[SwitchId] = None
        self._ok_counts: Dict[int, int] = {}
        self._done_members: set = set()
        self._switch_started_at = 0.0
        self._abort_timer = None
        self.last_switch_duration: Optional[float] = None
        self.last_abort: Optional[SwitchAborted] = None
        self.stats = Counter()
        self._stopped = False
        #: Instrumentation scope + manager-side switch-phase spans.
        self.obs = ctx.obs
        self._phases = PhaseTracker(ctx.obs)
        self._global_callbacks: List[Callable[[SwitchId, float], None]] = []
        self._abort_callbacks: List[Callable[[SwitchAborted], None]] = []
        self._switch_old_new: Dict[SwitchId, Tuple[str, str]] = {}
        self._locally_completed: set = set()
        self._aborted: set = set()
        #: Manager-side: switch ids whose SWITCH vector already went out,
        #: so late/retransmitted OKs don't re-broadcast it.
        self._vector_sent: set = set()
        #: Member-side: pending one-shot DONE notifications, unsubscribed
        #: on abort so a dead switch doesn't fire a stale DONE later.
        self._done_subs: Dict[SwitchId, Callable[[], None]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def request_switch(self, to: str) -> SwitchId:
        """Initiate a switch from the current protocol to ``to``.

        Must be called while no switch is in progress; returns the switch
        id for correlation with completion callbacks.
        """
        if self.core.mode is not SwitchMode.NORMAL:
            raise SwitchError("broadcast SP cannot overlap switches")
        if self._managing is not None:
            raise SwitchError("already managing a switch")
        if to == self.core.current:
            raise SwitchError(f"already running protocol {to!r}")
        if to not in self.core.slots:
            raise SwitchError(f"unknown protocol {to!r}")
        switch_id: SwitchId = (self.ctx.rank, self._initiations)
        self._initiations += 1
        self._managing = switch_id
        self._ok_counts = {}
        self._done_members = set()
        self._switch_started_at = self.ctx.now
        self._switch_old_new[switch_id] = (self.core.current, to)
        self.stats.incr("initiated")
        self._phases.begin(switch_id, self.core.current, to)
        if self.switch_timeout is not None:
            self._abort_timer = self.ctx.after(
                self.switch_timeout, lambda: self._timeout_abort(switch_id)
            )
        self._broadcast(("prepare", switch_id, self.core.current, to))
        return switch_id

    def stop(self) -> None:
        """Teardown: ignore further control traffic, cancel the abort
        timer.  Idempotent."""
        self._stopped = True
        if self._abort_timer is not None:
            self._abort_timer.cancel()
            self._abort_timer = None

    def on_switch_aborted(
        self, callback: Callable[[SwitchAborted], None]
    ) -> None:
        """``callback(outcome)`` fires when this member applies an abort."""
        self._abort_callbacks.append(callback)

    def on_global_complete(
        self, callback: Callable[[SwitchId, float], None]
    ) -> None:
        """Manager-side: fires with (switch id, duration) once every
        member has reported DONE."""
        self._global_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Control-channel input
    # ------------------------------------------------------------------
    def control_receive(self, msg: Message) -> None:
        """Dispatch one message arriving on the SP control channel."""
        if self._stopped:
            self.stats.incr("dropped_after_stop")
            return
        body = msg.body
        kind = body[0]
        if kind == "prepare":
            self._on_prepare(*body[1:])
        elif kind == "ok":
            self._on_ok(*body[1:])
        elif kind == "switch":
            self._on_switch(*body[1:])
        elif kind == "done":
            self._on_done(*body[1:])
        elif kind == "abort":
            self._on_abort(*body[1:])
        else:  # pragma: no cover - defensive
            raise SwitchError(f"unknown control message kind {kind!r}")

    # ------------------------------------------------------------------
    # Member behaviour
    # ------------------------------------------------------------------
    def _on_prepare(self, switch_id: SwitchId, old: str, new: str) -> None:
        if switch_id in self._aborted:
            return
        self._switch_old_new[switch_id] = (old, new)
        count = self.core.begin_switch(old, new)
        self.stats.incr("prepared")
        if self.obs.enabled:
            self.obs.count("switch.prepared")
            self.obs.emit(
                "switch/prepared", switch=list(switch_id), old=old, new=new
            )

        def notify_done(finished_old: str, finished_new: str) -> None:
            self._done_subs.pop(switch_id, None)
            self._locally_completed.add(switch_id)
            self._unicast(switch_id[0], ("done", switch_id, self.ctx.rank))

        self._done_subs[switch_id] = self.core.on_switch_complete(
            notify_done, once=True
        )
        self._unicast(switch_id[0], ("ok", switch_id, self.ctx.rank, count))

    def _on_switch(self, switch_id: SwitchId, vector: Dict[int, int]) -> None:
        self.core.set_vector(vector)

    # ------------------------------------------------------------------
    # Manager behaviour
    # ------------------------------------------------------------------
    def _on_ok(self, switch_id: SwitchId, member: int, count: int) -> None:
        if switch_id != self._managing:
            return
        if switch_id in self._vector_sent:
            # Late or retransmitted OK: the vector is immutable once sent
            # — re-broadcasting it (and re-entering the "switch" phase
            # span) would just burn control-channel bandwidth.
            self.stats.incr("duplicate_oks")
            return
        self._ok_counts[member] = count
        if set(self._ok_counts) >= set(self.ctx.group.members):
            self._vector_sent.add(switch_id)
            self.stats.incr("vector_sent")
            self._phases.phase(switch_id, "switch")
            self._broadcast(("switch", switch_id, dict(self._ok_counts)))

    def _on_done(self, switch_id: SwitchId, member: int) -> None:
        if switch_id != self._managing:
            return
        if not self._done_members:
            # First DONE: some member flipped — the group is flushing.
            self._phases.phase(switch_id, "flush")
        self._done_members.add(member)
        if self._done_members >= set(self.ctx.group.members):
            duration = self.ctx.now - self._switch_started_at
            self.last_switch_duration = duration
            self._managing = None
            if self._abort_timer is not None:
                self._abort_timer.cancel()
                self._abort_timer = None
            self.stats.incr("globally_complete")
            self._vector_sent.discard(switch_id)
            self._phases.complete(switch_id, duration)
            for callback in self._global_callbacks:
                callback(switch_id, duration)

    # ------------------------------------------------------------------
    # Timeout abort
    # ------------------------------------------------------------------
    def _timeout_abort(self, switch_id: SwitchId) -> None:
        if self._managing != switch_id:
            return  # completed (or superseded) in the meantime
        self.stats.incr("switch_timeouts")
        reason = f"switch did not complete within {self.switch_timeout}s"
        self._broadcast(("abort", switch_id, reason))

    def _on_abort(self, switch_id: SwitchId, reason: str) -> None:
        if switch_id in self._aborted:
            return
        self._aborted.add(switch_id)
        self._vector_sent.discard(switch_id)
        unsubscribe = self._done_subs.pop(switch_id, None)
        if unsubscribe is not None:
            unsubscribe()
        old, new = self._switch_old_new.get(switch_id, (None, None))
        if self.core.switching:
            phase = "prepare" if self.core.vector is None else "switch"
            self.core.abort_switch()
        elif switch_id in self._locally_completed:
            phase = "flush"
            if old is not None:
                self.core.revert_to(old)
        else:
            phase = "unknown"
        if self._managing == switch_id:
            self._managing = None
            if self._abort_timer is not None:
                self._abort_timer.cancel()
                self._abort_timer = None
        outcome = SwitchAborted(
            switch_id, old, new, phase, reason, self.ctx.now
        )
        self.last_abort = outcome
        self.stats.incr("switches_aborted")
        self._phases.abort(switch_id, reason, phase)
        for callback in self._abort_callbacks:
            callback(outcome)

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _broadcast(self, body: tuple) -> None:
        msg = self.ctx.make_message(body, 32, dest=None)
        self._control_send(msg)

    def _unicast(self, to: int, body: tuple) -> None:
        msg = self.ctx.make_message(body, 32, dest=(to,))
        self._control_send(msg)
