"""Shared state machine of the switching protocol (SP).

Both SP realizations — the broadcast/manager variant and the token-ring
variant — implement the same §2 contract around this core:

* **Normal mode**: application sends go to the current protocol; current-
  protocol deliveries pass straight up.
* **Switching mode**: new sends go to the *new* protocol; new-protocol
  deliveries are buffered; old-protocol deliveries continue until the
  process has delivered, from every member, as many old-protocol messages
  as the SWITCH vector says were sent.  Then the process flips to the new
  protocol and flushes the buffer.

This guarantees the SP invariant: *every process delivers all messages of
the previous protocol before any message of the new one* — and sends are
never blocked.

The core also handles the pre-PREPARE race: a member that has already
switched its sending may reach us over the new protocol before our own
PREPARE arrives; such traffic is buffered even in normal mode.

Assumptions inherited from §2: subordinate protocols deliver no spurious
messages, at most once (for safety), exactly once (for switch liveness),
and deliver a group cast to *all* members, the sender included.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SwitchError
from ..obs.bus import BusScope, null_scope
from ..sim.monitor import Counter
from ..stack.layer import DeliverFn, Layer, SendFn
from ..stack.message import Message

__all__ = ["SwitchMode", "ProtocolSlot", "SwitchCore", "SwitchAborted"]


class SwitchMode(enum.Enum):
    NORMAL = "normal"
    SWITCHING = "switching"


@dataclass(frozen=True)
class SwitchAborted:
    """Structured outcome of a switch that was cleanly abandoned.

    A fault-tolerant SP variant that cannot complete a switch (a member
    crashed mid-drain, old-protocol messages were permanently lost on a
    bare slot, the control channel is severed) aborts back to the old
    protocol instead of wedging.  The outcome names which switch died,
    where in the choreography it was, and why.

    Attributes:
        switch_id: the (initiator rank, initiation sequence) pair.
        old: protocol the group stays on (or reverts to).
        new: protocol the switch was heading for.
        phase: SP phase at which the abort was decided
            ("prepare", "switch", "flush", or "unknown").
        reason: human-readable cause, e.g. "flush stalled beyond retry
            budget".
        time: simulated time the abort was decided.
    """

    switch_id: Tuple[int, int]
    old: Optional[str]
    new: Optional[str]
    phase: str
    reason: str
    time: float


class _CompletionSub:
    """One completion-callback registration (see ``on_switch_complete``)."""

    __slots__ = ("callback", "once", "active")

    def __init__(self, callback: Callable[[str, str], None], once: bool) -> None:
        self.callback = callback
        self.once = once
        self.active = True


class ProtocolSlot:
    """One subordinate protocol mounted under the switching layer."""

    def __init__(self, name: str, layers: Sequence[Layer], send: SendFn) -> None:
        self.name = name
        self.layers = list(layers)
        self.send = send

    def can_send(self) -> bool:
        """Back-pressure query: AND of every layer in the slot."""
        return all(layer.can_send() for layer in self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProtocolSlot {self.name}>"


class SwitchCore:
    """Mode/counting/buffering state machine shared by SP variants."""

    def __init__(
        self,
        slots: Dict[str, ProtocolSlot],
        app_deliver: DeliverFn,
        initial: str,
        block_sends_during_switch: bool = False,
        obs: Optional[BusScope] = None,
    ) -> None:
        if initial not in slots:
            raise SwitchError(f"initial protocol {initial!r} not among {sorted(slots)}")
        if len(slots) < 2:
            raise SwitchError("switching needs at least two protocol slots")
        self.slots = slots
        self._app_deliver = app_deliver
        #: The paper's SP never blocks senders (§2, §7) — new sends go to
        #: the new protocol during a switch.  The *blocking* variant
        #: (a §8 "other switching protocols supporting different classes
        #: of properties" exploration) instead queues application sends
        #: until the switch finishes, which additionally preserves
        #: send-restriction properties like Amoeba — at the cost of the
        #: very blocking the paper's design avoids.
        self.block_sends_during_switch = block_sends_during_switch
        self._blocked_sends: List[Message] = []
        self.mode = SwitchMode.NORMAL
        self.current = initial
        self.old: Optional[str] = None
        self.new: Optional[str] = None
        self.vector: Optional[Dict[int, int]] = None
        #: messages this process sent per slot (cumulative across epochs).
        self.sent: Dict[str, int] = {name: 0 for name in slots}
        #: messages delivered per slot, per originating member (cumulative).
        self.delivered: Dict[str, Dict[int, int]] = {name: {} for name in slots}
        #: deliveries held back: (slot name, message), in arrival order.
        self._buffer: List[Tuple[str, Message]] = []
        self.switches_completed = 0
        self.stats = Counter()
        #: Instrumentation scope; the disabled null scope by default, so
        #: unwired cores pay one attribute load + truthiness test at most.
        self.obs: BusScope = obs if obs is not None else null_scope()
        self._completion_callbacks: List[_CompletionSub] = []
        self._boundary_callbacks: List[Callable[[str, str], None]] = []

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def on_switch_complete(
        self, callback: Callable[[str, str], None], once: bool = False
    ) -> Callable[[], None]:
        """``callback(old, new)`` fires when *this process* finishes a switch.

        ``once=True`` deregisters the callback after its first invocation
        — the per-switch notification pattern of the SP variants, which
        would otherwise leak one callback per switch over a long adaptive
        run.  Returns an idempotent unsubscribe function; deregistering
        (by either route) during a dispatch does not affect callbacks
        already snapshotted for that dispatch.
        """
        sub = _CompletionSub(callback, once)
        self._completion_callbacks.append(sub)

        def unsubscribe() -> None:
            sub.active = False

        return unsubscribe

    @property
    def completion_callback_count(self) -> int:
        """Live completion registrations (leak regression hook)."""
        return sum(1 for sub in self._completion_callbacks if sub.active)

    def on_epoch_boundary(self, callback: Callable[[str, str], None]) -> None:
        """``callback(old, new)`` fires at the exact delivery boundary: after
        the last old-protocol delivery, before buffered new-protocol
        deliveries are flushed.  Used by the view-switch extension to
        place a view message between the two epochs."""
        self._boundary_callbacks.append(callback)

    @property
    def switching(self) -> bool:
        return self.mode is SwitchMode.SWITCHING

    @property
    def buffered_count(self) -> int:
        return len(self._buffer)

    @property
    def send_slot(self) -> str:
        """Where application sends go right now."""
        if self.mode is SwitchMode.SWITCHING:
            assert self.new is not None
            return self.new
        return self.current

    # ------------------------------------------------------------------
    # Application send path
    # ------------------------------------------------------------------
    def app_send(self, msg: Message) -> None:
        """Route an application send to the active slot (counts it).

        In the blocking variant, sends submitted mid-switch are queued
        and released (to the new protocol) when the switch completes.
        """
        if self.block_sends_during_switch and self.mode is SwitchMode.SWITCHING:
            self.stats.incr("sends_blocked")
            self._blocked_sends.append(msg)
            return
        slot_name = self.send_slot
        self.sent[slot_name] += 1
        self.stats.incr(f"sent[{slot_name}]")
        self.slots[slot_name].send(msg)

    def can_send(self) -> bool:
        """Back-pressure query against the slot sends currently go to."""
        if self.block_sends_during_switch and self.mode is SwitchMode.SWITCHING:
            return False
        return self.slots[self.send_slot].can_send()

    # ------------------------------------------------------------------
    # Deliveries arriving from the slots
    # ------------------------------------------------------------------
    def slot_deliver(self, slot_name: str, msg: Message) -> None:
        """Handle a delivery arriving from a subordinate protocol slot."""
        if slot_name not in self.slots:
            raise SwitchError(f"delivery from unknown slot {slot_name!r}")
        if self.mode is SwitchMode.NORMAL:
            if slot_name == self.current:
                self._deliver(slot_name, msg)
            else:
                # Early traffic from a switch we have not learned about yet.
                self.stats.incr("early_buffered")
                self._buffer.append((slot_name, msg))
                if self.obs.enabled:
                    self.obs.count("core.buffered_early")
                    self.obs.gauge("core.buffer_depth", len(self._buffer))
            return
        # Switching mode.
        if slot_name == self.old:
            self._deliver(slot_name, msg)
            self._check_drained()
        else:
            self.stats.incr("buffered")
            self._buffer.append((slot_name, msg))
            if self.obs.enabled:
                self.obs.count("core.buffered")
                self.obs.gauge("core.buffer_depth", len(self._buffer))

    def _deliver(self, slot_name: str, msg: Message) -> None:
        per_member = self.delivered[slot_name]
        per_member[msg.sender] = per_member.get(msg.sender, 0) + 1
        self.stats.incr(f"delivered[{slot_name}]")
        self._app_deliver(msg)

    # ------------------------------------------------------------------
    # Switch choreography (driven by the SP variants)
    # ------------------------------------------------------------------
    def begin_switch(self, old: str, new: str) -> int:
        """Enter switching mode; returns our send count on the old slot.

        The count is what the member reports in its OK message: how many
        messages it has sent so far over the protocol being left.
        """
        if old not in self.slots or new not in self.slots:
            raise SwitchError(f"unknown slots in switch {old!r} -> {new!r}")
        if old == new:
            raise SwitchError(f"switch to the same protocol {old!r}")
        if self.mode is SwitchMode.SWITCHING:
            raise SwitchError("switch already in progress")
        if old != self.current:
            raise SwitchError(
                f"switch leaves {old!r} but current protocol is {self.current!r}"
            )
        self.mode = SwitchMode.SWITCHING
        self.old = old
        self.new = new
        self.vector = None
        self.stats.incr("switches_started")
        return self.sent[old]

    def set_vector(self, vector: Dict[int, int]) -> None:
        """Install the SWITCH vector of per-member old-protocol send counts."""
        if self.mode is not SwitchMode.SWITCHING:
            raise SwitchError("SWITCH vector outside a switch")
        self.vector = dict(vector)
        self._check_drained()

    def _check_drained(self) -> None:
        if self.vector is None:
            return
        assert self.old is not None
        delivered = self.delivered[self.old]
        for member, count in self.vector.items():
            if delivered.get(member, 0) < count:
                return
        self._finish()

    def _finish(self) -> None:
        assert self.old is not None and self.new is not None
        old, new = self.old, self.new
        self.mode = SwitchMode.NORMAL
        self.current = new
        self.old = None
        self.new = None
        self.vector = None
        self.switches_completed += 1
        self.stats.incr("switches_completed")
        for callback in self._boundary_callbacks:
            callback(old, new)
        # Flush deliveries buffered for the (now) current protocol, in
        # arrival order; traffic for other slots stays buffered.
        flushable = [(s, m) for s, m in self._buffer if s == new]
        self._buffer = [(s, m) for s, m in self._buffer if s != new]
        if self.obs.enabled:
            self.obs.emit(
                "core/flip", old=old, new=new, flushed=len(flushable)
            )
            self.obs.count("core.flushed", len(flushable))
            self.obs.gauge("core.buffer_depth", len(self._buffer))
        for slot_name, msg in flushable:
            self._deliver(slot_name, msg)
        # Blocking variant: release queued sends onto the new protocol.
        if self._blocked_sends:
            released, self._blocked_sends = self._blocked_sends, []
            for msg in released:
                self.app_send(msg)
        fired = [sub for sub in self._completion_callbacks if sub.active]
        for sub in fired:
            if sub.once:
                sub.active = False
        self._completion_callbacks = [
            sub for sub in self._completion_callbacks if sub.active
        ]
        for sub in fired:
            sub.callback(old, new)

    def abort_switch(self) -> Tuple[str, str]:
        """Abandon the in-flight switch; returns the (old, new) pair.

        Reverts to normal mode on the *old* protocol: application sends
        go back to ``old``, and deliveries already buffered from the new
        protocol stay buffered as early traffic (they flush if and when a
        later switch to that protocol completes — delivering them now
        would violate old-before-new at members that never aborted).
        Queued sends of the blocking variant are released onto ``old``.
        """
        if self.mode is not SwitchMode.SWITCHING:
            raise SwitchError("no switch in progress to abort")
        assert self.old is not None and self.new is not None
        old, new = self.old, self.new
        self.mode = SwitchMode.NORMAL
        self.current = old
        self.old = None
        self.new = None
        self.vector = None
        self.stats.incr("switches_aborted")
        if self.obs.enabled:
            self.obs.emit(
                "core/revert", old=old, new=new, buffered=len(self._buffer)
            )
        if self._blocked_sends:
            released, self._blocked_sends = self._blocked_sends, []
            for msg in released:
                self.app_send(msg)
        return old, new

    def revert_to(self, old: str) -> None:
        """Undo a locally *completed* switch by flipping back to ``old``.

        Used when an abort rotation reaches a member that had already
        drained and flipped: convergence demands every member end on the
        same protocol, so the drained member rejoins the survivors on the
        old one.  Deliveries it already flushed from the new protocol
        stay delivered (abort weakens old-before-new to per-member local
        history; see docs/PROTOCOLS.md).  Future new-protocol deliveries
        buffer as early traffic again.
        """
        if self.mode is not SwitchMode.NORMAL:
            raise SwitchError("revert_to requires normal mode; abort instead")
        if old not in self.slots:
            raise SwitchError(f"cannot revert to unknown slot {old!r}")
        if old == self.current:
            return
        self.current = old
        self.stats.incr("reverts")
        # Deliveries buffered for the adopted slot are current-protocol
        # traffic now: flush them in arrival order (mirrors _finish).
        flushable = [(s, m) for s, m in self._buffer if s == old]
        if flushable:
            self._buffer = [(s, m) for s, m in self._buffer if s != old]
            for slot_name, msg in flushable:
                self._deliver(slot_name, msg)

    def is_drained_of(self, slot_name: str) -> bool:
        """Testing hook: nothing owed from ``slot_name`` per the vector."""
        if self.vector is None or slot_name != self.old:
            return self.mode is SwitchMode.NORMAL
        delivered = self.delivered[slot_name]
        return all(
            delivered.get(member, 0) >= count
            for member, count in self.vector.items()
        )
