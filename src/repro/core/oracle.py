"""Switching oracles: deciding *when* to switch.

"We assume that some kind of oracle decides when a switch is necessary"
(§1) — which protocol is best is an orthogonal problem to preserving
properties under switching.  This module supplies the oracle interface
plus the policies the paper's use cases call for:

* :class:`ThresholdOracle` — the naive policy: one threshold on a load
  metric.  §7 reports that switching this aggressively makes the hybrid
  *oscillate* around the crossover.
* :class:`HysteresisOracle` — the paper's fix: separate up/down
  thresholds plus a minimum dwell time between switches.
* :class:`ScheduledOracle` — switch at predetermined times (the on-line
  upgrade use case: swap protocols without restarting applications).
* :class:`ManualOracle` — externally triggered (the security use case:
  escalate when the intrusion detector fires, "or when it gets close to
  April 1st").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SwitchError

__all__ = [
    "Oracle",
    "CompositeOracle",
    "ThresholdOracle",
    "HysteresisOracle",
    "ScheduledOracle",
    "ManualOracle",
    "RateMeter",
    "DecisionRecord",
    "FleetOracle",
]


class Oracle(ABC):
    """Decides which protocol should be running."""

    @abstractmethod
    def decide(self, now: float, current: str) -> Optional[str]:
        """Return the protocol to switch to, or None to stay put.

        Called periodically by the adaptive controller with the simulated
        time and the currently-running protocol's name.
        """


class ThresholdOracle(Oracle):
    """Single-threshold policy: aggressive, oscillation-prone.

    Args:
        metric: zero-argument callable returning the current load signal
            (e.g. ``ActivityMonitor.active_senders``).
        threshold: values strictly above select ``high_protocol``.
        low_protocol / high_protocol: protocol names per regime.
    """

    def __init__(
        self,
        metric: Callable[[], float],
        threshold: float,
        low_protocol: str,
        high_protocol: str,
    ) -> None:
        self.metric = metric
        self.threshold = threshold
        self.low_protocol = low_protocol
        self.high_protocol = high_protocol

    def decide(self, now: float, current: str) -> Optional[str]:
        value = self.metric()
        target = self.high_protocol if value > self.threshold else self.low_protocol
        return target if target != current else None


class HysteresisOracle(Oracle):
    """Two thresholds plus dwell time: the §7 oscillation fix.

    Switches up only above ``high_threshold``, down only below
    ``low_threshold``, and never within ``min_dwell`` seconds of its last
    decision.

    ``low_threshold=None`` makes the oracle *latching*: it can escalate
    to ``high_protocol`` but never returns on its own.  The scenario
    catalog uses this for drift that should trigger exactly one switch
    (e.g. escalating loss) without the signal's recovery flapping the
    group back.
    """

    def __init__(
        self,
        metric: Callable[[], float],
        low_threshold: Optional[float],
        high_threshold: float,
        low_protocol: str,
        high_protocol: str,
        min_dwell: float = 0.0,
    ) -> None:
        if low_threshold is not None and low_threshold > high_threshold:
            raise SwitchError(
                f"hysteresis band inverted: {low_threshold} > {high_threshold}"
            )
        if min_dwell < 0:
            raise SwitchError("min_dwell must be non-negative")
        self.metric = metric
        self.low_threshold = low_threshold
        self.high_threshold = high_threshold
        self.low_protocol = low_protocol
        self.high_protocol = high_protocol
        self.min_dwell = min_dwell
        self._last_decision_at: Optional[float] = None

    def decide(self, now: float, current: str) -> Optional[str]:
        if (
            self._last_decision_at is not None
            and now - self._last_decision_at < self.min_dwell
        ):
            return None
        value = self.metric()
        target: Optional[str] = None
        if value > self.high_threshold and current != self.high_protocol:
            target = self.high_protocol
        elif (
            self.low_threshold is not None
            and value < self.low_threshold
            and current != self.low_protocol
        ):
            target = self.low_protocol
        if target is not None:
            self._last_decision_at = now
        return target


class ScheduledOracle(Oracle):
    """Switch to given protocols at given times (on-line upgrade)."""

    def __init__(self, schedule: Sequence[Tuple[float, str]]) -> None:
        self._schedule: List[Tuple[float, str]] = sorted(schedule)

    def decide(self, now: float, current: str) -> Optional[str]:
        due: Optional[str] = None
        while self._schedule and self._schedule[0][0] <= now:
            due = self._schedule.pop(0)[1]
        if due is not None and due != current:
            return due
        return None

    @property
    def remaining(self) -> int:
        return len(self._schedule)


class CompositeOracle(Oracle):
    """Priority composition of oracles.

    The paper's §1 lists three concurrent reasons to switch —
    performance, on-line upgrading, and security.  A real deployment has
    all of them at once; this oracle consults its children in priority
    order and returns the first decision.  Put the security oracle first:
    an escalation must not be overridden by a performance tweak.
    """

    def __init__(self, oracles: Sequence[Oracle]) -> None:
        if not oracles:
            raise SwitchError("composite oracle needs at least one child")
        self.oracles = list(oracles)

    def decide(self, now: float, current: str) -> Optional[str]:
        """First non-None child decision, in priority order."""
        for oracle in self.oracles:
            target = oracle.decide(now, current)
            if target is not None:
                return target
        return None


class RateMeter:
    """Turns a monotonically increasing counter into a rate signal.

    Each call reads the counter, diffs it against the previous reading,
    and returns the change per second of clock time.  This is how the
    fleet oracle derives per-group message rates from the obs bus's
    cumulative ``fleet.delivered[g<id>]`` counters without the bus having
    to window anything itself.

    Args:
        clock: zero-argument callable returning the current time (use the
            runtime clock, so the meter works identically under SimRuntime
            and wall time).
        read: zero-argument callable returning the cumulative count.
    """

    def __init__(
        self, clock: Callable[[], float], read: Callable[[], float]
    ) -> None:
        self.clock = clock
        self.read = read
        self._last_time = clock()
        self._last_value = read()

    def __call__(self) -> float:
        now = self.clock()
        value = self.read()
        elapsed = now - self._last_time
        if elapsed <= 0:
            # Same-instant poll (routine under SimRuntime, where many
            # timers share one tick): no window to rate over.  Keep the
            # baselines — advancing them here would swallow every count
            # accrued since the last real poll, under-reporting the
            # next window's rate.
            return 0.0
        rate = (value - self._last_value) / elapsed
        self._last_time = now
        self._last_value = value
        return rate


class DecisionRecord:
    """One fleet-oracle decision, annotated with its justification.

    ``signal`` is the metric value the deciding child oracle actually
    sampled; ``snapshot`` is whatever the wired telemetry plane reported
    for the group at decision time (None when no plane is attached) —
    together they make every escalation explainable from live data.
    """

    __slots__ = ("time", "group_id", "current", "target", "signal", "snapshot")

    def __init__(
        self,
        time: float,
        group_id: int,
        current: str,
        target: str,
        signal: Optional[float],
        snapshot: Optional[Dict[str, object]],
    ) -> None:
        self.time = time
        self.group_id = group_id
        self.current = current
        self.target = target
        self.signal = signal
        self.snapshot = snapshot

    def as_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "group_id": self.group_id,
            "from": self.current,
            "to": self.target,
            "signal": self.signal,
            "snapshot": self.snapshot,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DecisionRecord g{self.group_id} {self.current}->{self.target} "
            f"t={self.time:.3f} signal={self.signal}>"
        )


class FleetOracle:
    """Per-group switching policy over a whole fleet.

    One :class:`HysteresisOracle` per watched group, each fed its own
    per-group load signal (typically a :class:`RateMeter` over the
    group-labelled delivery counter).  Hot groups cross the high
    threshold and escalate; cold groups never do.  With the default
    ``low_threshold=None`` the per-group policy is latching: a group
    switches up at most once and a hot signal cooling off does not flap
    it back.

    Args:
        metric_factory: ``metric_factory(group_id)`` returns the
            zero-argument load signal for that group.
        high_threshold: signal above this escalates to ``high_protocol``.
        low_protocol / high_protocol: protocol names per regime.
        low_threshold: de-escalation threshold; ``None`` (default) latches.
        min_dwell: minimum seconds between decisions for one group.

    Every decision is appended to :attr:`decisions` as a
    :class:`DecisionRecord` carrying the sampled signal value; wiring a
    telemetry plane (``plane.attach_oracle(oracle)``) sets
    :attr:`snapshot_provider` so each record also carries the group
    snapshot that justified it, and :attr:`on_decision` so the plane
    can start its time-to-switch stopwatch.
    """

    def __init__(
        self,
        metric_factory: Callable[[int], Callable[[], float]],
        high_threshold: float,
        low_protocol: str,
        high_protocol: str,
        low_threshold: Optional[float] = None,
        min_dwell: float = 0.0,
    ) -> None:
        self.metric_factory = metric_factory
        self.high_threshold = high_threshold
        self.low_threshold = low_threshold
        self.low_protocol = low_protocol
        self.high_protocol = high_protocol
        self.min_dwell = min_dwell
        self._children: Dict[int, HysteresisOracle] = {}
        #: Optional ``provider(group_id) -> dict``: the live telemetry
        #: snapshot to annotate each decision with (a plane wires this).
        self.snapshot_provider: Optional[
            Callable[[int], Dict[str, object]]
        ] = None
        #: Optional observer fired with every :class:`DecisionRecord`.
        self.on_decision: Optional[Callable[[DecisionRecord], None]] = None
        #: Every decision made, in order, with its justification.
        self.decisions: List[DecisionRecord] = []
        self._signals: Dict[int, float] = {}

    def watch(self, group_id: int) -> None:
        """Begin deciding for ``group_id`` (idempotent)."""
        if group_id in self._children:
            return
        metric = self.metric_factory(group_id)

        def sampled(metric=metric, group_id=group_id) -> float:
            value = metric()
            self._signals[group_id] = value
            return value

        self._children[group_id] = HysteresisOracle(
            sampled,
            self.low_threshold,
            self.high_threshold,
            self.low_protocol,
            self.high_protocol,
            min_dwell=self.min_dwell,
        )

    def unwatch(self, group_id: int) -> None:
        """Stop deciding for ``group_id`` (teardown; unknown ids tolerated)."""
        self._children.pop(group_id, None)
        self._signals.pop(group_id, None)

    @property
    def watched(self) -> Tuple[int, ...]:
        return tuple(self._children)

    def _record(
        self, now: float, group_id: int, current: str, target: str
    ) -> None:
        snapshot = (
            self.snapshot_provider(group_id)
            if self.snapshot_provider is not None
            else None
        )
        record = DecisionRecord(
            now, group_id, current, target, self._signals.get(group_id), snapshot
        )
        self.decisions.append(record)
        if self.on_decision is not None:
            self.on_decision(record)

    def decide(self, now: float, group_id: int, current: str) -> Optional[str]:
        """One group's decision: the protocol to switch to, or None."""
        child = self._children.get(group_id)
        if child is None:
            raise SwitchError(f"group {group_id} is not watched")
        target = child.decide(now, current)
        if target is not None:
            self._record(now, group_id, current, target)
        return target

    def decide_all(
        self, now: float, currents: Dict[int, str]
    ) -> Dict[int, str]:
        """Poll every watched group; returns {group_id: target} for the
        groups that should switch now."""
        decisions: Dict[int, str] = {}
        for group_id, child in self._children.items():
            current = currents.get(group_id)
            if current is None:
                continue
            target = child.decide(now, current)
            if target is not None:
                decisions[group_id] = target
                self._record(now, group_id, current, target)
        return decisions


class ManualOracle(Oracle):
    """Externally triggered switching (security escalation)."""

    def __init__(self) -> None:
        self._target: Optional[str] = None

    def escalate(self, target: str) -> None:
        """Request a switch to ``target`` at the next poll."""
        self._target = target

    def decide(self, now: float, current: str) -> Optional[str]:
        target, self._target = self._target, None
        if target is not None and target != current:
            return target
        return None
