"""The paper's trace theory, executable.

* :mod:`repro.traces.events` / :mod:`repro.traces.trace` — the §3 model.
* :mod:`repro.traces.properties` — Table 1 as predicates.
* :mod:`repro.traces.meta` — the six §5–§6 meta-property relations.
* :mod:`repro.traces.verify` — bounded-exhaustive + search checking
  (the Nuprl-proof substitute).
* :mod:`repro.traces.generators` — property-biased random executions.
* :mod:`repro.traces.recorder` — recording live app-level traces.
* :mod:`repro.traces.report` — Table 2 rendering and paper comparison.
"""

from .events import DeliverEvent, SendEvent, deliver, msg, send
from .generators import (
    make_messages,
    random_amoeba_execution,
    random_master_first_execution,
    random_reliable_execution,
    random_total_order_execution,
    random_trace,
    random_vs_execution,
)
from .meta import (
    ALL_META_PROPERTIES,
    Asynchrony,
    Composable,
    Delayable,
    Memoryless,
    MetaProperty,
    Safety,
    SendEnabled,
)
from .properties import (
    Amoeba,
    CausalOrder,
    Confidentiality,
    FifoOrder,
    Integrity,
    NoReplay,
    PrioritizedDelivery,
    Property,
    Reliability,
    TotalOrder,
    VirtualSynchrony,
)
from .recorder import TraceRecorder
from .render import render_trace
from .report import PAPER_TABLE_2, matrix_agreement, render_matrix
from .trace import Trace
from .verify import (
    Counterexample,
    MatrixCell,
    Verdict,
    check_composability,
    check_preservation,
    compute_matrix,
    enumerate_traces,
)

__all__ = [
    "DeliverEvent",
    "SendEvent",
    "deliver",
    "msg",
    "send",
    "make_messages",
    "random_amoeba_execution",
    "random_master_first_execution",
    "random_reliable_execution",
    "random_total_order_execution",
    "random_trace",
    "random_vs_execution",
    "ALL_META_PROPERTIES",
    "Asynchrony",
    "Composable",
    "Delayable",
    "Memoryless",
    "MetaProperty",
    "Safety",
    "SendEnabled",
    "Amoeba",
    "CausalOrder",
    "Confidentiality",
    "FifoOrder",
    "Integrity",
    "NoReplay",
    "PrioritizedDelivery",
    "Property",
    "Reliability",
    "TotalOrder",
    "VirtualSynchrony",
    "TraceRecorder",
    "render_trace",
    "PAPER_TABLE_2",
    "matrix_agreement",
    "render_matrix",
    "Trace",
    "Counterexample",
    "MatrixCell",
    "Verdict",
    "check_composability",
    "check_preservation",
    "compute_matrix",
    "enumerate_traces",
]
