"""Meta-properties: predicates on properties (§5–§6).

A property P is *preserved* by a relation R on traces when, whenever
``tr_above R tr_below`` and P holds of ``tr_below``, P also holds of
``tr_above`` (Equation 1).  Each meta-property here is such an R, encoded
as a generator of the ``tr_above`` traces one R-step away from a given
``tr_below``.  (The paper's relations are reflexive-transitive closures
of these steps; checking single steps over a closed universe of traces is
equivalent, because intermediate traces are themselves in the universe.)

The six relations:

========== ==================================================================
Safety      tr_above is a prefix of tr_below (§5.1)
Asynchrony  swap adjacent events of *different* processes (§5.2)
Delayable   swap an adjacent (Deliver at p, Send by p) pair so the Send
            happens first above (§5.3: sends are delayed on the way down,
            delivers on the way up)
SendEnabled tr_above appends new Send events to tr_below (§5.4)
Memoryless  tr_above erases all events of some messages (§6.1)
Composable  (binary) the concatenation of two message-disjoint P-traces
            must satisfy P (§6.2)
========== ==================================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..stack.message import Message
from .events import DeliverEvent, SendEvent
from .trace import Trace

__all__ = [
    "MetaProperty",
    "Safety",
    "Asynchrony",
    "Delayable",
    "SendEnabled",
    "Memoryless",
    "Composable",
    "ALL_META_PROPERTIES",
]


class MetaProperty(ABC):
    """One preservation relation R."""

    name: str = "meta"

    @abstractmethod
    def variants(self, trace: Trace) -> Iterator[Trace]:
        """All traces one R-step *above* ``trace``.

        For a property to satisfy this meta-property, P(trace) must imply
        P(v) for every yielded v (over the whole trace universe).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetaProperty {self.name}>"


class Safety(MetaProperty):
    """Prefix closure: the property survives chopping off any suffix."""

    name = "Safety"

    def variants(self, trace: Trace) -> Iterator[Trace]:
        for length in range(len(trace)):
            yield trace.prefix(length)


class Asynchrony(MetaProperty):
    """Swapping adjacent events belonging to different processes.

    The process of a Send event is its sender; of a Deliver event, the
    delivering process.
    """

    name = "Asynchrony"

    def variants(self, trace: Trace) -> Iterator[Trace]:
        for index in range(len(trace) - 1):
            a, b = trace[index], trace[index + 1]
            if _process_of(a) != _process_of(b):
                yield trace.swap(index)


class Delayable(MetaProperty):
    """Local send/deliver reordering from layer delay.

    In ``tr_below`` a Deliver at p is immediately followed by a Send by
    p; above the delaying layer the Send (which was submitted earlier and
    delayed on the way down) precedes the Deliver (delayed on the way
    up).  So the step swaps adjacent (Deliver@p, Send@p) into
    (Send@p, Deliver@p).
    """

    name = "Delayable"

    def variants(self, trace: Trace) -> Iterator[Trace]:
        for index in range(len(trace) - 1):
            a, b = trace[index], trace[index + 1]
            if (
                isinstance(a, DeliverEvent)
                and isinstance(b, SendEvent)
                and a.process == b.msg.sender
            ):
                yield trace.swap(index)


class SendEnabled(MetaProperty):
    """Appending new Send events.

    A protocol implementing a property for the layer above typically does
    not restrict when that layer sends.  The appended messages are new
    (fresh ids — a duplicate Send would not be a valid trace) but may
    reuse *bodies* already present, and may originate from any process in
    ``processes`` (defaults to processes appearing in the trace).
    """

    name = "Send Enabled"

    def __init__(self, processes: Optional[Sequence[int]] = None) -> None:
        self.processes = tuple(processes) if processes is not None else None

    def variants(self, trace: Trace) -> Iterator[Trace]:
        processes = self.processes
        if processes is None:
            processes = tuple(sorted(trace.processes())) or (0,)
        bodies = {None}
        for message in trace.messages().values():
            try:
                hash(message.body)
            except TypeError:
                continue
            bodies.add(message.body)
        # Fresh ids strictly above anything the trace references, so the
        # relation composes with itself and with erasures.
        existing = [seq for (__, seq) in trace.messages()]
        fresh_seq = max(10_000, max(existing, default=0) + 10_000)
        for process in processes:
            for body in sorted(bodies, key=repr):
                fresh = Message(
                    sender=process,
                    mid=(process, fresh_seq),
                    body=body,
                    body_size=1,
                )
                yield trace.append(SendEvent(fresh))
                fresh_seq += 1


class Memoryless(MetaProperty):
    """Erasing all events pertaining to some messages.

    Yields one variant per single message erased, plus (optionally) per
    pair — single erasures find every counterexample in practice, pairs
    guard against parity-style properties.
    """

    name = "Memoryless"

    def __init__(self, erase_pairs: bool = True) -> None:
        self.erase_pairs = erase_pairs

    def variants(self, trace: Trace) -> Iterator[Trace]:
        mids = sorted(trace.messages())
        for mid in mids:
            yield trace.without_messages([mid])
        if self.erase_pairs:
            for pair in combinations(mids, 2):
                yield trace.without_messages(pair)


class Composable(MetaProperty):
    """Concatenation of message-disjoint P-traces.

    This relation is binary, so it does not fit the unary ``variants``
    protocol; use :meth:`compose` with pairs of traces.  ``variants``
    yields nothing.
    """

    name = "Composable"

    def variants(self, trace: Trace) -> Iterator[Trace]:
        return iter(())

    @staticmethod
    def composable_pair(tr1: Trace, tr2: Trace) -> bool:
        """True if the two traces share no messages (so R applies)."""
        return not tr1.shares_messages_with(tr2)

    @staticmethod
    def compose(tr1: Trace, tr2: Trace) -> Trace:
        return tr1.concat(tr2)


def _process_of(event) -> int:
    if isinstance(event, SendEvent):
        return event.msg.sender
    return event.process


#: The paper's six meta-properties, in Table 2 column order.
ALL_META_PROPERTIES: Tuple[MetaProperty, ...] = (
    Safety(),
    Asynchrony(),
    SendEnabled(),
    Delayable(),
    Memoryless(),
    Composable(),
)
