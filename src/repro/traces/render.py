"""ASCII space-time diagrams of traces.

A debugging and teaching aid: processes as rows, events left to right in
trace order.  ``S3`` marks a Send of message #3, ``D3`` its delivery,
``V2`` the delivery of view 2; the legend maps the per-diagram message
numbers back to real ids.

Example output for a two-process exchange::

    p0 | S0 D0 .  .  D1
    p1 | .  .  D0 S1 D1

    #0 = (0, 0) from 0 body='hello'
    #1 = (1, 0) from 1 body='reply'
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..stack.membership import View
from ..stack.message import MessageId
from .events import DeliverEvent, SendEvent
from .trace import Trace

__all__ = ["render_trace"]


def render_trace(
    trace: Trace,
    max_events: int = 60,
    processes: Optional[Sequence[int]] = None,
    legend: bool = True,
) -> str:
    """Render ``trace`` as an ASCII space-time diagram.

    Shows at most ``max_events`` events (noting elision); ``processes``
    restricts and orders the rows (defaults to every process observed).
    """
    events = list(trace.events[:max_events])
    elided = len(trace) - len(events)
    procs = (
        list(processes)
        if processes is not None
        else sorted(trace.processes())
    )
    numbering: Dict[MessageId, int] = {}
    for event in events:
        numbering.setdefault(event.mid, len(numbering))

    def label(event) -> str:
        number = numbering[event.mid]
        if isinstance(event, SendEvent):
            return f"S{number}"
        if isinstance(event.msg.body, View):
            return f"V{event.msg.body.view_id}"
        return f"D{number}"

    width = max((len(label(e)) for e in events), default=1) + 1
    name_width = max((len(f"p{p}") for p in procs), default=2)
    lines: List[str] = []
    for proc in procs:
        cells = []
        for event in events:
            at = (
                event.msg.sender
                if isinstance(event, SendEvent)
                else event.process
            )
            cells.append(label(event).ljust(width) if at == proc else ".".ljust(width))
        lines.append(f"p{proc}".ljust(name_width) + " | " + "".join(cells).rstrip())
    if elided > 0:
        lines.append(f"... {elided} more events elided ...")
    if legend and numbering:
        lines.append("")
        for mid, number in sorted(numbering.items(), key=lambda kv: kv[1]):
            message = trace.messages()[mid]
            body = message.body
            body_repr = f"view {body.view_id}" if isinstance(body, View) else repr(body)
            lines.append(f"#{number} = {mid} from {message.sender} body={body_repr}")
    return "\n".join(lines)
