"""Traces: ordered event sequences (§3).

"A trace is an ordered sequence of Send and Deliver events such that
there are no duplicate Send events."  Note what validity does *not*
require: a Deliver without a Send is a legal trace (it models a spurious
or forged delivery — the thing Integrity forbids), and the same message
may be delivered repeatedly to one process (what No Replay forbids).
Properties police those behaviours; the trace model permits them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import TraceError
from ..stack.message import Message, MessageId
from .events import DeliverEvent, Event, SendEvent

__all__ = ["Trace"]


class Trace:
    """An immutable, validity-checked event sequence."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event] = ()) -> None:
        event_tuple = tuple(events)
        seen_sends: Set[MessageId] = set()
        for event in event_tuple:
            if isinstance(event, SendEvent):
                if event.mid in seen_sends:
                    raise TraceError(f"duplicate Send event for {event.mid}")
                seen_sends.add(event.mid)
            elif not isinstance(event, DeliverEvent):
                raise TraceError(f"not a trace event: {event!r}")
        self.events: Tuple[Event, ...] = event_tuple

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, index: int) -> Event:
        return self.events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:
        return f"Trace[{' '.join(map(repr, self.events))}]"

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def sends(self) -> List[SendEvent]:
        """All Send events, in trace order."""
        return [e for e in self.events if isinstance(e, SendEvent)]

    def delivers(self) -> List[DeliverEvent]:
        """All Deliver events, in trace order."""
        return [e for e in self.events if isinstance(e, DeliverEvent)]

    def delivers_at(self, process: int) -> List[DeliverEvent]:
        """Deliver events at one process, in trace order."""
        return [
            e
            for e in self.events
            if isinstance(e, DeliverEvent) and e.process == process
        ]

    def processes(self) -> Set[int]:
        """Every process appearing in the trace (senders and receivers)."""
        result: Set[int] = set()
        for event in self.events:
            if isinstance(event, SendEvent):
                result.add(event.msg.sender)
            else:
                result.add(event.process)
        return result

    def messages(self) -> Dict[MessageId, Message]:
        """All messages referenced, keyed by id."""
        result: Dict[MessageId, Message] = {}
        for event in self.events:
            result.setdefault(event.mid, event.msg)
        return result

    def sent_mids(self) -> Set[MessageId]:
        """Ids of all messages with a Send event in the trace."""
        return {e.mid for e in self.events if isinstance(e, SendEvent)}

    # ------------------------------------------------------------------
    # Transformations (all return new Traces)
    # ------------------------------------------------------------------
    def prefix(self, length: int) -> "Trace":
        """The first ``length`` events as a new trace."""
        if not 0 <= length <= len(self.events):
            raise TraceError(f"prefix length {length} out of range")
        return Trace(self.events[:length])

    def append(self, *events: Event) -> "Trace":
        """A new trace with ``events`` appended (validity-checked)."""
        return Trace(self.events + tuple(events))

    def concat(self, other: "Trace") -> "Trace":
        """This trace followed by ``other``, as a new trace."""
        return Trace(self.events + other.events)

    def swap(self, index: int) -> "Trace":
        """Swap the events at positions index and index+1."""
        if not 0 <= index < len(self.events) - 1:
            raise TraceError(f"swap index {index} out of range")
        events = list(self.events)
        events[index], events[index + 1] = events[index + 1], events[index]
        return Trace(events)

    def without_messages(self, mids: Iterable[MessageId]) -> "Trace":
        """Erase all events pertaining to the given messages (§6.1)."""
        gone = set(mids)
        return Trace(e for e in self.events if e.mid not in gone)

    def shares_messages_with(self, other: "Trace") -> bool:
        """True if any message id appears in both traces."""
        mine = {e.mid for e in self.events}
        theirs = {e.mid for e in other.events}
        return bool(mine & theirs)
