"""Rendering the Table 2 reproduction.

Produces a plain-text matrix in the paper's layout (properties as rows,
meta-properties as columns) with a three-way annotation per cell:

* computed verdict (``yes`` / ``NO``),
* the paper's claim where its prose pins one,
* agreement marker when both exist.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .verify import MatrixCell

__all__ = ["PAPER_TABLE_2", "render_matrix", "matrix_agreement"]

#: Cells of Table 2 that the paper's prose pins explicitly, as
#: (property, meta-property) -> claimed verdict.  §6.3 puts Total Order,
#: Integrity, and Confidentiality in the "all six" class; §5.1 says
#: Reliability is not safe; §5.2 says Prioritized Delivery is not
#: asynchronous; §5.3/§5.4 say Amoeba is neither delayable nor send
#: enabled; §6.1 says Virtual Synchrony is not memoryless and No Replay
#: is memoryless; §6.2 says No Replay is not composable.
PAPER_TABLE_2: Dict[Tuple[str, str], bool] = {}

for _prop in ("Total Order", "Integrity", "Confidentiality"):
    for _meta in (
        "Safety",
        "Asynchrony",
        "Send Enabled",
        "Delayable",
        "Memoryless",
        "Composable",
    ):
        PAPER_TABLE_2[(_prop, _meta)] = True

PAPER_TABLE_2[("Reliability", "Safety")] = False
PAPER_TABLE_2[("Prioritized Delivery", "Asynchrony")] = False
PAPER_TABLE_2[("Amoeba", "Delayable")] = False
PAPER_TABLE_2[("Amoeba", "Send Enabled")] = False
PAPER_TABLE_2[("Virtual Synchrony", "Memoryless")] = False
PAPER_TABLE_2[("No Replay", "Memoryless")] = True
PAPER_TABLE_2[("No Replay", "Composable")] = False


def render_matrix(
    cells: Sequence[MatrixCell],
    title: str = "Table 2: property x meta-property matrix",
) -> str:
    """Render computed cells next to the paper's pinned claims.

    Cell format: ``yes``/``NO `` is our computed verdict; a trailing
    ``*`` marks cells the paper pins, ``!`` marks disagreement with a
    pinned cell.
    """
    properties: List[str] = []
    metas: List[str] = []
    for cell in cells:
        if cell.property_name not in properties:
            properties.append(cell.property_name)
        if cell.meta_name not in metas:
            metas.append(cell.meta_name)
    lookup = {(c.property_name, c.meta_name): c for c in cells}

    col_width = max(len(m) for m in metas) + 2
    row_width = max(len(p) for p in properties) + 2
    lines = [title, ""]
    header = " " * row_width + "".join(m.ljust(col_width) for m in metas)
    lines.append(header)
    lines.append("-" * len(header))
    for prop in properties:
        row = prop.ljust(row_width)
        for meta in metas:
            cell = lookup.get((prop, meta))
            if cell is None:
                row += "?".ljust(col_width)
                continue
            mark = "yes" if cell.verdict.preserved else "NO"
            if cell.paper_says is not None:
                mark += "*" if cell.agrees_with_paper else "!"
            row += mark.ljust(col_width)
        lines.append(row)
    lines.append("")
    lines.append("legend: yes = preserved (no counterexample in checked universe)")
    lines.append("        NO  = refuted (counterexample found)")
    lines.append("        *   = paper pins this cell and we agree")
    lines.append("        !   = paper pins this cell and we DISAGREE")
    return "\n".join(lines)


def matrix_agreement(cells: Sequence[MatrixCell]) -> Tuple[int, int]:
    """(agreeing, total) over the cells the paper pins."""
    pinned = [c for c in cells if c.paper_says is not None]
    agreeing = sum(1 for c in pinned if c.agrees_with_paper)
    return agreeing, len(pinned)
