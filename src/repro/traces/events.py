"""Trace events: the paper's §3 system model.

"We will consider two types of events.  A Send(m) event models that
process m.sender has multicast a message m.  A Deliver(p : m) event
models that process p has delivered message m."

Events reference :class:`~repro.stack.message.Message` objects; message
identity is the ``mid`` (so the same message delivered at two processes
appears as two Deliver events of one message), while *bodies* are
separate — two distinct messages may carry equal bodies, which is what
the No Replay composability counterexample (§6.2) turns on.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

from ..stack.message import Message, MessageId

__all__ = ["SendEvent", "DeliverEvent", "Event", "send", "deliver", "msg"]


class SendEvent:
    """Process ``msg.sender`` multicast ``msg``."""

    __slots__ = ("msg",)

    def __init__(self, msg: Message) -> None:
        self.msg = msg

    @property
    def process(self) -> int:
        """The process at which this event occurred (the sender)."""
        return self.msg.sender

    @property
    def mid(self) -> MessageId:
        return self.msg.mid

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SendEvent):
            return NotImplemented
        return self.msg.mid == other.msg.mid

    def __hash__(self) -> int:
        return hash(("S", self.msg.mid))

    def __repr__(self) -> str:
        return f"S({self.msg.mid}@{self.msg.sender})"


class DeliverEvent:
    """Process ``process`` delivered ``msg``."""

    __slots__ = ("process", "msg")

    def __init__(self, process: int, msg: Message) -> None:
        self.process = process
        self.msg = msg

    @property
    def mid(self) -> MessageId:
        return self.msg.mid

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeliverEvent):
            return NotImplemented
        return self.process == other.process and self.msg.mid == other.msg.mid

    def __hash__(self) -> int:
        return hash(("D", self.process, self.msg.mid))

    def __repr__(self) -> str:
        return f"D({self.process}:{self.msg.mid})"


Event = Union[SendEvent, DeliverEvent]


# ----------------------------------------------------------------------
# Terse constructors for tests and examples
# ----------------------------------------------------------------------
def msg(
    sender: int, seq: int, body: Any = None, dest: Optional[Tuple[int, ...]] = None
) -> Message:
    """Make a lightweight message for trace construction."""
    return Message(sender=sender, mid=(sender, seq), body=body, body_size=1, dest=dest)


def send(message: Message) -> SendEvent:
    """Shorthand for :class:`SendEvent`."""
    return SendEvent(message)


def deliver(process: int, message: Message) -> DeliverEvent:
    """Shorthand for :class:`DeliverEvent`."""
    return DeliverEvent(process, message)
