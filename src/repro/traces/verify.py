"""Meta-property verification: the Nuprl-proof substitute.

The paper proves in Nuprl that its six meta-properties imply preservation
under the switching protocol [3].  We cannot re-run a theorem prover, but
we can *check* every Table 2 cell mechanically, two ways:

* **Bounded exhaustive model checking** — enumerate every valid trace up
  to a size bound over a small universe of processes/messages, and for
  each trace satisfying the property, check that every R-variant still
  satisfies it.  Any ✗ cell's counterexample that fits the bound is
  found; ✓ cells are verified exhaustively *within the bound*.
* **Randomized search** (see :mod:`repro.traces.generators` and the
  hypothesis tests) — larger universes, sampled.

A verdict is therefore either "refuted, here is the counterexample" or
"no counterexample within the checked universe".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import VerificationError
from ..stack.message import Message
from .events import DeliverEvent, Event, SendEvent
from .meta import Composable, MetaProperty
from .properties import Property
from .trace import Trace

__all__ = [
    "Counterexample",
    "Verdict",
    "enumerate_traces",
    "check_preservation",
    "check_composability",
    "composite_variants",
    "shrink_counterexample",
    "MatrixCell",
    "compute_matrix",
]


@dataclass(frozen=True)
class Counterexample:
    """A P-trace below and an R-variant above where P fails."""

    below: Trace
    above: Trace
    explanation: str
    second_below: Optional[Trace] = None  # for Composable: the other half


@dataclass(frozen=True)
class Verdict:
    """Outcome of checking one (property, meta-property) cell."""

    preserved: bool
    counterexample: Optional[Counterexample]
    traces_checked: int
    variants_checked: int

    @property
    def symbol(self) -> str:
        return "yes" if self.preserved else "NO"


def enumerate_traces(
    messages: Sequence[Message],
    processes: Sequence[int],
    max_events: int,
    require_send_before_deliver: bool = False,
) -> Iterator[Trace]:
    """All valid traces up to ``max_events`` over the given universe.

    The event alphabet is Send(m) for each message plus Deliver(p, m) for
    each process/message pair.  Validity (no duplicate Sends) is enforced
    during the depth-first walk.  ``require_send_before_deliver``
    restricts to causally well-formed traces (used when a property's
    interesting behaviour doesn't need spurious deliveries — it shrinks
    the universe a lot).

    The empty trace is yielded first.
    """
    if max_events < 0:
        raise VerificationError("max_events must be non-negative")
    sends: List[Event] = [SendEvent(m) for m in messages]
    delivers: List[Event] = [
        DeliverEvent(p, m) for p in processes for m in messages
    ]
    alphabet: List[Event] = sends + delivers

    def walk(prefix: List[Event], sent: frozenset) -> Iterator[Trace]:
        yield Trace(prefix)
        if len(prefix) >= max_events:
            return
        for event in alphabet:
            if isinstance(event, SendEvent):
                if event.mid in sent:
                    continue
                prefix.append(event)
                yield from walk(prefix, sent | {event.mid})
                prefix.pop()
            else:
                if require_send_before_deliver and event.mid not in sent:
                    continue
                prefix.append(event)
                yield from walk(prefix, sent)
                prefix.pop()

    return walk([], frozenset())


def check_preservation(
    prop: Property,
    meta: MetaProperty,
    traces: Iterable[Trace],
    stop_at_first: bool = True,
) -> Verdict:
    """Check Equation (1) for a unary meta-property over ``traces``."""
    if isinstance(meta, Composable):
        raise VerificationError(
            "Composable is binary; use check_composability"
        )
    traces_checked = 0
    variants_checked = 0
    counterexample: Optional[Counterexample] = None
    for below in traces:
        if not prop.holds(below):
            continue
        traces_checked += 1
        for above in meta.variants(below):
            variants_checked += 1
            explanation = prop.explain(above)
            if explanation is not None:
                counterexample = Counterexample(below, above, explanation)
                if stop_at_first:
                    return Verdict(False, counterexample, traces_checked, variants_checked)
    return Verdict(
        counterexample is None, counterexample, traces_checked, variants_checked
    )


def check_composability(
    prop: Property,
    traces: Sequence[Trace],
    other_traces: Optional[Sequence[Trace]] = None,
    stop_at_first: bool = True,
    max_pairs: int = 2_000_000,
) -> Verdict:
    """Check the binary Composable relation over trace pairs.

    ``other_traces`` defaults to ``traces``; pairs sharing messages are
    skipped (the relation does not apply to them).  The pair space is
    quadratic, so it is capped at ``max_pairs`` checked pairs — for a
    "preserved" verdict this bounds the checked universe (which the
    verdict reports via ``variants_checked``); refutations are unaffected
    in practice because counterexamples, when they exist, are dense.
    """
    seconds = other_traces if other_traces is not None else traces
    good_first = [t for t in traces if prop.holds(t)]
    good_second = [t for t in seconds if prop.holds(t)]
    traces_checked = 0
    variants_checked = 0
    counterexample: Optional[Counterexample] = None
    for tr1 in good_first:
        traces_checked += 1
        if variants_checked >= max_pairs:
            break
        for tr2 in good_second:
            if variants_checked >= max_pairs:
                break
            if not Composable.composable_pair(tr1, tr2):
                continue
            variants_checked += 1
            combined = Composable.compose(tr1, tr2)
            explanation = prop.explain(combined)
            if explanation is not None:
                counterexample = Counterexample(
                    tr1, combined, explanation, second_below=tr2
                )
                if stop_at_first:
                    return Verdict(
                        False, counterexample, traces_checked, variants_checked
                    )
    return Verdict(
        counterexample is None, counterexample, traces_checked, variants_checked
    )


def shrink_counterexample(
    prop: Property,
    meta: MetaProperty,
    counterexample: Counterexample,
    max_rounds: int = 10,
) -> Counterexample:
    """Greedy event-deletion shrinking of a refutation witness.

    Repeatedly tries to drop single events from the *below* trace while
    it (a) still satisfies the property and (b) still has some R-variant
    violating it.  The exhaustive enumerator finds witnesses in DFS
    order, which is not length order; shrinking makes reported
    counterexamples human-readable.  Unary relations only.
    """
    if isinstance(meta, Composable):
        raise VerificationError("shrinking is for unary relations")
    best = counterexample
    for __ in range(max_rounds):
        improved = False
        events = list(best.below.events)
        for index in range(len(events)):
            candidate_events = events[:index] + events[index + 1 :]
            try:
                candidate = Trace(candidate_events)
            except Exception:  # dropping a Send may orphan nothing; keep safe
                continue
            if not prop.holds(candidate):
                continue
            for above in meta.variants(candidate):
                explanation = prop.explain(above)
                if explanation is not None:
                    best = Counterexample(candidate, above, explanation)
                    improved = True
                    break
            if improved:
                break
        if not improved:
            return best
    return best


def composite_variants(
    trace: Trace,
    metas: Sequence[MetaProperty],
    rng,
    steps: int,
    samples: int,
) -> Iterator[Trace]:
    """Random walks through the *composition* of several relations.

    The paper's theorem (§6.3) is about a protocol — the SP — whose trace
    transformations compose prefixing, swapping, appending, and erasure
    arbitrarily.  A property satisfying each relation individually
    satisfies their composition too (each step preserves it), but testing
    the composite directly guards our encodings against subtle
    non-closure bugs.  Yields up to ``samples`` traces, each reached by
    up to ``steps`` random single R-steps from ``trace``.
    """
    unary = [m for m in metas if not isinstance(m, Composable)]
    for __ in range(samples):
        current = trace
        for __step in range(steps):
            choices = []
            for meta in unary:
                choices.extend(meta.variants(current))
            if not choices:
                break
            current = rng.choice(choices)
        yield current


@dataclass
class MatrixCell:
    """One cell of the Table 2 reproduction."""

    property_name: str
    meta_name: str
    verdict: Verdict
    paper_says: Optional[bool] = None  # None when the paper doesn't pin it

    @property
    def agrees_with_paper(self) -> Optional[bool]:
        if self.paper_says is None:
            return None
        return self.paper_says == self.verdict.preserved


def compute_matrix(
    properties: Sequence[Tuple[Property, Iterable[Trace]]],
    metas: Sequence[MetaProperty],
    paper_table: Optional[Dict[Tuple[str, str], bool]] = None,
) -> List[MatrixCell]:
    """Compute the full property × meta-property matrix.

    Each property comes with its own trace universe (an iterable that can
    be re-created per meta-property — pass a list).  ``paper_table`` maps
    (property name, meta name) to the paper's claimed verdict for
    comparison.
    """
    cells: List[MatrixCell] = []
    for prop, universe in properties:
        universe_list = list(universe)
        for meta in metas:
            if isinstance(meta, Composable):
                verdict = check_composability(prop, universe_list)
            else:
                verdict = check_preservation(prop, meta, universe_list)
            expected = None
            if paper_table is not None:
                expected = paper_table.get((prop.name, meta.name))
            cells.append(MatrixCell(prop.name, meta.name, verdict, expected))
    return cells
