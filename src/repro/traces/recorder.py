"""Recording traces from live executions.

The recorder observes the application boundary — Send when the
application casts, Deliver when the stack hands a message up — which is
exactly where the paper's preservation theorems apply ("we focus on
properties to the layer above").  Events from all processes are merged in
simulated-time order (callbacks fire inside simulator events, so append
order *is* chronological order).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import TraceError
from ..runtime.api import Clock
from ..stack.message import Message
from .events import DeliverEvent, Event, SendEvent
from .trace import Trace

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Collects a global application-level trace from a group of stacks."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._timed: List[Tuple[float, Event]] = []
        self._frozen: Optional[Trace] = None

    def attach(self, stack) -> None:
        """Hook a stack's Send/Deliver streams (any stack type with
        ``on_send`` / ``on_deliver`` / ``rank``)."""
        rank = stack.rank
        stack.on_send(self._record_send)
        stack.on_deliver(lambda msg, rank=rank: self._record_deliver(rank, msg))

    def attach_all(self, stacks) -> None:
        """Attach every stack of a rank -> stack mapping."""
        for stack in stacks.values():
            self.attach(stack)

    def _record_send(self, msg: Message) -> None:
        if self._frozen is not None:
            raise TraceError("recorder is frozen; cannot record new events")
        self._timed.append((self.clock.now, SendEvent(msg)))

    def _record_deliver(self, rank: int, msg: Message) -> None:
        if self._frozen is not None:
            raise TraceError("recorder is frozen; cannot record new events")
        self._timed.append((self.clock.now, DeliverEvent(rank, msg)))

    def record_deliver(self, rank: int, msg: Message) -> None:
        """Manual injection (for stacks that bypass on_deliver hooks)."""
        self._record_deliver(rank, msg)

    def freeze(self) -> Trace:
        """Seal the recorder and return the final trace.

        After freezing, any further Send/Deliver event raises
        :class:`TraceError` — late callbacks cannot silently mutate a
        trace that property checks have already been run against.
        Idempotent: repeated calls return the same :class:`Trace` object.
        """
        if self._frozen is None:
            self._frozen = self.trace()
        return self._frozen

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has sealed this recorder."""
        return self._frozen is not None

    def trace(self) -> Trace:
        """The global trace recorded so far."""
        if self._frozen is not None:
            return self._frozen
        return Trace(event for __, event in self._timed)

    def timed_events(self) -> List[Tuple[float, Event]]:
        """The (time, event) pairs recorded so far (a copy)."""
        return list(self._timed)

    def event_count(self) -> int:
        """Number of events recorded so far."""
        return len(self._timed)

    def clear(self) -> None:
        """Discard everything recorded so far (and unfreeze)."""
        self._timed.clear()
        self._frozen = None
