"""Recording traces from live executions.

The recorder observes the application boundary — Send when the
application casts, Deliver when the stack hands a message up — which is
exactly where the paper's preservation theorems apply ("we focus on
properties to the layer above").  Events from all processes are merged in
simulated-time order (callbacks fire inside simulator events, so append
order *is* chronological order).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..runtime.api import Clock
from ..stack.message import Message
from .events import DeliverEvent, Event, SendEvent
from .trace import Trace

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Collects a global application-level trace from a group of stacks."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._timed: List[Tuple[float, Event]] = []
        self._frozen: Optional[Trace] = None

    def attach(self, stack) -> None:
        """Hook a stack's Send/Deliver streams (any stack type with
        ``on_send`` / ``on_deliver`` / ``rank``)."""
        rank = stack.rank
        stack.on_send(self._record_send)
        stack.on_deliver(lambda msg, rank=rank: self._record_deliver(rank, msg))

    def attach_all(self, stacks) -> None:
        """Attach every stack of a rank -> stack mapping."""
        for stack in stacks.values():
            self.attach(stack)

    def _record_send(self, msg: Message) -> None:
        self._timed.append((self.clock.now, SendEvent(msg)))

    def _record_deliver(self, rank: int, msg: Message) -> None:
        self._timed.append((self.clock.now, DeliverEvent(rank, msg)))

    def record_deliver(self, rank: int, msg: Message) -> None:
        """Manual injection (for stacks that bypass on_deliver hooks)."""
        self._record_deliver(rank, msg)

    def trace(self) -> Trace:
        """The global trace recorded so far."""
        return Trace(event for __, event in self._timed)

    def timed_events(self) -> List[Tuple[float, Event]]:
        """The (time, event) pairs recorded so far (a copy)."""
        return list(self._timed)

    def event_count(self) -> int:
        """Number of events recorded so far."""
        return len(self._timed)

    def clear(self) -> None:
        """Discard everything recorded so far."""
        self._timed.clear()
