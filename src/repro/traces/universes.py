"""Canonical trace universes for the Table 2 reproduction.

Each property is checked over a small universe tailored to exercise its
interesting behaviours (untrusted senders for Integrity, shared bodies
for No Replay, view messages for Virtual Synchrony, ...).  Tailoring is
sound: a counterexample in any universe refutes preservation, and the
"preserved" verdicts are explicitly scoped to the universe checked (the
randomized hypothesis tests then widen the net).

Two presets: ``fast`` (unit tests, a couple of seconds) and ``thorough``
(the benchmark, exhaustive to one event deeper).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import VerificationError
from ..stack.membership import View
from ..stack.message import Message
from .properties import (
    Amoeba,
    Confidentiality,
    Integrity,
    NoReplay,
    PrioritizedDelivery,
    Property,
    Reliability,
    TotalOrder,
    VirtualSynchrony,
)
from .trace import Trace
from .verify import enumerate_traces

__all__ = ["table2_universes", "DEPTHS"]

DEPTHS: Dict[str, int] = {"fast": 0, "thorough": 1}

_PROCS = (0, 1)


def _messages(
    count: int,
    senders: Sequence[int] = (0, 1),
    shared_bodies: bool = False,
) -> List[Message]:
    out = []
    for i in range(count):
        sender = senders[i % len(senders)]
        body = f"b{i % 2}" if shared_bodies else f"b{i}"
        out.append(Message(sender=sender, mid=(sender, i), body=body, body_size=1))
    return out


def table2_universes(depth: str = "fast") -> List[Tuple[Property, List[Trace]]]:
    """(property, exhaustive trace universe) pairs, Table 2 row order.

    ``depth``: "fast" or "thorough" — thorough enumerates one event
    deeper on the cheap universes.
    """
    if depth not in DEPTHS:
        raise VerificationError(f"unknown depth {depth!r}; use {sorted(DEPTHS)}")
    extra = DEPTHS[depth]

    def universe(messages: Iterable[Message], max_events: int) -> List[Trace]:
        # "thorough" deepens only the smaller universes; the 5-event ones
        # are already ~6k traces and another level would put the
        # quadratic Composable pair space out of reach.
        bump = extra if max_events < 5 else 0
        return list(enumerate_traces(list(messages), _PROCS, max_events + bump))

    # Virtual Synchrony needs view messages in its universe: a singleton
    # view and a grown view, so that erasing the second strands a sender.
    view1 = Message(sender=0, mid=(0, -1), body=View(1, (0,)), body_size=1)
    view2 = Message(sender=0, mid=(0, -2), body=View(2, (0, 1)), body_size=1)
    vs_data = Message(sender=1, mid=(1, 0), body="d", body_size=1)

    return [
        (TotalOrder(), universe(_messages(2), 5)),
        (Integrity(trusted={0}), universe(_messages(2), 4)),
        (Confidentiality(trusted={0}), universe(_messages(2), 4)),
        (Reliability(receivers=set(_PROCS)), universe(_messages(2), 5)),
        (PrioritizedDelivery(master=0), universe(_messages(2), 4)),
        # Two messages from one sender so the send-while-awaiting pattern
        # fits, plus one from the other sender for asynchrony coverage.
        (Amoeba(), universe(_messages(3, senders=(0, 0, 1)), 4)),
        (VirtualSynchrony(), universe([view1, view2, vs_data], 4)),
        (NoReplay(), universe(_messages(3, shared_bodies=True), 4)),
    ]
