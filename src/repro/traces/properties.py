"""Communication properties as trace predicates (Table 1).

"A property is a predicate on traces."  Each class here formalizes one
row of Table 1; every formalization choice that the paper's one-line
descriptions leave open is documented on the class, because the Table 2
meta-property verdicts can hinge on them (EXPERIMENTS.md discusses the
cases where they do).

Each property implements :meth:`Property.explain`, returning ``None``
when the property holds and a human-readable account of the first
violation otherwise; :meth:`Property.holds` derives from it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..protocols.noreplay import body_digest
from ..stack.membership import View
from ..stack.message import MessageId
from .events import DeliverEvent, SendEvent
from .trace import Trace

__all__ = [
    "Property",
    "Reliability",
    "TotalOrder",
    "FifoOrder",
    "CausalOrder",
    "Integrity",
    "Confidentiality",
    "NoReplay",
    "PrioritizedDelivery",
    "Amoeba",
    "VirtualSynchrony",
]


class Property(ABC):
    """A predicate on traces."""

    name: str = "property"

    @abstractmethod
    def explain(self, trace: Trace) -> Optional[str]:
        """None if the property holds of ``trace``; else a violation note."""

    def holds(self, trace: Trace) -> bool:
        """True when the property holds of ``trace``."""
        return self.explain(trace) is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Reliability(Property):
    """Every message that is sent is delivered to all receivers.

    ``receivers`` fixes who counts as "all receivers" (the group).  This
    is the paper's example of a non-safety property (§5.1): chopping off
    a suffix can orphan a Send.
    """

    name = "Reliability"

    def __init__(self, receivers: Iterable[int]) -> None:
        self.receivers = frozenset(receivers)

    def explain(self, trace: Trace) -> Optional[str]:
        delivered: Dict[MessageId, Set[int]] = {}
        for event in trace.delivers():
            delivered.setdefault(event.mid, set()).add(event.process)
        for event in trace.sends():
            missing = self.receivers - delivered.get(event.mid, set())
            if missing:
                return f"message {event.mid} never delivered at {sorted(missing)}"
        return None


class TotalOrder(Property):
    """Processes that deliver the same two messages deliver them in the
    same order.

    Repeated deliveries of a message at one process use the *first*
    delivery's position (replays are No Replay's problem, not ours).
    """

    name = "Total Order"

    def explain(self, trace: Trace) -> Optional[str]:
        # first-delivery index of each message per process
        position: Dict[int, Dict[MessageId, int]] = {}
        order: Dict[int, List[MessageId]] = {}
        for event in trace.delivers():
            per_proc = position.setdefault(event.process, {})
            if event.mid not in per_proc:
                per_proc[event.mid] = len(per_proc)
                order.setdefault(event.process, []).append(event.mid)
        processes = sorted(position)
        for i, p in enumerate(processes):
            for q in processes[i + 1 :]:
                common = set(position[p]) & set(position[q])
                p_order = [m for m in order[p] if m in common]
                q_order = [m for m in order[q] if m in common]
                if p_order != q_order:
                    for a, b in zip(p_order, q_order):
                        if a != b:
                            return (
                                f"processes {p} and {q} disagree: "
                                f"{p} delivered {a} where {q} delivered {b}"
                            )
        return None


class FifoOrder(Property):
    """Messages from one sender are delivered in the order they were sent.

    Only constrains messages whose Send events appear in the trace (a
    Deliver without a Send has no defined send position).
    """

    name = "FIFO Order"

    def explain(self, trace: Trace) -> Optional[str]:
        send_pos: Dict[MessageId, int] = {}
        for index, event in enumerate(trace):
            if isinstance(event, SendEvent):
                send_pos[event.mid] = index
        last_seen: Dict[Tuple[int, int], Tuple[int, MessageId]] = {}
        for event in trace.delivers():
            if event.mid not in send_pos:
                continue
            key = (event.process, event.msg.sender)
            pos = send_pos[event.mid]
            if key in last_seen and pos < last_seen[key][0]:
                return (
                    f"process {event.process} delivered {event.mid} after "
                    f"{last_seen[key][1]}, reversing sender "
                    f"{event.msg.sender}'s send order"
                )
            if key not in last_seen or pos > last_seen[key][0]:
                last_seen[key] = (pos, event.mid)
        return None


class CausalOrder(Property):
    """Messages are delivered respecting the causal order of their sends.

    Not a Table 1 row — an extension used to demonstrate the paper's
    recipe on a new property.  ``m1 happens-before m2`` when m2's sender
    had sent m1 earlier, or had delivered m1 before sending m2
    (transitively closed).  Processes delivering both must deliver m1
    first.  Repeated deliveries use the first occurrence.
    """

    name = "Causal Order"

    def explain(self, trace: Trace) -> Optional[str]:
        # Direct happens-before edges from per-process histories.
        edges: Dict[MessageId, Set[MessageId]] = {}
        history: Dict[int, List[MessageId]] = {}  # p -> sent or delivered
        for event in trace:
            if isinstance(event, SendEvent):
                process = event.msg.sender
                known = history.setdefault(process, [])
                edges[event.mid] = set(known)
                known.append(event.mid)
            else:
                history.setdefault(event.process, []).append(event.mid)
        # Transitive closure (message counts in analyses are small).
        closed: Dict[MessageId, Set[MessageId]] = {}

        def ancestors(mid: MessageId) -> Set[MessageId]:
            if mid in closed:
                return closed[mid]
            closed[mid] = set()  # cycle guard (cycles cannot occur)
            result: Set[MessageId] = set()
            for parent in edges.get(mid, ()):
                result.add(parent)
                result |= ancestors(parent)
            closed[mid] = result
            return result

        # Check per-process first-delivery positions.
        for process in sorted(trace.processes()):
            position: Dict[MessageId, int] = {}
            for event in trace.delivers_at(process):
                if event.mid not in position:
                    position[event.mid] = len(position)
            for mid, pos in position.items():
                for earlier in ancestors(mid):
                    if earlier in position and position[earlier] > pos:
                        return (
                            f"process {process} delivered {mid} before its "
                            f"causal predecessor {earlier}"
                        )
        return None


class Integrity(Property):
    """Messages cannot be forged; they are sent by trusted processes.

    Formalized on the delivery side: every delivered message's sender is
    a trusted process.  (A forgery appears in a trace as the delivery of
    a message attributed to an untrusted origin; whether a matching Send
    exists is deliberately not referenced, keeping the property local to
    each process — that is what makes it Asynchronous.)
    """

    name = "Integrity"

    def __init__(self, trusted: Iterable[int]) -> None:
        self.trusted = frozenset(trusted)

    def explain(self, trace: Trace) -> Optional[str]:
        for event in trace.delivers():
            if event.msg.sender not in self.trusted:
                return (
                    f"process {event.process} delivered {event.mid} from "
                    f"untrusted sender {event.msg.sender}"
                )
        return None


class Confidentiality(Property):
    """Non-trusted processes cannot see messages from trusted processes."""

    name = "Confidentiality"

    def __init__(self, trusted: Iterable[int]) -> None:
        self.trusted = frozenset(trusted)

    def explain(self, trace: Trace) -> Optional[str]:
        for event in trace.delivers():
            if event.msg.sender in self.trusted and event.process not in self.trusted:
                return (
                    f"untrusted process {event.process} saw {event.mid} from "
                    f"trusted sender {event.msg.sender}"
                )
        return None


class NoReplay(Property):
    """A message *body* can be delivered at most once to a process.

    Bodies, not message ids: §6.2's composability counterexample is two
    distinct messages carrying the same body.
    """

    name = "No Replay"

    def explain(self, trace: Trace) -> Optional[str]:
        seen: Set[Tuple[int, object]] = set()
        for event in trace.delivers():
            key = (event.process, body_digest(event.msg.body))
            if key in seen:
                return (
                    f"process {event.process} delivered body "
                    f"{event.msg.body!r} twice"
                )
            seen.add(key)
        return None


class PrioritizedDelivery(Property):
    """The master process always delivers a message before anyone else.

    A *global*, real-time-order property across processes — the paper's
    example of a non-Asynchronous property (§5.2).
    """

    name = "Prioritized Delivery"

    def __init__(self, master: int) -> None:
        self.master = master

    def explain(self, trace: Trace) -> Optional[str]:
        master_has: Set[MessageId] = set()
        for event in trace.delivers():
            if event.process == self.master:
                master_has.add(event.mid)
            elif event.mid not in master_has:
                return (
                    f"process {event.process} delivered {event.mid} before "
                    f"master {self.master}"
                )
        return None


class Amoeba(Property):
    """A process is blocked from sending while awaiting its own messages.

    Violation pattern: process p has a Send with no matching local
    Deliver yet, and Sends again.
    """

    name = "Amoeba"

    def explain(self, trace: Trace) -> Optional[str]:
        outstanding: Dict[int, Set[MessageId]] = {}
        for event in trace:
            if isinstance(event, SendEvent):
                pending = outstanding.setdefault(event.msg.sender, set())
                if pending:
                    return (
                        f"process {event.msg.sender} sent {event.mid} while "
                        f"awaiting its own {sorted(pending)}"
                    )
                pending.add(event.mid)
            else:
                if event.process == event.msg.sender:
                    outstanding.get(event.process, set()).discard(event.mid)
        return None


class VirtualSynchrony(Property):
    """A process only delivers messages from processes in some common view.

    View messages are deliveries whose body is a
    :class:`~repro.stack.membership.View`.  Three conjuncts:

    1. *Membership evidence*: every data delivery at p is preceded (at p)
       by a view delivery whose membership contains the data's sender —
       and p's **latest** view at that point must contain the sender.
    2. *Monotone epochs*: the view ids a process delivers strictly
       increase.
    3. *Agreement between views*: two processes that both deliver the
       same consecutive pair of views deliver the same set of data
       messages in between.

    Conjunct 1 is what fails under Memoryless erasure of a view message
    (§6.1); conjunct 2 is what live protocol switching violates (the
    switched-to protocol re-announces an old epoch).
    """

    name = "Virtual Synchrony"

    def explain(self, trace: Trace) -> Optional[str]:
        # Per-process walk for conjuncts 1 and 2 + interval collection.
        intervals: Dict[Tuple[int, MessageId, MessageId], FrozenSet[MessageId]] = {}
        for process in sorted(trace.processes()):
            current_view: Optional[View] = None
            current_view_mid: Optional[MessageId] = None
            since_view: Set[MessageId] = set()
            for event in trace.delivers_at(process):
                body = event.msg.body
                if isinstance(body, View):
                    if current_view is not None:
                        if body.view_id <= current_view.view_id:
                            return (
                                f"process {process} delivered view "
                                f"{body.view_id} after view "
                                f"{current_view.view_id} (epoch regression)"
                            )
                        intervals[
                            (process, current_view_mid, event.mid)
                        ] = frozenset(since_view)
                    current_view = body
                    current_view_mid = event.mid
                    since_view = set()
                    continue
                if current_view is None:
                    return (
                        f"process {process} delivered {event.mid} with no "
                        f"view installed"
                    )
                if event.msg.sender not in current_view:
                    return (
                        f"process {process} delivered {event.mid} from "
                        f"{event.msg.sender}, not a member of view "
                        f"{current_view.view_id}"
                    )
                since_view.add(event.mid)
        # Conjunct 3: agreement on the message set between a view pair.
        by_pair: Dict[Tuple[MessageId, MessageId], Dict[int, FrozenSet[MessageId]]] = {}
        for (process, prev_mid, next_mid), mids in intervals.items():
            by_pair.setdefault((prev_mid, next_mid), {})[process] = mids
        for (prev_mid, next_mid), per_process in by_pair.items():
            reference: Optional[FrozenSet[MessageId]] = None
            ref_proc: Optional[int] = None
            for process, mids in sorted(per_process.items()):
                if reference is None:
                    reference, ref_proc = mids, process
                elif mids != reference:
                    return (
                        f"processes {ref_proc} and {process} delivered "
                        f"different message sets between views {prev_mid} "
                        f"and {next_mid}"
                    )
        return None
