"""Randomized trace generators.

The bounded-exhaustive checker (:mod:`repro.traces.verify`) is complete
only within its size bound; these generators extend the search to bigger
traces by sampling.  Crucially they are *biased towards property-holding
traces*: Equation (1) only constrains traces where P already holds below,
and uniformly random traces almost never satisfy interesting properties.

Each ``random_*_execution`` produces traces satisfying (at least) the
named property by construction; ``random_trace`` samples the unbiased
valid-trace space.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..stack.membership import View
from ..stack.message import Message
from .events import DeliverEvent, Event, SendEvent
from .trace import Trace

__all__ = [
    "make_messages",
    "random_trace",
    "random_reliable_execution",
    "random_total_order_execution",
    "random_master_first_execution",
    "random_amoeba_execution",
    "random_vs_execution",
]


def make_messages(
    senders: Sequence[int],
    count: int,
    distinct_bodies: bool = True,
) -> List[Message]:
    """A universe of ``count`` messages round-robining over ``senders``.

    With ``distinct_bodies=False``, bodies repeat with period 2 — giving
    the same-body/different-id messages the No Replay analyses need.
    """
    messages = []
    for i in range(count):
        sender = senders[i % len(senders)]
        body = f"b{i}" if distinct_bodies else f"b{i % 2}"
        messages.append(
            Message(sender=sender, mid=(sender, i), body=body, body_size=1)
        )
    return messages


def random_trace(
    rng: random.Random,
    messages: Sequence[Message],
    processes: Sequence[int],
    length: int,
    spurious: bool = True,
) -> Trace:
    """A uniformly random valid trace (duplicate Sends excluded).

    ``spurious=False`` additionally enforces Send-before-Deliver.
    """
    events: List[Event] = []
    sent: set = set()
    for __ in range(length):
        candidates: List[Event] = []
        for message in messages:
            if message.mid not in sent:
                candidates.append(SendEvent(message))
            if spurious or message.mid in sent:
                for process in processes:
                    candidates.append(DeliverEvent(process, message))
        if not candidates:
            break
        event = rng.choice(candidates)
        if isinstance(event, SendEvent):
            sent.add(event.mid)
        events.append(event)
    return Trace(events)


def random_reliable_execution(
    rng: random.Random,
    processes: Sequence[int],
    n_messages: int,
    senders: Optional[Sequence[int]] = None,
) -> Trace:
    """Every message sent, then delivered at every process (Reliability,
    FIFO-free).  Interleaving is random subject to Send-before-Deliver."""
    senders = senders if senders is not None else processes
    messages = make_messages(list(senders), n_messages)
    pending: List[Event] = [SendEvent(m) for m in messages]
    blocked: dict = {
        m.mid: [DeliverEvent(p, m) for p in processes] for m in messages
    }
    events: List[Event] = []
    ready: List[Event] = list(pending)
    while ready:
        index = rng.randrange(len(ready))
        event = ready.pop(index)
        events.append(event)
        if isinstance(event, SendEvent):
            ready.extend(blocked.pop(event.mid))
    return Trace(events)


def random_total_order_execution(
    rng: random.Random,
    processes: Sequence[int],
    n_messages: int,
    partial_suffix: bool = False,
) -> Trace:
    """All processes deliver all messages in one global order.

    ``partial_suffix=True`` lets processes stop partway through the order
    (still totally ordered, no longer reliable) — exercising Total Order
    without Reliability.
    """
    messages = make_messages(list(processes), n_messages)
    order = list(messages)
    rng.shuffle(order)
    events: List[Event] = [SendEvent(m) for m in messages]
    rng.shuffle(events)
    cursors = {p: 0 for p in processes}
    limits = {
        p: (rng.randint(0, n_messages) if partial_suffix else n_messages)
        for p in processes
    }
    live = [p for p in processes if limits[p] > 0]
    while live:
        process = rng.choice(live)
        message = order[cursors[process]]
        events.append(DeliverEvent(process, message))
        cursors[process] += 1
        if cursors[process] >= limits[process]:
            live.remove(process)
    return Trace(events)


def random_master_first_execution(
    rng: random.Random,
    processes: Sequence[int],
    master: int,
    n_messages: int,
) -> Trace:
    """The master delivers every message before anyone else."""
    messages = make_messages(list(processes), n_messages)
    events: List[Event] = []
    released: List[Message] = []
    todo = list(messages)
    rng.shuffle(todo)
    others = [p for p in processes if p != master]
    while todo or released:
        if todo and (not released or rng.random() < 0.5):
            message = todo.pop()
            events.append(SendEvent(message))
            events.append(DeliverEvent(master, message))
            released.append(message)
        else:
            message = rng.choice(released)
            process = rng.choice(others) if others else master
            events.append(DeliverEvent(process, message))
            if rng.random() < 0.5:
                released.remove(message)
    return Trace(events)


def random_amoeba_execution(
    rng: random.Random,
    processes: Sequence[int],
    n_rounds: int,
) -> Trace:
    """No process sends while one of its own messages is outstanding."""
    events: List[Event] = []
    outstanding: dict = {p: None for p in processes}
    seq = {p: 0 for p in processes}
    for __ in range(n_rounds):
        process = rng.choice(list(processes))
        if outstanding[process] is None:
            message = Message(
                sender=process,
                mid=(process, seq[process]),
                body=f"a{process}.{seq[process]}",
                body_size=1,
            )
            seq[process] += 1
            events.append(SendEvent(message))
            outstanding[process] = message
        else:
            message = outstanding[process]
            events.append(DeliverEvent(process, message))
            outstanding[process] = None
            # other processes may deliver it too, later or never
            for other in processes:
                if other != process and rng.random() < 0.5:
                    events.append(DeliverEvent(other, message))
    return Trace(events)


def random_vs_execution(
    rng: random.Random,
    processes: Sequence[int],
    n_views: int,
    msgs_per_view: int,
) -> Trace:
    """A virtually synchronous execution: monotone views, members-only
    senders, identical message sets between view boundaries."""
    events: List[Event] = []
    member_pool = list(processes)
    mid_seq = 0
    previous_members = None
    for view_id in range(1, n_views + 1):
        size = rng.randint(max(1, len(member_pool) - 1), len(member_pool))
        members = tuple(sorted(rng.sample(member_pool, size)))
        if previous_members is None:
            previous_members = members
        view = View(view_id, members)
        view_msg = Message(
            sender=view.coordinator,
            mid=(view.coordinator, -view_id),
            body=view,
            body_size=1,
        )
        # Every member of the new view (that also saw the old epoch or is
        # joining) delivers the view message.
        for process in members:
            events.append(DeliverEvent(process, view_msg))
        # Data within the view: sent by members, delivered by all members.
        data: List[Message] = []
        for __ in range(rng.randint(0, msgs_per_view)):
            sender = rng.choice(list(members))
            message = Message(
                sender=sender, mid=(sender, 1000 + mid_seq), body=f"v{mid_seq}",
                body_size=1,
            )
            mid_seq += 1
            data.append(message)
            events.append(SendEvent(message))
        order = list(data)
        for process in members:
            rng.shuffle(order)
            for message in order:
                events.append(DeliverEvent(process, message))
        previous_members = members
    return Trace(events)
